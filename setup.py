"""Legacy setuptools shim; all metadata lives in pyproject.toml.

Kept so environments that still invoke ``python setup.py`` (or editable
installs with very old pip) keep working.  See README.md for the no-install
workflow (``PYTHONPATH=src``) used by the evaluation environment.
"""

from setuptools import setup

setup()
