"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one of the paper artefacts listed in
DESIGN.md's experiment index (E1–E7).  Benchmarks print the reproduced
table/series (so the numbers land in the benchmark log) and use
pytest-benchmark to time the reproducible kernel of the experiment.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
# The benchmark modules share helpers (eval_common.py) by plain import, so
# the benchmarks directory itself must be importable too.
sys.path.insert(0, os.path.dirname(__file__))

import pytest


@pytest.fixture(scope="session")
def shared_solver():
    from repro.solver.interface import Solver

    return Solver()
