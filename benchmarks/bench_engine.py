"""E8 — the obligation engine: caching and parallel batch verification.

Characterises the engine layered over the decision procedures:

* **cold versus warm batch verification** of the three case studies through
  a persistent cache directory — the warm run must answer every obligation
  from the cache with zero solver calls;
* **parallel discharge speedup** at ``--jobs 1/2/4`` over the pooled
  case-study obligation corpus (no cache, so every run does full work);
* the portfolio win table the engine learned over the corpus.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_engine.py -q``.
"""

import time

import pytest

from repro.engine import ObligationEngine, case_study_items, verify_batch


def _fresh_items():
    return case_study_items()


def test_cold_vs_warm_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "engine-cache")

    cold_engine = ObligationEngine.for_batch(cache_dir=cache_dir)
    cold_start = time.perf_counter()
    cold_report = verify_batch(_fresh_items(), engine=cold_engine)
    cold_seconds = time.perf_counter() - cold_start
    assert cold_report.all_verified

    warm_engine = ObligationEngine.for_batch(cache_dir=cache_dir)
    warm_start = time.perf_counter()
    warm_report = verify_batch(_fresh_items(), engine=warm_engine)
    warm_seconds = time.perf_counter() - warm_start
    assert warm_report.all_verified

    cold_stats = cold_engine.statistics
    warm_stats = warm_engine.statistics
    with capsys.disabled():
        print()
        print("=== E8: cold vs warm batch verification (three case studies) ===")
        print(f"obligations            : {cold_stats.obligations}")
        print(f"cold solver calls      : {cold_stats.solver_calls}")
        print(f"cold wall-clock        : {cold_seconds:.3f}s")
        print(f"warm solver calls      : {warm_stats.solver_calls}")
        print(f"warm cache hit rate    : {warm_engine.cache.hit_rate:.0%}")
        print(f"warm wall-clock        : {warm_seconds:.3f}s")
        if warm_seconds > 0:
            print(f"warm speedup           : {cold_seconds / warm_seconds:.1f}x")
        print(f"portfolio wins         : {cold_engine.portfolio.win_table()}")

    # The acceptance bar: re-verification of unchanged obligations issues
    # zero solver calls.
    assert warm_stats.solver_calls == 0
    assert warm_stats.cache_hits == warm_stats.obligations


def test_parallel_speedup(capsys):
    timings = {}
    for jobs in (1, 2, 4):
        engine = ObligationEngine(jobs=jobs, cache=None)
        start = time.perf_counter()
        report = verify_batch(_fresh_items(), engine=engine)
        timings[jobs] = time.perf_counter() - start
        assert report.all_verified

    with capsys.disabled():
        print()
        print("=== E8: parallel discharge speedup (no cache) ===")
        for jobs, seconds in timings.items():
            speedup = timings[1] / seconds if seconds > 0 else float("inf")
            print(f"--jobs {jobs}: {seconds:.3f}s  (speedup {speedup:.2f}x)")
    # Parallelism must never change verdicts; wall-clock improvements depend
    # on the host, so they are reported rather than asserted.


@pytest.mark.benchmark(group="E8-engine")
def test_benchmark_warm_batch(benchmark, tmp_path):
    """Time a fully warm batch re-verification (pure cache replay)."""
    cache_dir = str(tmp_path / "bench-cache")
    prime = verify_batch(_fresh_items(), engine=ObligationEngine.for_batch(cache_dir=cache_dir))
    assert prime.all_verified

    def warm_batch():
        engine = ObligationEngine.for_batch(cache_dir=cache_dir)
        return verify_batch(_fresh_items(), engine=engine)

    report = benchmark(warm_batch)
    assert report.all_verified


@pytest.mark.benchmark(group="E8-engine")
def test_benchmark_cold_batch_serial(benchmark):
    """Time an uncached serial batch verification of all case studies."""

    def cold_batch():
        return verify_batch(_fresh_items(), engine=ObligationEngine(cache=None))

    report = benchmark(cold_batch)
    assert report.all_verified
