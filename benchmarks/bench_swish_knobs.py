"""E2 — Swish++ dynamic knobs (paper Section 5.1).

Paper artefact: the relate property

    (num_r<o> < 10 && num_r<o> == num_r<r>) || (10 <= num_r<o> && 10 <= num_r<r>)

verified with ~330 lines of Coq proof script, using the divergent-control-
flow rule for the formatting loop.  Reproduced here as (a) the ⊢o/⊢r
verification of the same program, and (b) a differential-simulation table
across result-count regimes showing the property holds on every relaxed
execution while the relaxed program saves formatting-loop iterations under
load.
"""

import pytest

from repro.casestudies.swish import MINIMUM_RESULTS, SwishDynamicKnobs


def test_swish_verification_reproduces_paper_property(capsys):
    case_study = SwishDynamicKnobs()
    report = case_study.verify()
    assert report.verified
    effort = report.effort()
    with capsys.disabled():
        print()
        print("=== E2: Swish++ dynamic knobs (paper Section 5.1) ===")
        print("paper proof effort : 330 lines of Coq proof script (relational layer)")
        print(
            f"reproduction       : {effort['relaxed']['rule_applications']} rule applications, "
            f"{effort['relaxed']['obligations']} obligations "
            f"({effort['relaxed']['obligation_size']} formula nodes)"
        )
        print("verified guarantees:", ", ".join(k for k, v in report.guarantees().items() if v))


def test_swish_differential_table(capsys):
    case_study = SwishDynamicKnobs()
    summary = case_study.simulate(runs=90, seed=17)
    assert summary.relate_violations == 0
    assert summary.relaxed_errors == 0

    small = [r for r in summary.records if r.metrics["presented_original"] < MINIMUM_RESULTS]
    large = [r for r in summary.records if r.metrics["presented_original"] >= MINIMUM_RESULTS]
    with capsys.disabled():
        print()
        print("=== E2: differential simulation (90 bursty-load queries) ===")
        print(f"{'regime':<26}{'runs':>6}{'mean shown (orig)':>19}{'mean shown (relaxed)':>22}{'iters saved':>13}")
        for label, records in (("fewer than 10 results", small), ("10 or more results", large)):
            if not records:
                continue
            runs = len(records)
            mean_orig = sum(r.metrics["presented_original"] for r in records) / runs
            mean_rel = sum(r.metrics["presented_relaxed"] for r in records) / runs
            saved = sum(r.metrics["iterations_saved"] for r in records) / runs
            print(f"{label:<26}{runs:>6}{mean_orig:>19.2f}{mean_rel:>22.2f}{saved:>13.2f}")
        print("acceptability property violations:", summary.relate_violations)
    # Qualitative shape: small-result queries are untouched; large-result
    # queries never drop below the 10-result floor.
    for record in small:
        assert record.metrics["presented_original"] == record.metrics["presented_relaxed"]
    for record in large:
        assert record.metrics["presented_relaxed"] >= MINIMUM_RESULTS


@pytest.mark.benchmark(group="E2-swish")
def test_benchmark_swish_relational_proof(benchmark):
    case_study = SwishDynamicKnobs()
    result = benchmark(case_study.verify)
    assert result.verified


@pytest.mark.benchmark(group="E2-swish")
def test_benchmark_swish_simulation(benchmark):
    case_study = SwishDynamicKnobs()
    summary = benchmark(case_study.simulate, runs=30, seed=3)
    assert summary.relate_violations == 0
