"""E4 — LU decomposition with approximate memory (paper Section 5.3).

Paper artefact: the Lipschitz-style accuracy property

    max<o> - max<r> <= e && max<r> - max<o> <= e

verified as a relational loop invariant with ~315 lines of Coq proof
script.  Reproduced as (a) the ⊢o/⊢r verification, and (b) an
error-bound × column-size sweep of the observed pivot deviation against the
verified envelope (the accuracy-envelope "figure" implied by the prose:
observed deviation never exceeds e, and grows with e).
"""

import pytest

from repro.analysis.metrics import MetricSeries, fraction_within
from repro.casestudies.lu import LUApproximateMemory


def test_lu_verification_reproduces_paper_property(capsys):
    case_study = LUApproximateMemory(error_bound=2)
    report = case_study.verify()
    assert report.verified
    effort = report.effort()
    with capsys.disabled():
        print()
        print("=== E4: LU approximate memory (paper Section 5.3) ===")
        print("paper proof effort : 315 lines of Coq proof script (relational layer)")
        print(
            f"reproduction       : {effort['relaxed']['rule_applications']} rule applications, "
            f"{effort['relaxed']['obligations']} obligations"
        )


def test_lu_accuracy_envelope_sweep(capsys):
    rows = []
    for bound in (0, 1, 2, 4, 8):
        study = LUApproximateMemory(error_bound=bound)
        summary = study.simulate(runs=50, seed=bound + 1)
        deviations = MetricSeries("dev")
        for record in summary.records:
            if record.initial_state.scalar("e") == bound:
                deviations.add(record.metrics["pivot_deviation"])
        assert summary.relate_violations == 0
        within = fraction_within(deviations.values, bound)
        rows.append((bound, deviations.mean, deviations.maximum, within))
    with capsys.disabled():
        print()
        print("=== E4: pivot deviation vs memory error bound (accuracy envelope) ===")
        print(f"{'error bound e':>14}{'mean |Δpivot|':>15}{'max |Δpivot|':>14}{'within bound':>14}")
        for bound, mean, maximum, within in rows:
            print(f"{bound:>14}{mean:>15.3f}{maximum:>14.1f}{within:>14.2%}")
    # Shape checks: every observation is inside the verified bound, the
    # zero-error configuration is exact, and the envelope widens with e.
    assert all(within == 1.0 for _bound, _mean, _max, within in rows)
    assert rows[0][2] == 0.0
    assert rows[-1][2] >= rows[1][2]


@pytest.mark.benchmark(group="E4-lu")
def test_benchmark_lu_relational_proof(benchmark):
    case_study = LUApproximateMemory(error_bound=2)
    result = benchmark(case_study.verify)
    assert result.verified


@pytest.mark.benchmark(group="E4-lu")
def test_benchmark_lu_simulation(benchmark):
    case_study = LUApproximateMemory(error_bound=4)
    summary = benchmark(case_study.simulate, runs=20, seed=2)
    assert summary.relate_violations == 0
