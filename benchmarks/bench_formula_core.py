"""E10 — the interned formula core: traversal throughput and sharing.

Characterises the hash-consed formula IR on the real obligation corpus of
the three case studies (the formulas the batch engine and the explorer
actually push through substitution, normalisation and fingerprinting):

* **substitute throughput** — a full symbol renaming over every obligation
  (the havoc/assign hot path of the VC generators);
* **no-op substitute throughput** — a substitution whose domain is disjoint
  from every formula; the cached-free-variable short-circuit must make this
  effectively free;
* **normalize throughput** — ``to_nnf`` over every obligation (memoised per
  interned node within a pass);
* **fingerprint throughput** — cold versus warm canonicalisation; the warm
  pass reuses the per-node canonical strings cached on the interned DAG;
* **interning hit rate** — intern-table hits while re-collecting the whole
  obligation corpus from scratch (a direct measure of cross-obligation
  subterm sharing).

The headline numbers are written to ``benchmarks/bench_formula_core.json``
so CI can archive them as a workflow artifact.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_formula_core.py -q``.
"""

import json
import os
import time

from repro.engine.batch import case_study_items
from repro.engine.fingerprint import fingerprint
from repro.hoare.verifier import AcceptabilityVerifier
from repro.logic import formula as F
from repro.logic.formula import Symbol, free_symbols, formula_size, intern_stats
from repro.logic.subst import substitute
from repro.solver.interface import Solver
from repro.solver.normalize import to_nnf


def _collect_corpus():
    """(kind, formula) pairs for every obligation of every case study."""
    corpus = []
    for item in case_study_items():
        bundle = AcceptabilityVerifier(solver=Solver()).collect(item.program, item.spec)
        for collector in (bundle.original, bundle.relaxed):
            for obligation in collector.obligations:
                corpus.append((obligation.kind.value, obligation.formula))
    return corpus


def _ops_per_second(op, corpus, repeats):
    start = time.perf_counter()
    for _ in range(repeats):
        for kind, formula in corpus:
            op(kind, formula)
    elapsed = time.perf_counter() - start
    return (repeats * len(corpus)) / elapsed if elapsed > 0 else float("inf")


def test_formula_core_throughput(capsys):
    corpus = _collect_corpus()
    assert corpus, "case studies must produce obligations"
    repeats = 20

    # A renaming touching every free symbol: the worst case for substitute.
    renaming = {}
    for _kind, formula in corpus:
        for symbol in free_symbols(formula):
            renaming.setdefault(symbol, F.SymTerm(Symbol(f"{symbol.name}_rn", symbol.tag)))
    substitute_rate = _ops_per_second(
        lambda kind, formula: substitute(formula, renaming), corpus, repeats
    )

    # A substitution that touches nothing: the short-circuit path.
    noop_mapping = {Symbol("__absent__"): F.Const(0)}
    noop_rate = _ops_per_second(
        lambda kind, formula: substitute(formula, noop_mapping), corpus, repeats
    )

    normalize_rate = _ops_per_second(
        lambda kind, formula: to_nnf(formula), corpus, repeats
    )

    # Fingerprints: cold = canonical strings not yet cached on the nodes.
    from repro.engine.fingerprint import _CANON_CACHE

    _CANON_CACHE.clear()
    cold_start = time.perf_counter()
    for kind, formula in corpus:
        fingerprint(formula, kind)
    cold_seconds = time.perf_counter() - cold_start
    warm_rate = _ops_per_second(
        lambda kind, formula: fingerprint(formula, kind), corpus, repeats
    )
    cold_rate = len(corpus) / cold_seconds if cold_seconds > 0 else float("inf")

    # Interning hit rate while rebuilding the corpus from scratch.
    F.reset_intern_stats()
    rebuilt = _collect_corpus()
    stats = intern_stats()
    assert len(rebuilt) == len(corpus)
    # Every rebuilt obligation formula must intern to the original object.
    assert all(a is b for (_, a), (_, b) in zip(corpus, rebuilt))

    total_nodes = sum(formula_size(formula) for _kind, formula in corpus)
    payload = {
        "experiment": "E10-formula-core",
        "obligations": len(corpus),
        "total_formula_nodes": total_nodes,
        "substitute_ops_per_second": substitute_rate,
        "noop_substitute_ops_per_second": noop_rate,
        "normalize_nnf_ops_per_second": normalize_rate,
        "fingerprint_cold_ops_per_second": cold_rate,
        "fingerprint_warm_ops_per_second": warm_rate,
        "intern_hits": stats["hits"],
        "intern_misses": stats["misses"],
        "intern_hit_rate": stats["hit_rate"],
        "intern_live_nodes": stats["live_nodes"],
    }
    output_path = os.path.join(os.path.dirname(__file__), "bench_formula_core.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    with capsys.disabled():
        print()
        print("=== E10: interned formula core (case-study obligation corpus) ===")
        print(f"obligations             : {len(corpus)} ({total_nodes} nodes)")
        print(f"substitute (full rename): {substitute_rate:,.0f} formulas/s")
        print(f"substitute (no-op)      : {noop_rate:,.0f} formulas/s")
        print(f"to_nnf                  : {normalize_rate:,.0f} formulas/s")
        print(f"fingerprint cold        : {cold_rate:,.0f} formulas/s")
        print(f"fingerprint warm        : {warm_rate:,.0f} formulas/s")
        print(
            f"interning (re-collect)  : {stats['hit_rate']:.0%} hit rate "
            f"({stats['hits']} hits / {stats['misses']} misses)"
        )

    # Sanity bars (loose: CI hosts vary) — the short-circuit and the canon
    # cache must actually pay off.
    assert noop_rate > substitute_rate
    assert warm_rate > cold_rate
    assert stats["hit_rate"] > 0.5


def test_interned_corpus_is_shared():
    """Re-collecting the corpus yields identical (shared) formula objects."""
    first = _collect_corpus()
    second = _collect_corpus()
    assert len(first) == len(second)
    assert all(a is b for (_, a), (_, b) in zip(first, second))
