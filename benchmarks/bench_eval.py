"""E11 — the compiled evaluation layer: closures versus the tree walker.

The dynamic hot paths (bounded model search, havoc/relax model enumeration,
Monte Carlo scoring) evaluate the same interned formulas under very many
valuations.  This benchmark quantifies the three wins of the compiled layer
on that workload:

* **assignment-check throughput** — evaluating a fixed stream of candidate
  assignments with :func:`repro.logic.evaluate.evaluate` (the recursive
  tree walker) versus the compiled closures, same formulas, same
  assignments;
* **bounded-search speedup** — the old blind ``values ** n`` sweep
  re-interpreting the tree per assignment versus
  :func:`repro.solver.models.bounded_model_search` (compiled, unit-pruned,
  cheap-conjunct-first); the acceptance bar is **≥3x**;
* **vector-search speedup** — the same workload on the columnar numpy
  backend (:mod:`repro.solver.vector`); the acceptance bar is **≥10x**
  versus the tree sweep (skipped when numpy is absent);
* **compile cache behaviour** — cold versus warm closure-compilation hit
  rate, and the unit-propagation prune rate of the searches.

The headline numbers are written to ``benchmarks/bench_eval.json`` so CI
can archive them as a workflow artifact.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_eval.py -q``.
"""

import itertools
import json
import os
import time

from eval_common import tree_search

from repro.logic import formula as F
from repro.logic.compile import compile_formula, compile_stats, reset_compile_stats
from repro.logic.evaluate import Valuation, evaluate
from repro.logic.formula import Const, conj, exists, forall, free_symbols, sym, var
from repro.solver.backend import numpy_available, use_backend
from repro.solver.models import (
    _candidate_values,
    bounded_model_search,
    reset_search_stats,
    search_stats,
)
from repro.solver.vector import reset_vector_stats, vector_stats

RADIUS = 4
QUANTIFIER_DOMAIN_RADIUS = 6


def _workload():
    """Search queries shaped like the solver's bounded fallbacks.

    Mostly box-UNSAT formulas (forcing a full sweep, the worst case the
    fallback pays on every UNKNOWN) plus satisfiable ones with and without
    unit atoms, and a quantified query.
    """
    x, y, z, w = var("x"), var("y"), var("z"), var("w")
    return [
        # Non-linear, no model in the box: full three-symbol sweep.
        conj(F.eq(x * x + y * y, Const(97)), F.ge(z, Const(0))),
        # Four symbols, two pinned and two bounded by unit atoms: the blind
        # sweep pays values**4, the pruned sweep a few dozen assignments.
        conj(
            F.eq(x, Const(3)),
            F.eq(y, Const(-2)),
            F.ge(z, Const(0)),
            F.le(w, Const(2)),
            F.eq(x * y + z * w, Const(-7)),
        ),
        # Linear but out of reach: full sweep again.
        conj(F.eq(x + y + z, Const(50)), F.le(x, Const(4))),
        # Unit atoms pin/bound two symbols: the pruned sweep collapses.
        conj(F.eq(x, Const(3)), F.ge(y, Const(1)), F.eq(y * y, Const(9)), F.ne(z, Const(0))),
        # Satisfiable non-linear query (found mid-sweep).
        conj(F.eq(x * y, Const(6)), F.gt(x, y)),
        # Quantified body evaluated per assignment.
        conj(
            F.ge(x, Const(0)),
            exists(sym("k"), F.eq(x + y, var("k") * Const(2))),
        ),
        # Universally quantified, false for most assignments.
        conj(
            forall(sym("k"), F.implies(F.ge(var("k"), Const(0)), F.ge(x + var("k"), y))),
            F.le(x, Const(2)),
        ),
    ]


def _tree_search(formula, radius=RADIUS, max_assignments=200_000):
    """The pre-compilation bounded search: blind sweep, tree-walking checks."""
    return tree_search(
        formula,
        radius=radius,
        quantifier_domain_radius=QUANTIFIER_DOMAIN_RADIUS,
        max_assignments=max_assignments,
    )


def test_compiled_bounded_search_speedup(capsys):
    workload = _workload()
    repeats = 5

    # -- assignment-check throughput on a fixed assignment stream ------------
    check_formula = workload[0]
    symbols = sorted(free_symbols(check_formula))
    domain = range(-QUANTIFIER_DOMAIN_RADIUS, QUANTIFIER_DOMAIN_RADIUS + 1)
    assignments = list(itertools.product(_candidate_values(RADIUS), repeat=len(symbols)))

    start = time.perf_counter()
    for assignment in assignments:
        valuation = Valuation(scalars=dict(zip(symbols, assignment)))
        evaluate(check_formula, valuation, domain)
    tree_check_seconds = time.perf_counter() - start

    compiled = compile_formula(check_formula)
    scalars = {}
    start = time.perf_counter()
    for assignment in assignments:
        for symbol, value in zip(symbols, assignment):
            scalars[symbol] = value
        compiled(scalars, {}, domain)
    compiled_check_seconds = time.perf_counter() - start

    tree_rate = len(assignments) / tree_check_seconds
    compiled_rate = len(assignments) / compiled_check_seconds

    # -- end-to-end bounded search: blind tree sweep vs compiled+pruned ------
    start = time.perf_counter()
    tree_results = []
    tree_assignments = 0
    for _ in range(repeats):
        tree_results = []
        for formula in workload:
            model, evaluated = _tree_search(formula)
            tree_results.append(model)
            tree_assignments += evaluated
    tree_seconds = time.perf_counter() - start

    reset_search_stats()
    start = time.perf_counter()
    search_results = []
    with use_backend("compiled"):
        for _ in range(repeats):
            search_results = [
                bounded_model_search(formula, radius=RADIUS, max_seconds=None)
                for formula in workload
            ]
    compiled_seconds = time.perf_counter() - start
    stats = search_stats()

    # -- the vector backend on the identical workload ------------------------
    vector_seconds = None
    vector_results = None
    vector_counters = None
    if numpy_available():
        with use_backend("vector"):  # warm the batch compilation caches
            [bounded_model_search(f, radius=RADIUS, max_seconds=None) for f in workload]
        reset_vector_stats()
        start = time.perf_counter()
        with use_backend("vector"):
            for _ in range(repeats):
                vector_results = [
                    bounded_model_search(formula, radius=RADIUS, max_seconds=None)
                    for formula in workload
                ]
        vector_seconds = time.perf_counter() - start
        vector_counters = vector_stats()

    # Same verdict per query (a found model may legitimately differ only if
    # the tree sweep was budget-cut; with no cuts here both find the same).
    assert [m is not None for m in search_results] == [m is not None for m in tree_results]
    assert search_results == tree_results

    speedup = tree_seconds / compiled_seconds if compiled_seconds > 0 else float("inf")
    search_rate = stats["assignments_evaluated"] / compiled_seconds
    tree_search_rate = tree_assignments / tree_seconds

    # -- compile cache: cold vs warm -----------------------------------------
    reset_compile_stats()
    for formula in workload:
        compile_formula(formula)
    warm_stats = compile_stats()  # every node already compiled above: all hits

    payload = {
        "experiment": "E11-compiled-eval",
        "workload_queries": len(workload),
        "check_assignments": len(assignments),
        "tree_check_assignments_per_second": tree_rate,
        "compiled_check_assignments_per_second": compiled_rate,
        "check_speedup": compiled_rate / tree_rate,
        "tree_search_seconds": tree_seconds,
        "compiled_search_seconds": compiled_seconds,
        "search_speedup": speedup,
        "tree_search_assignments_per_second": tree_search_rate,
        "compiled_search_assignments_per_second": search_rate,
        "prune_rate": stats["prune_rate"],
        "assignments_evaluated": stats["assignments_evaluated"],
        "assignment_space": stats["assignment_space"],
        "warm_compile_hit_rate": warm_stats["hit_rate"],
    }
    if vector_seconds is not None:
        payload["vector_search_seconds"] = vector_seconds
        payload["vector_search_speedup"] = tree_seconds / vector_seconds
        payload["vector_speedup_vs_compiled"] = compiled_seconds / vector_seconds
        payload["vector_rows_evaluated"] = vector_counters["rows_evaluated"]
        payload["vector_batches"] = vector_counters["batches"]
        payload["vector_rows_per_second"] = (
            vector_counters["rows_evaluated"] / vector_seconds
        )
    # Untracked output: the committed bench_eval.json snapshot is refreshed
    # by an explicit copy, not by every local benchmark run.
    output_path = os.path.join(os.path.dirname(__file__), "bench_eval.fresh.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    with capsys.disabled():
        print()
        print("=== E11: compiled evaluation vs tree walking ===")
        print(f"assignment checks       : {tree_rate:,.0f}/s tree -> {compiled_rate:,.0f}/s compiled "
              f"({compiled_rate / tree_rate:.1f}x)")
        print(f"bounded search          : {tree_seconds:.3f}s tree -> {compiled_seconds:.3f}s compiled "
              f"({speedup:.1f}x)")
        if vector_seconds is not None:
            print(f"vector search           : {vector_seconds:.3f}s "
                  f"({tree_seconds / vector_seconds:.1f}x vs tree, "
                  f"{compiled_seconds / vector_seconds:.1f}x vs compiled)")
        print(f"unit-propagation pruning: {stats['prune_rate']:.0%} of the assignment space")
        print(f"warm compile hit rate   : {warm_stats['hit_rate']:.0%}")

    # Acceptance bar: the compiled+pruned search is at least 3x the
    # tree-walking sweep on this microbenchmark; the vector backend at
    # least 10x (the whole workload is error-free, so results agree too).
    assert speedup >= 3.0, f"search speedup {speedup:.2f}x below the 3x bar"
    if vector_seconds is not None:
        assert vector_results == search_results
        vector_speedup = tree_seconds / vector_seconds
        assert vector_speedup >= 10.0, (
            f"vector speedup {vector_speedup:.2f}x below the 10x bar"
        )
    assert warm_stats["hit_rate"] == 1.0
    assert stats["prune_rate"] > 0.0


def test_search_and_tree_agree_on_satisfiability():
    """Cheap correctness cross-check (no timing): same SAT/None per query,
    on every available backend."""
    backends = ["compiled"] + (["vector"] if numpy_available() else [])
    for formula in _workload():
        tree_model, _ = _tree_search(formula)
        for backend in backends:
            with use_backend(backend):
                model = bounded_model_search(formula, radius=RADIUS, max_seconds=None)
            assert (tree_model is None) == (model is None)
            assert tree_model == model
