"""Shared tree-walking bounded-search reference for the evaluation benches.

``bench_eval.py`` (the 3x acceptance bar) and ``bench_solver.py`` (the
``speedup_vs_tree`` CI regression guard) both compare the compiled search
against the pre-compilation blind sweep.  The two ratios are only
comparable while the reference is the *same* code, so it lives here once:
a faithful reproduction of the old ``bounded_model_search`` loop — full
``values ** n`` cartesian sweep, a fresh ``Valuation`` per assignment,
recursive tree-walking evaluation, abort on the first ``EvaluationError``.
"""

import itertools

from repro.logic.evaluate import EvaluationError, Valuation, evaluate
from repro.logic.formula import free_symbols
from repro.solver.models import _candidate_values


def tree_search(formula, radius=4, quantifier_domain_radius=6, max_assignments=None):
    """Blind tree-walking model search; returns ``(model_or_None, evaluated)``."""
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    evaluated = 0
    for assignment in itertools.product(_candidate_values(radius), repeat=len(symbols)):
        if max_assignments is not None and evaluated >= max_assignments:
            return None, evaluated
        evaluated += 1
        valuation = Valuation(scalars=dict(zip(symbols, assignment)))
        try:
            if evaluate(formula, valuation, domain):
                return dict(zip(symbols, assignment)), evaluated
        except EvaluationError:
            return None, evaluated
    return None, evaluated
