"""E6 — relaxation-mechanism coverage (paper Section 1 / Section 7).

The paper motivates relaxed programming with the catalogue of mechanisms
that produce relaxed programs (loop perforation, dynamic knobs, task
skipping, sampling, approximate memory, memoization, synchronization
elimination).  This experiment applies each transformation to a reference
kernel, checks that the original semantics is unchanged (the original
execution is one of the relaxed executions), and regenerates the
performance-versus-accuracy trade-off curve for the perforation mechanism —
the trade-off space the paper's introduction describes.
"""

import pytest

from repro.lang import builder as b
from repro.lang.ast import Assign, While
from repro.relaxations import (
    approximate_reads,
    dynamic_knob,
    eliminate_synchronization,
    perforate_loop,
    sample_reduction,
    skip_tasks,
)
from repro.semantics.choosers import FixedChoiceChooser
from repro.semantics.interpreter import run_original, run_relaxed
from repro.semantics.state import State, Terminated


def _summation_kernel():
    loop = While(
        condition=b.lt("i", "n"),
        body=b.block(
            b.assign("s", b.add("s", b.aread("A", "i"))),
            b.assign("i", b.add("i", 1)),
        ),
        invariant=b.true,
    )
    program = b.program(
        "kernel", b.assign("s", 0), b.assign("i", 0), loop,
        variables=("s", "i", "n"), arrays=("A",),
    )
    return program, loop


def _initial_state(n=48):
    return State.of({"n": n}, arrays={"A": {i: (i % 5) + 1 for i in range(n)}})


def test_all_mechanisms_preserve_the_original_semantics(capsys):
    program, loop = _summation_kernel()
    read = Assign("a", b.aread("A", "i"))
    reader = b.program("reader", b.assign("i", 0), read, variables=("a", "i", "e"), arrays=("A",))

    transformed = {
        "loop perforation": perforate_loop(program, loop, counter="i"),
        "dynamic knobs": dynamic_knob(program, knob="n", floor=10),
        "task skipping": skip_tasks(program, remaining_tasks_var="n", max_skipped=4),
        "reduction sampling": sample_reduction(
            program, sample_count_var="n", population_var="n", minimum_fraction_percent=50
        ),
        "approximate memory": approximate_reads(
            reader, value_var="a", error_bound_var="e", insert_after=read
        ),
        "synchronization elimination": eliminate_synchronization(program, racy_arrays=("A",)),
    }
    rows = []
    for name, result in transformed.items():
        if result.program.arrays and "A" in result.program.arrays:
            state = _initial_state()
        else:
            state = _initial_state()
        if name == "approximate memory":
            state = state.set_scalars({"e": 2, "a": 0})
        baseline_program = reader if name == "approximate memory" else program
        baseline = run_original(baseline_program, state)
        relaxed_original = run_original(result.program, state)
        assert isinstance(baseline, Terminated) and isinstance(relaxed_original, Terminated)
        # The transformation must not change the original semantics of the
        # variables the baseline program defines.
        for variable, value in baseline.state.scalars:
            assert relaxed_original.state.scalar(variable) == value, name
        rows.append((name, len(result.inserted_relax), len(result.suggested_relates)))
    with capsys.disabled():
        print()
        print("=== E6: relaxation mechanism coverage ===")
        print(f"{'mechanism':<30}{'relax stmts':>12}{'suggested relates':>19}")
        for name, relax_count, relate_count in rows:
            print(f"{name:<30}{relax_count:>12}{relate_count:>19}")
    assert len(rows) == 6


def test_perforation_tradeoff_curve(capsys):
    program, loop = _summation_kernel()
    result = perforate_loop(program, loop, counter="i", max_stride=6)
    state = _initial_state(n=60)
    exact = run_original(result.program, state).state.scalar("s")
    curve = []
    for stride in (1, 2, 3, 4, 6):
        outcome = run_relaxed(
            result.program, state, chooser=FixedChoiceChooser([{"stride": stride}])
        )
        approx = outcome.state.scalar("s")
        iterations = (60 + stride - 1) // stride
        error = abs(exact - approx) / exact
        curve.append((stride, iterations, error))
    with capsys.disabled():
        print()
        print("=== E6: perforation performance/accuracy trade-off curve ===")
        print(f"{'stride':>7}{'iterations':>12}{'relative error':>16}")
        for stride, iterations, error in curve:
            print(f"{stride:>7}{iterations:>12}{error:>16.3f}")
    # Shape: work decreases monotonically with stride; stride 1 is exact; error
    # stays bounded well below 100%.
    iterations_series = [iterations for _stride, iterations, _error in curve]
    assert iterations_series == sorted(iterations_series, reverse=True)
    assert curve[0][2] == 0.0
    assert all(error < 0.9 for _stride, _iterations, error in curve)


@pytest.mark.benchmark(group="E6-relaxations")
def test_benchmark_perforated_execution(benchmark):
    program, loop = _summation_kernel()
    result = perforate_loop(program, loop, counter="i", max_stride=4)
    state = _initial_state(n=64)

    def run():
        return run_relaxed(result.program, state, chooser=FixedChoiceChooser([{"stride": 4}]))

    outcome = benchmark(run)
    assert isinstance(outcome, Terminated)
