"""Fuzzing-pipeline throughput: synthesis rate and funnel cost per program.

Two numbers keep the corpus-scale regression instrument usable:

* **synthesis throughput** — programs generated (built, pretty-printed,
  planted) per second; generation must stay cheap enough that CI can draw
  fresh 50-program populations per run (acceptance bar: **>= 20/s**);
* **funnel cost** — wall-clock per program through the full differential
  funnel (lint + every verify parity leg + exhaustive-vs-beam explore),
  reported per stage so a slowdown names its layer.

The headline numbers are written to ``benchmarks/bench_fuzz.fresh.json``;
a committed baseline can be refreshed by an explicit copy.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_fuzz.py -q``.
"""

import json
import os
import time

from repro.fuzz import run_fuzz, synthesize_corpus

SYNTH_COUNT = 200
FUNNEL_COUNT = 8


def test_fuzz_throughput(capsys):
    start = time.perf_counter()
    generated = synthesize_corpus(seed=0, count=SYNTH_COUNT)
    synth_wall = time.perf_counter() - start
    assert len(generated) == SYNTH_COUNT
    synth_rate = SYNTH_COUNT / synth_wall

    start = time.perf_counter()
    report = run_fuzz(seed=0, count=FUNNEL_COUNT, depth=1, samples=4)
    funnel_wall = time.perf_counter() - start
    assert report.ok, report.summary()
    per_program = funnel_wall / FUNNEL_COUNT

    payload = {
        "experiment": "fuzz-throughput",
        "synthesis_count": SYNTH_COUNT,
        "synthesis_wall_seconds": synth_wall,
        "synthesis_programs_per_second": synth_rate,
        "funnel_count": FUNNEL_COUNT,
        "funnel_wall_seconds": funnel_wall,
        "funnel_seconds_per_program": per_program,
        "verify_legs": list(report.verify_legs),
        "explore_candidates": sum(r.explore_candidates for r in report.programs),
    }
    # Untracked output: a committed snapshot is refreshed by an explicit
    # copy, not by every local benchmark run.
    output_path = os.path.join(os.path.dirname(__file__), "bench_fuzz.fresh.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    with capsys.disabled():
        print()
        print("=== fuzz throughput ===")
        print(f"synthesis               : {synth_rate:,.0f} programs/s "
              f"({SYNTH_COUNT} in {synth_wall:.2f}s)")
        print(f"funnel                  : {per_program:.2f} s/program "
              f"({FUNNEL_COUNT} programs, {len(report.verify_legs)} verify legs, "
              f"{funnel_wall:.1f}s)")

    # Acceptance bars: generation must never become the bottleneck, and
    # the full differential funnel must stay affordable for CI smoke runs
    # (modest on purpose — the funnel runs every parity leg).
    assert synth_rate >= 20, f"synthesis rate {synth_rate:.0f}/s below the 20/s bar"
    assert per_program < 15, (
        f"funnel cost {per_program:.1f}s/program breaches the 15s bar"
    )
