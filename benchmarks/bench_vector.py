"""E12 — the vector backend: columnar batch search vs scalar closures.

The vector backend (:mod:`repro.solver.vector`) turns the bounded-search
candidate space into an array — one row per assignment, one column per
symbol — and decides every vectorizable conjunct for thousands of rows
with a handful of numpy operations; only surviving rows see a scalar
closure call.  This benchmark quantifies that batch win on search
workloads shaped like the solver's bounded fallbacks, and the cube-wave
prefilter's share on DNF waves:

* **batch search speedup** — ``bounded_model_search`` on the vector
  backend versus the compiled backend (identical queries, identical
  results); the headline ratio is ``speedup_vs_compiled``, which the
  ``vec-perf-smoke`` CI job guards against the committed
  ``bench_vector.json`` baseline;
* **row throughput** — vector-mask rows evaluated per second, and the
  batch-size distribution behind it;
* **cube-wave prefilter** — the share of a DNF wave's cubes settled
  UNSAT by the stacked coefficient matrix before any per-cube solving.

Skipped entirely when numpy is absent (``pip install .[vec]``).

The headline numbers are written to ``benchmarks/bench_vector.fresh.json``
(promote to ``bench_vector.json`` with an explicit copy).

Run with ``PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_vector.py -q``.
"""

import json
import os
import time

import pytest

np = pytest.importorskip("numpy")

from repro.logic import formula as F
from repro.logic.formula import Const, conj, disj, exists, sym, var
from repro.solver.backend import use_backend
from repro.solver.interface import Solver
from repro.solver.lia import Status
from repro.solver.models import bounded_model_search
from repro.solver.vector import reset_vector_stats, vector_stats

RADIUS = 6  # a wider box than bench_eval: the batch win grows with rows


def _search_workload():
    """Bounded-search queries dominated by mask evaluation over many rows."""
    x, y, z, w = var("x"), var("y"), var("z"), var("w")
    return [
        # Box-UNSAT, three symbols: the full (pruned) space is swept.
        conj(F.eq(x * x + y * y, Const(997)), F.ge(z, Const(0))),
        # Box-UNSAT linear four-symbol sweep.
        conj(F.eq(x + y + z + w, Const(99)), F.le(x, Const(RADIUS))),
        # Satisfiable deep in the sweep: most rows are rejected in bulk.
        conj(F.eq(x * y * z, Const(120)), F.gt(x, y), F.gt(y, z)),
        # Min/Max/Ite terms — the general (non-linear) vector compiler.
        conj(
            F.eq(F.Max(x * x, y * y), Const(25)),
            F.ge(F.Min(x, y), Const(-5)),
            F.ne(z, Const(0)),
        ),
        # Quantified conjunct: vector mask loops a small explicit domain.
        conj(
            F.ge(x, Const(0)),
            exists(sym("k"), F.eq(x + y, var("k") * Const(3))),
            F.le(x + y, Const(6)),
        ),
    ]


def _cube_wave():
    """A DNF wave where most cubes are integer-infeasible."""
    x, y = var("x"), var("y")
    cubes = [
        conj(F.ge(x, Const(i + 50)), F.lt(x, Const(i)), F.ge(y, Const(-i)))
        for i in range(24)
    ]
    cubes.append(conj(F.ge(x, Const(2)), F.lt(x, Const(4)), F.eq(y, x + Const(1))))
    return disj(*cubes)


def test_vector_batch_search_speedup(capsys):
    workload = _search_workload()
    repeats = 6

    def run(backend):
        with use_backend(backend):  # warm compilation caches out of the timing
            warm = [
                bounded_model_search(f, radius=RADIUS, max_seconds=None)
                for f in workload
            ]
        start = time.perf_counter()
        results = warm
        with use_backend(backend):
            for _ in range(repeats):
                results = [
                    bounded_model_search(f, radius=RADIUS, max_seconds=None)
                    for f in workload
                ]
        return results, time.perf_counter() - start

    compiled_results, compiled_seconds = run("compiled")
    reset_vector_stats()
    vector_results, vector_seconds = run("vector")
    counters = vector_stats()

    assert vector_results == compiled_results  # error-free workload: identical
    speedup = compiled_seconds / vector_seconds if vector_seconds > 0 else float("inf")
    rows_per_second = (
        counters["rows_evaluated"] / vector_seconds if vector_seconds > 0 else 0.0
    )
    mean_batch_rows = counters["rows_evaluated"] / max(1, counters["batches"])

    # -- cube-wave prefilter -------------------------------------------------
    wave = _cube_wave()
    reset_vector_stats()
    with use_backend("vector"):
        solver = Solver()
        wave_result = solver.check_sat(wave)
    wave_counters = vector_stats()
    assert wave_result.status is Status.SAT
    with use_backend("compiled"):
        compiled_wave = Solver().check_sat(wave)
    assert compiled_wave.status is Status.SAT
    assert compiled_wave.model == wave_result.model
    prefilter_rate = wave_counters["prefilter_unsat"] / max(
        1, wave_counters["prefilter_cubes"]
    )

    payload = {
        "experiment": "E12-vector-backend",
        "workload_queries": len(workload),
        "repeats": repeats,
        "compiled_seconds": compiled_seconds,
        "vector_seconds": vector_seconds,
        "speedup_vs_compiled": speedup,
        "rows_evaluated": counters["rows_evaluated"],
        "batches": counters["batches"],
        "mean_batch_rows": mean_batch_rows,
        "rows_per_second": rows_per_second,
        "scalar_fallback_searches": counters["scalar_fallbacks"],
        "prefilter_cubes": wave_counters["prefilter_cubes"],
        "prefilter_unsat": wave_counters["prefilter_unsat"],
        "prefilter_unsat_rate": prefilter_rate,
    }
    output_path = os.path.join(os.path.dirname(__file__), "bench_vector.fresh.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    with capsys.disabled():
        print()
        print("=== E12: vector batch search vs compiled closures ===")
        print(f"batch search  : {compiled_seconds:.3f}s compiled -> "
              f"{vector_seconds:.3f}s vector ({speedup:.1f}x)")
        print(f"row throughput: {rows_per_second:,.0f} rows/s "
              f"(mean batch {mean_batch_rows:,.0f} rows)")
        print(f"cube prefilter: {wave_counters['prefilter_unsat']}/"
              f"{wave_counters['prefilter_cubes']} cubes settled UNSAT "
              f"({prefilter_rate:.0%})")

    # Acceptance bars: the batch path must beat the scalar closures
    # outright on this row-dominated workload, and the prefilter must
    # settle the engineered infeasible wave.
    assert speedup >= 1.5, f"vector speedup {speedup:.2f}x below the 1.5x bar"
    assert counters["rows_evaluated"] > 0
    assert prefilter_rate >= 0.5
