"""E9 — the relaxation-space explorer: throughput and cache reuse.

Characterises the explorer pipeline layered over the obligation engine:

* **candidate throughput** — candidates enumerated + gated per second for
  the LU space at depth 2 (one pooled discharge wave for the whole
  generation);
* **cache reuse across search rounds** — obligation-cache hit rate of a
  cold round versus an immediately repeated warm round against the same
  cache directory (sibling candidates share obligations, so the warm round
  must answer everything from the cache);
* the per-candidate verdict/score table for the round.

The headline numbers are also written to ``benchmarks/bench_explore.json``
so CI can archive them as a workflow artifact.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_explore.py -q``.
"""

import json
import os
import time

import pytest

from repro.explore import explore


def _run_round(cache_dir: str, depth: int = 2, samples: int = 5):
    start = time.perf_counter()
    report = explore("lu", depth=depth, samples=samples, seed=0, cache_dir=cache_dir)
    return report, time.perf_counter() - start


def test_explore_throughput_and_cache_reuse(tmp_path, capsys):
    cache_dir = str(tmp_path / "explore-cache")

    cold_report, cold_seconds = _run_round(cache_dir)
    warm_report, warm_seconds = _run_round(cache_dir)

    cold_rate = cold_report.candidates / cold_report.verify_seconds
    warm_rate = warm_report.candidates / warm_report.verify_seconds
    with capsys.disabled():
        print()
        print("=== E9: relaxation-space exploration (LU, depth 2) ===")
        print(f"candidates              : {cold_report.candidates}")
        print(f"verified candidates     : {len(cold_report.survivors)}")
        print(f"Pareto frontier         : {len(cold_report.frontier)}")
        print(f"cold gate throughput    : {cold_rate:.1f} candidates/s")
        print(f"cold cache hit rate     : {cold_report.cache_hit_rate:.0%}")
        print(f"cold wall-clock         : {cold_seconds:.3f}s")
        print(f"warm gate throughput    : {warm_rate:.1f} candidates/s")
        print(f"warm cache hit rate     : {warm_report.cache_hit_rate:.0%}")
        print(f"warm wall-clock         : {warm_seconds:.3f}s")

    # The acceptance bar: a repeated search round answers every obligation
    # from the cache — strictly better reuse than the cold round.
    assert warm_report.cache_hit_rate > cold_report.cache_hit_rate
    assert warm_report.cache_hit_rate == 1.0
    assert [o.verified for o in warm_report.outcomes] == [
        o.verified for o in cold_report.outcomes
    ]

    payload = {
        "experiment": "E9-explore",
        "case_study": cold_report.case_study,
        "depth": cold_report.depth,
        "candidates": cold_report.candidates,
        "verified_candidates": len(cold_report.survivors),
        "pareto_candidates": len(cold_report.frontier),
        "cold_candidates_per_second": cold_rate,
        "warm_candidates_per_second": warm_rate,
        "cold_cache_hit_rate": cold_report.cache_hit_rate,
        "warm_cache_hit_rate": warm_report.cache_hit_rate,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
    }
    output_path = os.path.join(os.path.dirname(__file__), "bench_explore.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


@pytest.mark.benchmark(group="E9-explore")
def test_benchmark_warm_explore_round(benchmark, tmp_path):
    """Time a fully warm explorer round (gate is pure cache replay)."""
    cache_dir = str(tmp_path / "bench-cache")
    prime, _ = _run_round(cache_dir, depth=1, samples=2)
    assert prime.survivors

    def warm_round():
        return explore("lu", depth=1, samples=2, seed=0, cache_dir=cache_dir)

    report = benchmark(warm_round)
    assert report.cache_hit_rate == 1.0
