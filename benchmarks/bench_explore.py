"""E9 — the relaxation-space explorer: throughput, reuse, and depth scaling.

Characterises the explorer pipeline layered over the obligation engine:

* **candidate throughput** — candidates enumerated + gated per second for
  the LU space at depth 2 (one pooled discharge wave per generation);
* **cache reuse across search rounds** — obligation-cache hit rate of a
  cold round versus an immediately repeated warm round against the same
  cache directory (sibling candidates share obligations, so the warm round
  must answer everything from the cache);
* **depth scaling under the incremental gate** — a depth-4 beam search
  versus the depth-2 exhaustive reference on the same host: wall-clock
  ratio (the acceptance bar is <= 2x), search-session obligation reuse
  rate (>= 60%), and candidates gated per second.

Results are written to ``benchmarks/bench_explore.fresh.json``; the
committed ``bench_explore.json`` is the reviewed baseline the fresh run is
compared against (``scripts/bench_history.py`` prefers the fresh file when
recording the trajectory).

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_explore.py -q``.
"""

import json
import os
import time

import pytest

from repro.explore import explore

RESULT_PATH = os.path.join(os.path.dirname(__file__), "bench_explore.fresh.json")


def _merge_payload(update):
    """Read-modify-write the fresh result file (tests fill their block)."""
    payload = {"experiment": "E9-explore"}
    if os.path.exists(RESULT_PATH):
        with open(RESULT_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload.update(update)
    with open(RESULT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return payload


def _run_round(cache_dir: str, depth: int = 2, samples: int = 5, **kwargs):
    start = time.perf_counter()
    report = explore(
        "lu", depth=depth, samples=samples, seed=0, cache_dir=cache_dir, **kwargs
    )
    return report, time.perf_counter() - start


def test_explore_throughput_and_cache_reuse(tmp_path, capsys):
    cache_dir = str(tmp_path / "explore-cache")

    cold_report, cold_seconds = _run_round(cache_dir)
    warm_report, warm_seconds = _run_round(cache_dir)

    cold_rate = cold_report.candidates / cold_report.verify_seconds
    warm_rate = warm_report.candidates / warm_report.verify_seconds
    with capsys.disabled():
        print()
        print("=== E9: relaxation-space exploration (LU, depth 2) ===")
        print(f"candidates              : {cold_report.candidates}")
        print(f"verified candidates     : {len(cold_report.survivors)}")
        print(f"Pareto frontier         : {len(cold_report.frontier)}")
        print(f"cold gate throughput    : {cold_rate:.1f} candidates/s")
        print(f"cold cache hit rate     : {cold_report.cache_hit_rate:.0%}")
        print(f"cold session reuse      : {cold_report.reuse_rate:.0%}")
        print(f"cold wall-clock         : {cold_seconds:.3f}s")
        print(f"warm gate throughput    : {warm_rate:.1f} candidates/s")
        print(f"warm cache hit rate     : {warm_report.cache_hit_rate:.0%}")
        print(f"warm wall-clock         : {warm_seconds:.3f}s")

    # The acceptance bar: a repeated search round answers every obligation
    # from the cache — strictly better reuse than the cold round, and zero
    # solver calls end to end.
    assert warm_report.cache_hit_rate > cold_report.cache_hit_rate
    assert warm_report.cache_hit_rate == 1.0
    assert warm_report.engine_stats["solver_calls"] == 0
    assert [o.verified for o in warm_report.outcomes] == [
        o.verified for o in cold_report.outcomes
    ]

    _merge_payload(
        {
            "case_study": cold_report.case_study,
            "depth": cold_report.depth,
            "candidates": cold_report.candidates,
            "verified_candidates": len(cold_report.survivors),
            "pareto_candidates": len(cold_report.frontier),
            "cold_candidates_per_second": cold_rate,
            "warm_candidates_per_second": warm_rate,
            "cold_cache_hit_rate": cold_report.cache_hit_rate,
            "warm_cache_hit_rate": warm_report.cache_hit_rate,
            "cold_session_reuse_rate": cold_report.reuse_rate,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
        }
    )


def test_explore_depth_scaling(tmp_path, capsys):
    """Depth 4 at roughly depth-2 cost: the incremental gate + beam bar."""
    depth2_report, depth2_seconds = _run_round(
        str(tmp_path / "cache-d2"), depth=2, samples=5
    )
    depth4_report, depth4_seconds = _run_round(
        str(tmp_path / "cache-d4"),
        depth=4,
        samples=5,
        strategy="beam",
        beam_width=6,
    )

    ratio = depth4_seconds / depth2_seconds
    depth4_rate = depth4_report.candidates / depth4_report.verify_seconds
    with capsys.disabled():
        print()
        print("=== E9: depth scaling (LU: depth-4 beam vs depth-2 exhaustive) ===")
        print(f"depth-2 exhaustive wall : {depth2_seconds:.3f}s "
              f"({depth2_report.candidates} candidates)")
        print(f"depth-4 beam wall       : {depth4_seconds:.3f}s "
              f"({depth4_report.candidates} candidates, width 6)")
        print(f"wall ratio d4/d2        : {ratio:.2f}x")
        print(f"depth-4 session reuse   : {depth4_report.reuse_rate:.0%}")
        print(f"depth-4 gate throughput : {depth4_rate:.1f} candidates/s")
        print(f"depth-4 beam pruned     : {depth4_report.beam_pruned}")

    # The tentpole acceptance bars: deep exploration at shallow-depth cost,
    # proven by the session reuse counter rather than claimed.
    assert depth4_report.reuse_rate >= 0.6
    assert ratio <= 2.0
    assert any(o.candidate.depth >= 3 for o in depth4_report.outcomes)

    _merge_payload(
        {
            "depth_scaling": {
                "depth2_wall_seconds": depth2_seconds,
                "depth2_candidates": depth2_report.candidates,
                "depth4_wall_seconds": depth4_seconds,
                "depth4_candidates": depth4_report.candidates,
                "depth4_verified": len(depth4_report.survivors),
                "depth4_beam_width": 6,
                "depth4_beam_pruned": depth4_report.beam_pruned,
                "depth4_reuse_rate": depth4_report.reuse_rate,
                "depth4_candidates_per_second": depth4_rate,
                "wall_ratio_vs_depth2": ratio,
            }
        }
    )


@pytest.mark.benchmark(group="E9-explore")
def test_benchmark_warm_explore_round(benchmark, tmp_path):
    """Time a fully warm explorer round (gate is pure cache replay)."""
    cache_dir = str(tmp_path / "bench-cache")
    prime, _ = _run_round(cache_dir, depth=1, samples=2)
    assert prime.survivors

    def warm_round():
        return explore("lu", depth=1, samples=2, seed=0, cache_dir=cache_dir)

    report = benchmark(warm_round)
    assert report.cache_hit_rate == 1.0
