"""E1 — artifact statistics (paper Section 1.6).

The paper reports the size of its Coq artifact per layer (~8000 lines total;
1300 for the original semantics, 1900 for the relaxed semantics, ~3500 for
the relational assertion logic).  The reproduction's analogue is the
proof-effort profile per layer: rule applications, obligations generated and
discharged, obligation sizes and solver time — measured over the three case
studies.  The *shape* preserved from the paper: the relational/relaxed layer
is the most expensive layer, and every case study verifies with modest
effort of the same order of magnitude.
"""

import pytest

from repro.analysis.metrics import effort_rows, format_effort_table
from repro.casestudies import all_case_studies


def _collect_rows():
    rows = []
    for cls in all_case_studies():
        case_study = cls()
        report = case_study.verify()
        assert report.verified, f"{case_study.name} failed to verify"
        rows.extend(effort_rows(case_study.name, report, case_study.paper_proof_lines))
    return rows


def test_artifact_statistics_table(capsys):
    """Regenerate the per-layer artifact statistics table."""
    rows = _collect_rows()
    with capsys.disabled():
        print()
        print("=== E1: artifact statistics (per-layer proof effort) ===")
        print("paper: 1300 LoC original layer, 1900 LoC relaxed layer, ~3500 LoC relational logic")
        print(format_effort_table(rows))
    # Shape check: for every case study the relaxed layer carries more proof
    # obligations / larger obligations than the original layer.
    by_case = {}
    for row in rows:
        by_case.setdefault(row.case_study, {})[row.layer] = row
    for case, layers in by_case.items():
        assert layers["relaxed"].obligation_size > layers["original"].obligation_size
        assert layers["relaxed"].obligations >= layers["original"].obligations


@pytest.mark.benchmark(group="E1-artifact-stats")
def test_benchmark_full_verification_of_all_case_studies(benchmark):
    """Time the full ⊢o + ⊢r verification of all three case studies."""

    def verify_all():
        return [cls().verify().verified for cls in all_case_studies()]

    results = benchmark(verify_all)
    assert all(results)
