"""E5 — metatheory validation (paper Section 4, Lemmas 1–5 / Theorems 6–9).

The paper's headline guarantees are machine-checked in Coq.  The
reproduction validates each guarantee empirically: for a verified relaxed
program, bounded exhaustive differential execution of the original and
relaxed semantics must exhibit no violation of Original Progress, Soundness
of Relational Assertions, Relative Relaxed Progress, Relaxed Progress or
its corollary.  The benchmark times the differential checker.
"""

import pytest

from repro.hoare.verifier import AcceptabilitySpec, verify_acceptability
from repro.lang import builder as b
from repro.metatheory import check_all
from repro.semantics.enumerate import EnumerationConfig
from repro.semantics.state import State


def _verified_program():
    program = b.program(
        "metatheory-subject",
        b.assume(b.ge("e", 0)),
        b.assign("y", "x"),
        b.relax("x", b.and_(b.le(b.sub("y", "e"), "x"), b.le("x", b.add("y", "e")))),
        b.relate("acc", b.within("x", b.r("e"))),
        b.assert_(b.le("x", b.add("y", "e"))),
        variables=("x", "y", "e"),
    )
    spec = AcceptabilitySpec(
        rel_precondition=b.rand(b.all_same("x", "e"), b.rge(b.r("e"), 0)),
    )
    report = verify_acceptability(program, spec)
    assert report.verified
    return program, report


STATES = [
    State.of({"x": x, "y": 0, "e": e}) for x in (-2, 0, 3) for e in (0, 1, 2)
]
CONFIG = EnumerationConfig(value_radius=3, max_choices_per_statement=16)


def test_metatheory_properties_hold_on_verified_program(capsys):
    program, report = _verified_program()
    metatheory = check_all(
        program,
        STATES,
        report.original.verified,
        report.relaxed.verified,
        CONFIG,
    )
    with capsys.disabled():
        print()
        print("=== E5: executable metatheory (Section 4) ===")
        print(metatheory.summary())
    assert metatheory.all_hold
    # Every check actually exercised executions (not vacuously true).
    exercised = [check for check in metatheory.checks if check.executions_checked > 0]
    assert len(exercised) >= 3


def test_metatheory_detects_seeded_violation():
    """A deliberately broken program (unverifiable relate) is caught by the
    differential checker — the checks are not vacuous."""
    program = b.program(
        "seeded-violation",
        b.relax("x", b.and_(b.le(0, "x"), b.le("x", 1))),
        b.relate("l", b.same("x")),
        variables=("x",),
    )
    from repro.metatheory import check_relational_assertions

    check = check_relational_assertions(program, [State.of({"x": 0})], True, CONFIG)
    assert not check.holds


@pytest.mark.benchmark(group="E5-metatheory")
def test_benchmark_differential_metatheory_checker(benchmark):
    program, report = _verified_program()

    def run_checks():
        return check_all(
            program, STATES, report.original.verified, report.relaxed.verified, CONFIG
        )

    metatheory = benchmark(run_checks)
    assert metatheory.all_hold
