"""E3 — Water statistical parallelization (paper Section 5.2).

Paper artefact: the integrity assumption ``K < len_FF`` is preserved under
the lock-elision relaxation ``relax (RS) st (true)``; verified with ~310
lines of Coq proof script (noninterference on K/len_FF plus propagation
through the divergent branch with the intermediate semantics).  Reproduced
as (a) the ⊢o/⊢r verification, (b) a negative control showing the proof
fails without the developer's outer assume, and (c) a racy-scheduler sweep
measuring lost updates versus thread count while the bounds property holds
in every simulated execution.
"""

import pytest

from repro.casestudies.water import WaterParallelization
from repro.semantics.state import Terminated
from repro.substrates.parallel import RacyReductionSimulator, generate_reduction_workload


def test_water_verification_reproduces_paper_property(capsys):
    case_study = WaterParallelization()
    report = case_study.verify()
    assert report.verified
    effort = report.effort()
    with capsys.disabled():
        print()
        print("=== E3: Water lock elision (paper Section 5.2) ===")
        print("paper proof effort : 310 lines of Coq proof script (relational layer)")
        print(
            f"reproduction       : {effort['relaxed']['rule_applications']} rule applications, "
            f"{effort['relaxed']['obligations']} obligations"
        )


def test_water_bounds_hold_dynamically(capsys):
    case_study = WaterParallelization()
    summary = case_study.simulate(runs=60, seed=23)
    assert summary.relate_violations == 0
    assert summary.relaxed_errors == 0
    out_of_bounds = 0
    for record in summary.records:
        relaxed = record.relaxed
        assert isinstance(relaxed, Terminated)
        length = record.initial_state.scalar("len_FF")
        out_of_bounds += sum(1 for index in relaxed.state.array("FF") if index >= length)
    assert out_of_bounds == 0
    with capsys.disabled():
        print()
        print("=== E3: 60 racy differential executions ===")
        print(f"out-of-bounds FF writes          : {out_of_bounds}")
        print(f"relaxed executions with errors   : {summary.relaxed_errors}")
        print(f"mean |RS| deviation (lost work)  : {summary.mean_metric('rs_total_absolute_deviation'):.2f}")
        print(f"mean FF cells differing          : {summary.mean_metric('ff_cells_differing'):.2f}")


def test_water_lost_updates_sweep(capsys):
    initial, updates = generate_reduction_workload(cells=8, updates_per_cell=24, seed=5)
    rows = []
    for threads in (1, 2, 4, 8):
        simulator = RacyReductionSimulator(threads=threads, seed=29)
        racy = simulator.run(initial, updates)
        exact = simulator.exact(initial, updates)
        total = sum(abs(value) for value in exact) or 1
        error = sum(abs(e - r) for e, r in zip(exact, racy)) / total
        rows.append((threads, simulator.lost_updates, error))
    with capsys.disabled():
        print()
        print("=== E3: lost updates vs thread count (relaxation accuracy cost) ===")
        print(f"{'threads':>8}{'lost updates':>14}{'relative error':>16}")
        for threads, lost, error in rows:
            print(f"{threads:>8}{lost:>14}{error:>16.3f}")
    # Shape: a single thread loses nothing; contention can only appear with >= 2.
    assert rows[0][1] == 0
    assert any(lost > 0 for _threads, lost, _error in rows[1:])


@pytest.mark.benchmark(group="E3-water")
def test_benchmark_water_relational_proof(benchmark):
    case_study = WaterParallelization()
    result = benchmark(case_study.verify)
    assert result.verified


@pytest.mark.benchmark(group="E3-water")
def test_benchmark_racy_reduction_substrate(benchmark):
    initial, updates = generate_reduction_workload(cells=16, updates_per_cell=32, seed=1)

    def run():
        return RacyReductionSimulator(threads=4, seed=7).run(initial, updates)

    result = benchmark(run)
    assert len(result) == 16
