"""Telemetry overhead: the disabled path must be free, the enabled path cheap.

The instrumentation points live in the engine's hottest loops (cube
solves, bounded-search sweeps, per-obligation discharge), so the telemetry
layer's contract is measured, not assumed:

* **disabled-path cost** — ``telemetry.span(...)`` / ``telemetry.count``
  with no session installed is one module-global read and a ``None``
  check; this benchmark pins the per-call nanoseconds and projects them
  onto a real verification run's event count to bound the *disabled*
  overhead fraction (acceptance bar: **<2%**);
* **enabled-path cost** — the same verification workload with a live
  session, reported as the enabled/disabled wall-clock ratio and the
  per-event cost (informational: tracing is opt-in via ``--trace``).

The projection makes the disabled-overhead gate robust in CI: instead of
comparing two noisy sub-second wall clocks, it multiplies the measured
per-call cost by the exact number of instrumentation events the workload
fires (``TelemetrySession.metric_events``).

The headline numbers are written to ``benchmarks/bench_telemetry.fresh.json``;
the committed ``bench_telemetry.json`` baseline is refreshed by an explicit
copy.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_telemetry.py -q``.
"""

import json
import os
import time

from repro import telemetry

CALLS = 200_000
REPEATS = 3
_STUDY = "sum-reduction-perforation"


def _disabled_call_seconds():
    """Per-call cost of span()/count() with no session installed."""
    assert telemetry.active_session() is None
    span = telemetry.span
    count = telemetry.count
    start = time.perf_counter()
    for _ in range(CALLS):
        with span("bench", index=1):
            pass
    span_seconds = (time.perf_counter() - start) / CALLS
    start = time.perf_counter()
    for _ in range(CALLS):
        count("bench.counter")
    count_seconds = (time.perf_counter() - start) / CALLS
    return span_seconds, count_seconds


def _enabled_call_seconds():
    session = telemetry.install(telemetry.TelemetrySession())
    span = telemetry.span
    try:
        start = time.perf_counter()
        for _ in range(CALLS):
            with span("bench", index=1):
                pass
        seconds = (time.perf_counter() - start) / CALLS
    finally:
        telemetry.uninstall()
    assert len(session.records) == CALLS
    return seconds


def _verification_run(with_session):
    """One cold verification of the workload; returns (wall, metric_events)."""
    from repro.engine import ObligationEngine, case_study_items, verify_batch

    items = case_study_items([_STUDY])
    engine = ObligationEngine.for_batch(jobs=1)
    session = telemetry.TelemetrySession() if with_session else None
    if session is not None:
        telemetry.install(session)
    try:
        start = time.perf_counter()
        report = verify_batch(items, engine=engine)
        wall = time.perf_counter() - start
    finally:
        if session is not None:
            telemetry.uninstall()
    assert report.all_verified
    return wall, (session.metric_events if session is not None else 0)


def test_telemetry_overhead(capsys):
    assert telemetry.active_session() is None

    noop_span_seconds, noop_count_seconds = _disabled_call_seconds()
    enabled_span_seconds = _enabled_call_seconds()

    disabled_wall = min(_verification_run(with_session=False)[0] for _ in range(REPEATS))
    enabled_wall, metric_events = min(
        (_verification_run(with_session=True) for _ in range(REPEATS)),
        key=lambda pair: pair[0],
    )
    assert metric_events > 0

    # Project the measured disabled per-call cost onto the run's actual
    # event count: the overhead a --trace-less run pays for the
    # instrumentation points existing at all.
    disabled_overhead = metric_events * noop_span_seconds / disabled_wall
    enabled_ratio = enabled_wall / disabled_wall

    payload = {
        "experiment": "telemetry-overhead",
        "workload": _STUDY,
        "noop_span_ns": noop_span_seconds * 1e9,
        "noop_count_ns": noop_count_seconds * 1e9,
        "enabled_span_ns": enabled_span_seconds * 1e9,
        "metric_events": metric_events,
        "disabled_wall_seconds": disabled_wall,
        "enabled_wall_seconds": enabled_wall,
        "disabled_overhead_fraction": disabled_overhead,
        "enabled_wall_ratio": enabled_ratio,
    }
    # Untracked output: the committed bench_telemetry.json snapshot is
    # refreshed by an explicit copy, not by every local benchmark run.
    output_path = os.path.join(os.path.dirname(__file__), "bench_telemetry.fresh.json")
    with open(output_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    with capsys.disabled():
        print()
        print("=== telemetry overhead ===")
        print(f"disabled span call      : {noop_span_seconds * 1e9:,.0f} ns")
        print(f"disabled count call     : {noop_count_seconds * 1e9:,.0f} ns")
        print(f"enabled span (record)   : {enabled_span_seconds * 1e9:,.0f} ns")
        print(f"workload events         : {metric_events} over {disabled_wall:.3f}s")
        print(f"disabled overhead       : {disabled_overhead:.3%} of the run")
        print(f"enabled wall ratio      : {enabled_ratio:.2f}x")

    # Acceptance bar: with telemetry off, the instrumentation costs the
    # verification pipeline less than 2% of its wall clock.
    assert disabled_overhead < 0.02, (
        f"disabled-telemetry overhead {disabled_overhead:.2%} breaches the 2% bar"
    )
    # The enabled path records real spans, so it is allowed to cost more —
    # but a live session must not dominate the run either.
    assert enabled_ratio < 2.0, f"enabled-telemetry ratio {enabled_ratio:.2f}x"


def test_disabled_span_is_the_shared_singleton():
    """The no-op guarantee behind the numbers: no allocation when off."""
    assert telemetry.active_session() is None
    first = telemetry.span("a", x=1)
    second = telemetry.span("b")
    assert first is second is telemetry.NOOP_SPAN
