"""repro — a verification framework for relaxed nondeterministic approximate programs.

This library reproduces the system of Carbin, Kim, Misailovic and Rinard,
"Proving Acceptability Properties of Relaxed Nondeterministic Approximate
Programs" (PLDI 2012):

* :mod:`repro.lang` — the relaxed-programming language (``relax``,
  ``relate``, ``assert``, ``assume``, ``havoc``) with parser and printer,
* :mod:`repro.logic` — the unary and relational assertion logics,
* :mod:`repro.solver` — decision procedures for linear integer arithmetic
  used to discharge proof obligations,
* :mod:`repro.semantics` — the dynamic original and relaxed big-step
  semantics, nondeterminism strategies and observational compatibility,
* :mod:`repro.hoare` — the axiomatic original, intermediate and relaxed
  (relational) proof systems, proof obligation generation and verification,
* :mod:`repro.metatheory` — executable versions of the paper's soundness
  lemmas and theorems, validated by differential testing,
* :mod:`repro.relaxations` — program transformations that produce relaxed
  programs (loop perforation, dynamic knobs, approximate memory, ...),
* :mod:`repro.substrates` — simulated substrates (approximate memory,
  racy parallel schedules, workload generators),
* :mod:`repro.casestudies` — the paper's Section 5 case studies,
* :mod:`repro.analysis` — accuracy metrics, sweeps and effort reports.
"""

__version__ = "1.0.0"

__all__ = [
    "lang",
    "logic",
    "solver",
    "semantics",
    "hoare",
    "metatheory",
    "relaxations",
    "substrates",
    "casestudies",
    "analysis",
]
