"""The persistent obligation result cache.

Verdicts are keyed by the canonical fingerprint of the obligation (see
:mod:`repro.engine.fingerprint`).  The cache is an in-memory LRU with an
optional on-disk JSON store: re-verifying an edited program only re-solves
the obligations whose formulas actually changed; everything else is answered
from the cache without a single solver call.

Caching policy
--------------

* only **conclusive** verdicts are stored — ``UNKNOWN`` is *never* cached,
  so a budget exhaustion today cannot masquerade as a proof (or a refuted
  proof) tomorrow;
* counterexample models are stored alongside ``INVALID`` / ``SAT`` verdicts
  (fingerprinting preserves free-symbol names, so cached models remain
  meaningful for every formula mapping to the same key);
* the on-disk store is written atomically (temp file + rename) and a
  corrupt or version-mismatched store is discarded rather than trusted.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from ..logic.formula import Symbol, Tag
from ..solver.lia import Status

_STORE_VERSION = 1
_STORE_FILENAME = "obligation_cache.json"
_TAGGED_NAME = re.compile(r"^(?P<name>.*)<(?P<tag>[or])>$")


def _symbol_to_str(symbol: Symbol) -> str:
    return str(symbol)


def _symbol_from_str(text: str) -> Symbol:
    match = _TAGGED_NAME.match(text)
    if match:
        return Symbol(match.group("name"), Tag(match.group("tag")))
    return Symbol(text, None)


@dataclass
class CachedVerdict:
    """A conclusive solver verdict replayed from the cache."""

    status: Status
    model: Optional[Dict[Symbol, int]] = None
    reason: str = ""
    strategy: str = ""
    #: Which tier produced the entry: ``"memory"`` for verdicts stored by
    #: this process, ``"disk"`` for entries replayed from the persistent
    #: store — telemetry reports cache hits per tier.
    origin: str = "memory"


class ObligationCache:
    """In-memory LRU of obligation verdicts with an optional JSON store."""

    def __init__(
        self,
        capacity: int = 8192,
        cache_dir: Optional[str] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._entries: "OrderedDict[str, CachedVerdict]" = OrderedDict()
        self._dirty = False
        if cache_dir is not None:
            self.load()

    def __len__(self) -> int:
        return len(self._entries)

    # -- lookup / insert ---------------------------------------------------------

    def get(self, key: str) -> Optional[CachedVerdict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(
        self,
        key: str,
        status: Status,
        model: Optional[Dict[Symbol, int]] = None,
        reason: str = "",
        strategy: str = "",
    ) -> bool:
        """Store a verdict; returns False (and stores nothing) for UNKNOWN."""
        if status is Status.UNKNOWN:
            return False
        self._entries[key] = CachedVerdict(
            status=status,
            model=dict(model) if model is not None else None,
            reason=reason,
            strategy=strategy,
        )
        self._entries.move_to_end(key)
        self.stores += 1
        self._dirty = True
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return True

    def clear(self) -> None:
        if self._entries:
            self._dirty = True
        self._entries.clear()

    # -- persistence -------------------------------------------------------------

    def _store_path(self) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, _STORE_FILENAME)

    def load(self) -> int:
        """Load entries from the on-disk store; returns how many were loaded."""
        path = self._store_path()
        if path is None or not os.path.exists(path):
            return 0
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != _STORE_VERSION:
                return 0
            loaded = 0
            for key, entry in payload.get("entries", {}).items():
                status = Status(entry["status"])
                if status is Status.UNKNOWN:
                    continue
                model = entry.get("model")
                self._entries[key] = CachedVerdict(
                    status=status,
                    model=(
                        {_symbol_from_str(name): int(value) for name, value in model.items()}
                        if model is not None
                        else None
                    ),
                    reason=entry.get("reason", ""),
                    strategy=entry.get("strategy", ""),
                    origin="disk",
                )
                loaded += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return loaded
        except (OSError, ValueError, KeyError, TypeError):
            # A corrupt store is treated as empty, never trusted.
            self._entries.clear()
            return 0

    def save(self) -> Optional[str]:
        """Atomically write the store to ``cache_dir``.

        A no-op when no directory is configured or nothing changed since the
        last save — callers (the engine flushes after every discharge wave)
        need not track dirtiness themselves.
        """
        path = self._store_path()
        if path is None or not self._dirty:
            return None
        os.makedirs(self.cache_dir, exist_ok=True)
        payload = {
            "version": _STORE_VERSION,
            "entries": {
                key: {
                    "status": entry.status.value,
                    "model": (
                        {_symbol_to_str(symbol): value for symbol, value in entry.model.items()}
                        if entry.model is not None
                        else None
                    ),
                    "reason": entry.reason,
                    "strategy": entry.strategy,
                }
                for key, entry in self._entries.items()
            },
        }
        fd, temp_path = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_path, path)
        except OSError:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        self._dirty = False
        return path

    # -- reporting ---------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "stores": float(self.stores),
            "hit_rate": self.hit_rate,
        }
