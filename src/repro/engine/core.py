"""The obligation engine: cached, parallel, portfolio-scheduled discharge.

:class:`ObligationEngine` sits between the Hoare layer (which *collects*
proof obligations) and the solver stack (which *decides* individual
queries).  For every batch of obligations it:

1. computes each obligation's canonical fingerprint
   (:mod:`repro.engine.fingerprint`);
2. answers fingerprint hits from the result cache
   (:mod:`repro.engine.cache`) without touching a solver;
3. discharges the remaining obligations either serially on a caller-provided
   :class:`~repro.solver.interface.Solver` (the seed-compatible path) or via
   the strategy portfolio (:mod:`repro.engine.portfolio`) on the parallel
   scheduler (:mod:`repro.engine.scheduler`);
4. stores conclusive verdicts back into the cache and credits the winning
   strategy so future obligations try it first.

The engine constructed by :func:`default_engine` — one solver, one job, no
cache, no portfolio — reproduces the seed's serial discharge loop exactly
(including its solver-statistics accounting), which is what the thin
:func:`repro.hoare.obligations.discharge` wrapper uses.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..hoare.obligations import (
    ObligationCollector,
    ObligationKind,
    ObligationResult,
    ProofObligation,
    VerificationReport,
)
from ..solver.backend import requested_backend
from ..solver.interface import Solver, SolverResult, SolverStatistics
from ..solver.lia import Status
from .cache import ObligationCache
from .fingerprint import fingerprint
from .portfolio import Portfolio, is_conclusive
from .scheduler import DischargeScheduler, DischargeTask


@dataclass
class EngineStatistics:
    """Aggregate statistics over the lifetime of an engine instance."""

    obligations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    dedup_hits: int = 0  # in-wave duplicates answered by a representative
    #: Obligations answered by a search-session verdict store before they
    #: reached the engine (the incremental gate; see engine/incremental.py),
    #: and the complement that was actually discharged as delta.  Both stay
    #: zero outside incremental searches; ``obligations`` above counts only
    #: what entered ``discharge_all``, i.e. the delta.
    incremental_reused: int = 0
    delta_obligations: int = 0
    solver_calls: int = 0
    strategy_attempts: int = 0
    parallel_batches: int = 0
    unknown_results: int = 0
    total_seconds: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "obligations": float(self.obligations),
            "cache_hits": float(self.cache_hits),
            "cache_misses": float(self.cache_misses),
            "dedup_hits": float(self.dedup_hits),
            "incremental_reused": float(self.incremental_reused),
            "delta_obligations": float(self.delta_obligations),
            "solver_calls": float(self.solver_calls),
            "strategy_attempts": float(self.strategy_attempts),
            "parallel_batches": float(self.parallel_batches),
            "unknown_results": float(self.unknown_results),
            "total_seconds": self.total_seconds,
        }


class ObligationEngine:
    """Discharges proof obligations through cache, portfolio and scheduler.

    Parameters
    ----------
    solver:
        The solver used by the plain serial path (no portfolio, one job).
        Shared with the Hoare layer so its statistics keep accumulating
        exactly as in the seed.  Ignored when a portfolio is in play.
    jobs:
        Worker processes for parallel discharge.  ``jobs > 1`` implies the
        portfolio path (worker processes build their own solvers).
    cache / cache_dir:
        A result cache instance, or a directory to create a persistent one
        in.  ``None`` disables caching.
    portfolio:
        The strategy portfolio; created on demand when ``jobs > 1``.
    budget_seconds:
        Per-obligation wall-clock budget across portfolio strategies
        (implies the portfolio path, like ``jobs > 1``).
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        jobs: int = 1,
        cache: Optional[ObligationCache] = None,
        cache_dir: Optional[str] = None,
        portfolio: Optional[Portfolio] = None,
        budget_seconds: Optional[float] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if cache is None and cache_dir is not None:
            cache = ObligationCache(cache_dir=cache_dir)
        # Parallelism and per-obligation budgets are portfolio-path features:
        # create the default portfolio rather than silently ignoring them.
        if portfolio is None and (jobs > 1 or budget_seconds is not None):
            portfolio = Portfolio()
        self.solver = solver
        self.jobs = jobs
        self.cache = cache
        self.portfolio = portfolio
        self.budget_seconds = budget_seconds
        self.statistics = EngineStatistics()
        #: Solver-level counters aggregated across every discharge this
        #: engine performed: the portfolio path merges worker statistics
        #: shipped back with each outcome, the serial path merges the shared
        #: solver's delta per wave (so queries the caller makes on that
        #: solver outside the engine are not attributed to it).
        self.solver_statistics = SolverStatistics()
        self._scheduler = DischargeScheduler(jobs=jobs)

    @classmethod
    def for_batch(
        cls,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        budget_seconds: Optional[float] = None,
    ) -> "ObligationEngine":
        """An engine configured for batch verification: cache + portfolio.

        When ``cache_dir`` is given, both the obligation cache and the
        portfolio win table persist across invocations.
        """
        portfolio = Portfolio()
        if cache_dir is not None:
            portfolio.load(cache_dir)
        return cls(
            jobs=jobs,
            cache=ObligationCache(cache_dir=cache_dir),
            portfolio=portfolio,
            budget_seconds=budget_seconds,
        )

    # -- discharge ---------------------------------------------------------------

    def discharge_all(
        self, obligations: Sequence[ProofObligation]
    ) -> List[ObligationResult]:
        """Discharge every obligation, in order, through cache and solvers."""
        start = time.perf_counter()
        results: List[Optional[ObligationResult]] = [None] * len(obligations)
        pending: List[int] = []
        keys: List[Optional[str]] = [None] * len(obligations)
        # Duplicate obligations inside one wave (e.g. the same entailment
        # arising in several programs of a batch) are solved once: later
        # occurrences wait for the representative's verdict.  Dedup applies
        # whenever fingerprints are computed — with a cache or on the
        # portfolio path; the plain serial path stays seed-identical (one
        # solver call per obligation, duplicates included).
        fingerprinting = self.cache is not None or self.portfolio is not None
        pending_by_key: Dict[str, int] = {}
        duplicates: Dict[int, List[int]] = {}
        self.statistics.obligations += len(obligations)

        wave_span = telemetry.span("discharge.wave", obligations=len(obligations))
        with wave_span:
            with telemetry.span("fingerprint", obligations=len(obligations)):
                for index, obligation in enumerate(obligations):
                    if fingerprinting:
                        key = fingerprint(obligation.formula, obligation.kind.value)
                        keys[index] = key
                        representative = pending_by_key.get(key)
                        if representative is not None:
                            duplicates.setdefault(representative, []).append(index)
                            continue
                        if self.cache is not None:
                            verdict = self.cache.get(key)
                            if verdict is not None:
                                self.statistics.cache_hits += 1
                                telemetry.count("engine.cache.hits." + verdict.origin)
                                results[index] = ObligationResult(
                                    obligation=obligation,
                                    status=verdict.status,
                                    counterexample=(
                                        dict(verdict.model)
                                        if verdict.model is not None
                                        else None
                                    ),
                                    elapsed_seconds=0.0,
                                    reason=verdict.reason,
                                )
                                continue
                            self.statistics.cache_misses += 1
                            telemetry.count("engine.cache.misses")
                        pending_by_key[key] = index
                    pending.append(index)

            if pending:
                with telemetry.span(
                    "dispatch", pending=len(pending), jobs=self.jobs
                ) as dispatch_span:
                    if self.portfolio is not None:
                        dispatch_span.set_attribute("path", "portfolio")
                        self._discharge_portfolio(obligations, pending, keys, results)
                    else:
                        dispatch_span.set_attribute("path", "serial")
                        self._discharge_serial(obligations, pending, keys, results)

        for representative, followers in duplicates.items():
            settled = results[representative]
            assert settled is not None
            for index in followers:
                self.statistics.dedup_hits += 1
                telemetry.count("engine.dedup.hits")
                results[index] = ObligationResult(
                    obligation=obligations[index],
                    status=settled.status,
                    counterexample=(
                        dict(settled.counterexample)
                        if settled.counterexample is not None
                        else None
                    ),
                    elapsed_seconds=0.0,
                    reason=settled.reason,
                )

        if self.cache is not None:
            self.cache.save()
        self.statistics.total_seconds += time.perf_counter() - start
        # Exactly one result per obligation, in input order — the batch
        # layer's offset-based scatter depends on it, so fail loudly rather
        # than silently shifting verdicts between programs.
        settled_results = [result for result in results if result is not None]
        if len(settled_results) != len(obligations):
            raise RuntimeError(
                f"discharge_all settled {len(settled_results)} of "
                f"{len(obligations)} obligations"
            )
        return settled_results

    def discharge_collected(
        self, collector: ObligationCollector, program_name: str
    ) -> VerificationReport:
        """Build a :class:`VerificationReport` for a collector's obligations."""
        start = time.perf_counter()
        report = VerificationReport(
            system=collector.system,
            program_name=program_name,
            rule_applications=dict(collector.rule_applications),
            errors=list(collector.errors),
        )
        report.results = self.discharge_all(collector.obligations)
        report.elapsed_seconds = time.perf_counter() - start
        return report

    # -- discharge paths ---------------------------------------------------------

    def _discharge_serial(
        self,
        obligations: Sequence[ProofObligation],
        pending: Sequence[int],
        keys: Sequence[Optional[str]],
        results: List[Optional[ObligationResult]],
    ) -> None:
        """The seed-compatible path: one shared solver, obligations in order."""
        solver = self.solver
        if solver is None:
            solver = self.solver = Solver()
        before = solver.statistics.as_dict()
        for index in pending:
            obligation = obligations[index]
            obligation_start = time.perf_counter()
            with telemetry.span(
                "discharge",
                index=index,
                kind=obligation.kind.value,
                rule=obligation.rule,
                strategy="serial",
            ) as discharge_span:
                provenance = obligation.provenance
                if provenance is not None:
                    if provenance.program:
                        discharge_span.set_attribute("program", provenance.program)
                    if provenance.study:
                        discharge_span.set_attribute("study", provenance.study)
                    if provenance.span is not None:
                        discharge_span.set_attribute(
                            "location", provenance.location()
                        )
                    if provenance.sites:
                        discharge_span.set_attribute(
                            "sites", ",".join(provenance.sites)
                        )
                if obligation.kind is ObligationKind.VALIDITY:
                    result: SolverResult = solver.check_valid(obligation.formula)
                else:
                    result = solver.check_sat(obligation.formula)
                discharge_span.set_attribute("status", result.status.value)
            self.statistics.solver_calls += 1
            if result.status is Status.UNKNOWN:
                self.statistics.unknown_results += 1
            results[index] = ObligationResult(
                obligation=obligation,
                status=result.status,
                counterexample=result.model,
                elapsed_seconds=time.perf_counter() - obligation_start,
                reason=result.reason,
            )
            self._store(keys[index], result.status, result.model, result.reason, "serial")
        after = solver.statistics.as_dict()
        self.solver_statistics.merge(
            {key: after[key] - before.get(key, 0) for key in after}
        )
        # The shared solver has no portfolio, so its wave delta is booked
        # under the pseudo-strategy "serial" — keeping the per-strategy
        # breakdown total-preserving on both discharge paths.
        self.solver_statistics.add_strategy_seconds(
            "serial", after["total_seconds"] - before.get("total_seconds", 0.0)
        )

    def _discharge_portfolio(
        self,
        obligations: Sequence[ProofObligation],
        pending: Sequence[int],
        keys: Sequence[Optional[str]],
        results: List[Optional[ObligationResult]],
    ) -> None:
        assert self.portfolio is not None
        collect_telemetry = telemetry.enabled()
        tasks = []
        for index in pending:
            obligation = obligations[index]
            kind = obligation.kind.value
            provenance = obligation.provenance
            label = ""
            if provenance is not None:
                parts = [provenance.program or provenance.study]
                if provenance.span is not None:
                    parts.append(provenance.location())
                label = " @ ".join(part for part in parts if part)
            tasks.append(
                DischargeTask(
                    index=index,
                    formula=obligation.formula,
                    kind=kind,
                    strategies=self.portfolio.order_for(kind),
                    budget_seconds=self.budget_seconds,
                    collect_telemetry=collect_telemetry,
                    label=label,
                    backend=requested_backend(),
                )
            )
        if len(tasks) > 1 and self.jobs > 1:
            self.statistics.parallel_batches += 1
        for outcome in self._scheduler.run(tasks):
            obligation = obligations[outcome.index]
            self.statistics.solver_calls += outcome.attempts
            self.statistics.strategy_attempts += outcome.attempts
            if outcome.status is Status.UNKNOWN:
                self.statistics.unknown_results += 1
            if outcome.solver_stats is not None:
                self.solver_statistics.merge(outcome.solver_stats)
            if outcome.telemetry is not None:
                # Worker-process spans arrive as an exported session;
                # re-parent them under the open dispatch span so the
                # trace stays one tree across processes.
                telemetry.merge_exported(outcome.telemetry)
            if outcome.strategy and is_conclusive(obligation.kind.value, outcome.status):
                self.portfolio.record_win(obligation.kind.value, outcome.strategy)
                telemetry.count(
                    f"portfolio.wins.{obligation.kind.value}.{outcome.strategy}"
                )
            results[outcome.index] = ObligationResult(
                obligation=obligation,
                status=outcome.status,
                counterexample=outcome.model,
                elapsed_seconds=outcome.elapsed_seconds,
                reason=outcome.reason,
            )
            self._store(
                keys[outcome.index],
                outcome.status,
                outcome.model,
                outcome.reason,
                outcome.strategy,
            )

    def _store(
        self,
        key: Optional[str],
        status: Status,
        model,
        reason: str,
        strategy: str,
    ) -> None:
        if self.cache is not None and key is not None:
            self.cache.put(key, status, model=model, reason=reason, strategy=strategy)

    # -- persistence / reporting --------------------------------------------------

    def save(self) -> None:
        """Flush the cache and portfolio win table to their cache directory."""
        if self.cache is not None:
            self.cache.save()
            if self.portfolio is not None and self.cache.cache_dir is not None:
                self.portfolio.save(self.cache.cache_dir)

    def stats(self) -> Dict[str, Dict[str, float]]:
        report = {
            "engine": self.statistics.as_dict(),
            "solver": self.solver_statistics.as_dict(),
        }
        if self.cache is not None:
            report["cache"] = self.cache.stats()
        return report


def default_engine(solver: Optional[Solver] = None) -> ObligationEngine:
    """The engine behind the classic synchronous discharge path."""
    return ObligationEngine(solver=solver)
