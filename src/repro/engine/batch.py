"""Batch verification: many programs, one pooled discharge wave.

The batch layer is where the engine's concurrency pays off across *program*
boundaries: obligations are collected from every program first (VC
generation is cheap), pooled into a single :meth:`ObligationEngine.
discharge_all` wave — so independent obligations from different programs
prove concurrently and share one cache — and the verdicts are then scattered
back into per-program :class:`~repro.hoare.verifier.AcceptabilityReport`
objects identical in shape to the serial path's.

Batch items come from the built-in case studies
(:func:`case_study_items`) or from a directory of ``.rlx`` sources
(:func:`directory_items`, verified against the default acceptability
specification).  The resulting :class:`BatchReport` renders both as a
fixed-width table (via :func:`repro.analysis.metrics.format_batch_table`)
and as a structured JSON document for downstream tooling.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..analysis.metrics import BatchRow, format_batch_table
from ..casestudies import all_case_studies
from ..hoare.obligations import ObligationResult, VerificationReport
from ..hoare.verifier import (
    AcceptabilityReport,
    AcceptabilitySpec,
    AcceptabilityVerifier,
    CollectedAcceptability,
)
from ..lang.ast import Program
from ..lang.parser import parse_program
from ..solver.interface import Solver
from .core import ObligationEngine
from .fingerprint import fingerprint
from .incremental import VerdictStore


@dataclass
class BatchItem:
    """One program plus the specification to verify it against.

    ``program`` is ``None`` (with ``error`` set) for sources that failed to
    parse — one bad file must not sink the batch, so the failure is carried
    into the report instead of raised.
    """

    name: str
    program: Optional[Program]
    spec: AcceptabilitySpec
    error: str = ""
    #: Case-study name (when the item came from the registry) and applied
    #: relaxation-site identifiers — flow into obligation provenance.
    study: str = ""
    sites: Tuple[str, ...] = ()


def case_study_items(names: Optional[Sequence[str]] = None) -> List[BatchItem]:
    """Batch items for the registered case studies (all, or the named ones).

    Names resolve through the case-study registry, so anything
    :func:`repro.casestudies.get_case_study` accepts works here (registered
    names, class names, unique prefixes); unknown names raise the
    registry's error, which lists every registered study.
    """
    from ..casestudies import get_case_study

    if names:
        # Dedup by resolved name (first mention wins): aliases of the same
        # study must not verify it twice or duplicate report rows.
        studies_by_name: Dict[str, object] = {}
        for name in names:
            study = get_case_study(name)
            studies_by_name.setdefault(study.name, study)
        studies = list(studies_by_name.values())
    else:
        studies = [cls() for cls in all_case_studies()]
    items: List[BatchItem] = []
    for case_study in studies:
        program = case_study.build_program()
        items.append(
            BatchItem(
                name=case_study.name,
                program=program,
                spec=case_study.acceptability_spec(program),
                study=case_study.name,
            )
        )
    return items


def program_items(
    programs: Sequence[Tuple[str, Optional[Program], AcceptabilitySpec]],
    study: str = "",
) -> List[BatchItem]:
    """Batch items for an in-memory candidate stream.

    This is the entry point the relaxation-space explorer uses: each
    candidate relaxed program arrives as a ``(name, program, spec)`` triple
    — or a 4-tuple with the applied relaxation-site identifiers appended,
    which flow into obligation provenance along with the optional ``study``
    (case-study name shared by every candidate) — and the whole generation is
    verified as one pooled discharge wave — sibling candidates share most of
    their obligations, so the engine's in-wave dedup and cross-run cache do
    the heavy lifting.  A ``None`` program marks a candidate whose
    construction failed; it is carried into the report as an error entry
    rather than dropped.
    """
    items: List[BatchItem] = []
    for entry in programs:
        name, program, spec = entry[0], entry[1], entry[2]
        sites = tuple(entry[3]) if len(entry) > 3 else ()
        if program is None:
            items.append(
                BatchItem(
                    name=name,
                    program=None,
                    spec=spec,
                    error=f"candidate {name} could not be constructed",
                    study=study,
                    sites=sites,
                )
            )
        else:
            items.append(
                BatchItem(name=name, program=program, spec=spec, study=study, sites=sites)
            )
    return items


def directory_items(directory: str, pattern_suffix: str = ".rlx") -> List[BatchItem]:
    """Batch items for every ``*.rlx`` program in ``directory``.

    Programs from a directory carry no annotations beyond what is in their
    source, so they are verified against the default acceptability
    specification (trivial unary pre/postconditions, noninterference as the
    relational precondition).
    """
    if not os.path.isdir(directory):
        raise ValueError(f"not a directory: {directory!r}")
    items: List[BatchItem] = []
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(pattern_suffix):
            continue
        path = os.path.join(directory, entry)
        name = os.path.splitext(entry)[0]
        try:
            with open(path, "r", encoding="utf-8") as handle:
                program = parse_program(handle.read(), name=name)
        except Exception as error:  # parse/IO failure becomes a report entry
            items.append(
                BatchItem(
                    name=name,
                    program=None,
                    spec=AcceptabilitySpec(),
                    error=f"failed to parse {entry}: {error}",
                )
            )
            continue
        items.append(BatchItem(name=program.name, program=program, spec=AcceptabilitySpec()))
    return items


@dataclass
class BatchProgramResult:
    """The verdict for one batch item."""

    name: str
    report: Optional[AcceptabilityReport]
    error: str = ""
    elapsed_seconds: float = 0.0
    #: The verified program with source/spans attached (not serialised) —
    #: kept so ``--explain`` can render annotated excerpts post-hoc.
    program: Optional[Program] = None
    #: Incremental-gate accounting, populated only when ``verify_batch``
    #: ran with a :class:`~repro.engine.incremental.VerdictStore`: how many
    #: of this program's pooled obligations were answered by the search
    #: session's store vs discharged as fresh delta, plus the canonical
    #: fingerprint and verdict status of every obligation in pooled order
    #: (original layer then relaxed).  Not serialised by ``as_dict`` — the
    #: explorer folds them into its own per-candidate records.
    reused_obligations: int = 0
    delta_obligations: int = 0
    obligation_fingerprints: Tuple[str, ...] = ()
    obligation_statuses: Tuple[str, ...] = ()

    @property
    def verified(self) -> bool:
        return self.report is not None and self.report.verified and not self.error

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "verified": self.verified,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.error:
            payload["error"] = self.error
        if self.report is not None:
            payload["guarantees"] = self.report.guarantees()
            payload["layers"] = {
                "original": self.report.original.as_dict(),
                "relaxed": self.report.relaxed.as_dict(),
            }
        return payload


@dataclass
class BatchReport:
    """The structured outcome of one ``verify-batch`` invocation."""

    programs: List[BatchProgramResult] = field(default_factory=list)
    jobs: int = 1
    elapsed_seconds: float = 0.0
    engine_stats: Dict[str, float] = field(default_factory=dict)
    solver_stats: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, float] = field(default_factory=dict)
    strategy_wins: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def all_verified(self) -> bool:
        return bool(self.programs) and all(result.verified for result in self.programs)

    def as_dict(self) -> Dict[str, object]:
        return {
            "all_verified": self.all_verified,
            "jobs": self.jobs,
            "elapsed_seconds": self.elapsed_seconds,
            "programs": [result.as_dict() for result in self.programs],
            "engine": self.engine_stats,
            "solver": self.solver_stats,
            "cache": self.cache_stats,
            "strategy_wins": self.strategy_wins,
        }

    def summary(self) -> str:
        rows = []
        for result in self.programs:
            obligations = discharged = 0
            if result.report is not None:
                for verification in (result.report.original, result.report.relaxed):
                    obligations += len(verification.results)
                    discharged += sum(1 for r in verification.results if r.discharged)
            rows.append(
                BatchRow(
                    program=result.name,
                    verified=result.verified,
                    obligations=obligations,
                    discharged=discharged,
                    elapsed_seconds=result.elapsed_seconds,
                    error=result.error,
                )
            )
        lines = [format_batch_table(rows)]
        lines.append("")
        verdict = "ALL VERIFIED" if self.all_verified else "NOT ALL VERIFIED"
        lines.append(
            f"{verdict}: {sum(1 for r in self.programs if r.verified)}/"
            f"{len(self.programs)} programs, jobs={self.jobs}, "
            f"wall-clock {self.elapsed_seconds:.3f}s"
        )
        if self.engine_stats:
            lines.append(
                "engine: "
                f"{self.engine_stats.get('solver_calls', 0):.0f} solver calls, "
                f"{self.engine_stats.get('cache_hits', 0):.0f} cache hits / "
                f"{self.engine_stats.get('cache_misses', 0):.0f} misses"
            )
        if self.strategy_wins:
            parts = []
            for kind, table in sorted(self.strategy_wins.items()):
                for name, count in sorted(table.items(), key=lambda kv: -kv[1]):
                    parts.append(f"{name}({kind[:3]})={count}")
            lines.append("portfolio wins: " + ", ".join(parts))
        return "\n".join(lines)


def verify_batch(
    items: Sequence[BatchItem],
    engine: Optional[ObligationEngine] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    budget_seconds: Optional[float] = None,
    collect_solver: Optional[Solver] = None,
    verdict_store: Optional[VerdictStore] = None,
) -> BatchReport:
    """Verify every batch item through one pooled engine discharge wave.

    When a ``verdict_store`` (a search-session
    :class:`~repro.engine.incremental.VerdictStore`) is given, pooled
    obligations whose canonical fingerprint the store has already settled
    are answered from it without entering the engine — only the delta is
    discharged — and the delta's verdicts are recorded back.  Per-program
    reuse counts, obligation fingerprints, and verdict statuses are then
    attached to each :class:`BatchProgramResult` for the explorer.
    """
    if engine is None:
        engine = ObligationEngine.for_batch(
            jobs=jobs, cache_dir=cache_dir, budget_seconds=budget_seconds
        )
    start = time.perf_counter()
    verifier = AcceptabilityVerifier(solver=collect_solver or Solver())

    # The root span every other event of this run nests under — collect
    # spans, the discharge wave, worker spans re-parented by the engine.
    batch_span = telemetry.span("batch", programs=len(items), jobs=engine.jobs)
    with batch_span:
        # Phase 1: collect every program's obligations (VC generation is cheap
        # and serial; convergence checks use the collection solver).
        collected: List[Tuple[BatchItem, Optional[CollectedAcceptability], str, float]] = []
        for item in items:
            item_start = time.perf_counter()
            if item.program is None:
                collected.append((item, None, item.error or "no program", 0.0))
                continue
            try:
                with telemetry.span("collect", program=item.name):
                    bundle = verifier.collect(
                        item.program, item.spec, study=item.study, sites=item.sites
                    )
                collected.append(
                    (item, bundle, "", time.perf_counter() - item_start)
                )
            except Exception as error:  # defensive: one bad program must not sink the batch
                collected.append(
                    (item, None, str(error), time.perf_counter() - item_start)
                )

        # Phase 2: pool all obligations into one discharge wave.
        pooled = []
        spans: List[Tuple[int, int, int]] = []  # (offset, #original, #relaxed)
        for _item, bundle, _error, _elapsed in collected:
            if bundle is None:
                spans.append((len(pooled), 0, 0))
                continue
            spans.append(
                (len(pooled), len(bundle.original.obligations), len(bundle.relaxed.obligations))
            )
            pooled.extend(bundle.original.obligations)
            pooled.extend(bundle.relaxed.obligations)
        if verdict_store is None:
            results = engine.discharge_all(pooled)
            fingerprints: Optional[List[str]] = None
            reused_flags: Optional[List[bool]] = None
        else:
            results, fingerprints, reused_flags = _discharge_incremental(
                engine, pooled, verdict_store
            )

        # Phase 3: scatter verdicts back into per-program reports.
        report = BatchReport(jobs=engine.jobs)
        with telemetry.span("scatter", programs=len(collected)):
            for (item, bundle, error, collect_elapsed), (offset, n_original, n_relaxed) in zip(
                collected, spans
            ):
                if bundle is None:
                    report.programs.append(
                        BatchProgramResult(
                            name=item.name, report=None, error=error,
                            elapsed_seconds=collect_elapsed,
                        )
                    )
                    continue
                original_results = results[offset : offset + n_original]
                relaxed_results = results[offset + n_original : offset + n_original + n_relaxed]
                original_report = _layer_report(bundle, item.name, original_results, relaxed=False)
                relaxed_report = _layer_report(bundle, item.name, relaxed_results, relaxed=True)
                acceptability = AcceptabilityReport(
                    program_name=item.name,
                    original=original_report,
                    relaxed=relaxed_report,
                )
                result = BatchProgramResult(
                    name=item.name,
                    report=acceptability,
                    elapsed_seconds=collect_elapsed
                    + original_report.elapsed_seconds
                    + relaxed_report.elapsed_seconds,
                    program=bundle.program,
                )
                if fingerprints is not None and reused_flags is not None:
                    end = offset + n_original + n_relaxed
                    result.obligation_fingerprints = tuple(fingerprints[offset:end])
                    result.obligation_statuses = tuple(
                        item_result.status.value for item_result in results[offset:end]
                    )
                    result.reused_obligations = sum(reused_flags[offset:end])
                    result.delta_obligations = (
                        end - offset - result.reused_obligations
                    )
                report.programs.append(result)

        engine.save()
    report.elapsed_seconds = time.perf_counter() - start
    report.engine_stats = engine.statistics.as_dict()
    report.solver_stats = engine.solver_statistics.as_dict()
    if engine.cache is not None:
        report.cache_stats = engine.cache.stats()
    if engine.portfolio is not None:
        report.strategy_wins = engine.portfolio.win_table()
    return report


def _discharge_incremental(
    engine: ObligationEngine,
    pooled: Sequence,
    store: VerdictStore,
) -> Tuple[List[ObligationResult], List[str], List[bool]]:
    """Answer pooled obligations from the session store; discharge the delta.

    Returns the results in pooled order plus the parallel canonical
    fingerprint list and a reused-flag list (True = answered by the store
    without entering the engine).  The store replays UNKNOWN verdicts on
    purpose — matching the engine's in-wave dedup contract — so a
    generational search settles obligations byte-identically to a single
    exhaustive wave.
    """
    with telemetry.span("incremental.gate", obligations=len(pooled)):
        fingerprints = [
            fingerprint(obligation.formula, obligation.kind.value)
            for obligation in pooled
        ]
        results: List[Optional[ObligationResult]] = [None] * len(pooled)
        reused_flags = [False] * len(pooled)
        delta_indices: List[int] = []
        for index, (obligation, key) in enumerate(zip(pooled, fingerprints)):
            verdict = store.get(key)
            if verdict is None:
                delta_indices.append(index)
                continue
            reused_flags[index] = True
            results[index] = ObligationResult(
                obligation=obligation,
                status=verdict.status,
                counterexample=(
                    dict(verdict.model) if verdict.model is not None else None
                ),
                elapsed_seconds=0.0,
                reason=verdict.reason,
            )
        reused = len(pooled) - len(delta_indices)
        telemetry.count("engine.incremental.reused", reused)
        telemetry.count("engine.incremental.delta", len(delta_indices))
        engine.statistics.incremental_reused += reused
        engine.statistics.delta_obligations += len(delta_indices)
    delta_results = engine.discharge_all([pooled[i] for i in delta_indices])
    for index, delta_result in zip(delta_indices, delta_results):
        results[index] = delta_result
        store.record(fingerprints[index], delta_result)
    settled = [result for result in results if result is not None]
    if len(settled) != len(pooled):
        raise RuntimeError(
            f"incremental gate settled {len(settled)} of {len(pooled)} obligations"
        )
    return settled, fingerprints, reused_flags


def _layer_report(
    bundle: CollectedAcceptability,
    program_name: str,
    results: List[ObligationResult],
    relaxed: bool,
) -> VerificationReport:
    collector = bundle.relaxed if relaxed else bundle.original
    return VerificationReport(
        system=collector.system,
        program_name=program_name,
        results=list(results),
        errors=list(collector.errors),
        rule_applications=dict(collector.rule_applications),
        elapsed_seconds=sum(result.elapsed_seconds for result in results),
    )
