"""Canonical obligation fingerprinting.

Two proof obligations whose formulas are *syntactically equivalent modulo
presentation* — alpha-renaming of bound variables, reordering of conjuncts
and disjuncts, orientation of symmetric atoms — should hit the same entry in
the obligation cache.  This module computes a canonical serialisation of a
formula and hashes it (together with the obligation kind, since validity and
satisfiability verdicts are incomparable) into a stable hex fingerprint.

The canonicalisation is deliberately *sound rather than complete*: equal
fingerprints imply semantically equivalent queries, but semantically
equivalent queries may still fingerprint differently (e.g. ``x > 0`` versus
``x >= 1``).  The normalisations applied are:

* bound variables are replaced by de Bruijn indices (distance to the
  binder), so the canonical form is independent of the fresh-name counter
  that generated them;
* ``And`` / ``Or`` operands are serialised, deduplicated and sorted;
* symmetric constructs are oriented: ``>`` / ``>=`` atoms are flipped into
  ``<`` / ``<=``, the operands of ``==`` / ``!=`` / ``<=>`` and of the
  commutative term operators (``+``, ``*``, ``min``, ``max``) are sorted.

Free symbols (program variables and arrays) keep their names: a cached
counterexample model therefore remains meaningful for every formula that
maps to the same fingerprint.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

from ..logic.formula import (
    Add,
    And,
    Atom,
    Const,
    Div,
    Divides,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Ite,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Rel,
    Select,
    Store,
    Sub,
    SymTerm,
    Symbol,
    Term,
    TrueF,
    formula_arrays,
    free_symbols,
)

# Relations whose atoms are flipped so only {<, <=, ==, !=} appear in
# canonical forms.
_FLIP = {Rel.GT: Rel.LT, Rel.GE: Rel.LE}
_SYMMETRIC = {Rel.EQ, Rel.NE}

_Env = Dict[Symbol, int]

# Canonical strings of *environment-independent* formula nodes.  A node whose
# free symbols and array symbols are disjoint from the binder environment
# serialises the same regardless of the environment or the absolute depth
# (de Bruijn indices are relative), so its string can be cached on the
# interned node and shared across every obligation that contains it — the
# common case for the ground subformulas pooled by the batch engine and the
# explorer.  A plain dict: interned nodes live for the whole process anyway
# (the intern table is never cleared), so weak keys would buy nothing.
_CANON_CACHE: Dict[Formula, str] = {}


def _env_independent(formula: Formula, env: _Env) -> bool:
    if not env:
        return True
    keys = env.keys()
    return keys.isdisjoint(free_symbols(formula)) and keys.isdisjoint(
        formula_arrays(formula)
    )


def _canon_symbol(symbol: Symbol, env: _Env, depth: int) -> str:
    bound_at = env.get(symbol)
    if bound_at is not None:
        # de Bruijn index: 1 is the innermost enclosing binder.
        return f"b{depth - bound_at}"
    return f"s:{symbol}"


def _canon_term(term: Term, env: _Env, depth: int) -> str:
    if isinstance(term, Const):
        return str(term.value)
    if isinstance(term, SymTerm):
        return _canon_symbol(term.symbol, env, depth)
    if isinstance(term, Add):
        return "(+ %s)" % " ".join(
            sorted((_canon_term(term.left, env, depth), _canon_term(term.right, env, depth)))
        )
    if isinstance(term, Mul):
        return "(* %s)" % " ".join(
            sorted((_canon_term(term.left, env, depth), _canon_term(term.right, env, depth)))
        )
    if isinstance(term, Min):
        return "(min %s)" % " ".join(
            sorted((_canon_term(term.left, env, depth), _canon_term(term.right, env, depth)))
        )
    if isinstance(term, Max):
        return "(max %s)" % " ".join(
            sorted((_canon_term(term.left, env, depth), _canon_term(term.right, env, depth)))
        )
    if isinstance(term, Sub):
        return f"(- {_canon_term(term.left, env, depth)} {_canon_term(term.right, env, depth)})"
    if isinstance(term, Div):
        return f"(/ {_canon_term(term.left, env, depth)} {_canon_term(term.right, env, depth)})"
    if isinstance(term, Mod):
        return f"(% {_canon_term(term.left, env, depth)} {_canon_term(term.right, env, depth)})"
    if isinstance(term, Ite):
        return (
            f"(ite {_canon_formula(term.condition, env, depth)} "
            f"{_canon_term(term.then_term, env, depth)} "
            f"{_canon_term(term.else_term, env, depth)})"
        )
    if isinstance(term, Select):
        return (
            f"(sel {_canon_array(term.array, env, depth)} "
            f"{_canon_term(term.index, env, depth)})"
        )
    if isinstance(term, Store):
        return (
            f"(st {_canon_array(term.array, env, depth)} "
            f"{_canon_term(term.index, env, depth)} "
            f"{_canon_term(term.value, env, depth)})"
        )
    raise TypeError(f"unknown term {term!r}")


def _canon_array(array, env: _Env, depth: int) -> str:
    """Canonicalise an array position (a symbol or an unexpanded Store chain).

    Array symbols go through the binder environment too: the proof rules
    never quantify over arrays today, but if a quantified array symbol ever
    reached the cache it must not collide with a same-named free array.
    """
    if isinstance(array, Symbol):
        return f"a[{_canon_symbol(array, env, depth)}]"
    return _canon_term(array, env, depth)


def _canon_nary(tag: str, parts: Tuple[str, ...]) -> str:
    unique = sorted(set(parts))
    if len(unique) == 1:
        return unique[0]
    return f"({tag} {' '.join(unique)})"


def _canon_formula(formula: Formula, env: _Env, depth: int) -> str:
    cacheable = _env_independent(formula, env)
    if cacheable:
        cached = _CANON_CACHE.get(formula)
        if cached is not None:
            return cached
    text = _canon_formula_uncached(formula, env, depth)
    if cacheable:
        _CANON_CACHE[formula] = text
    return text


def _canon_formula_uncached(formula: Formula, env: _Env, depth: int) -> str:
    if isinstance(formula, TrueF):
        return "T"
    if isinstance(formula, FalseF):
        return "F"
    if isinstance(formula, Atom):
        rel, left, right = formula.rel, formula.left, formula.right
        if rel in _FLIP:
            rel, left, right = _FLIP[rel], right, left
        left_s = _canon_term(left, env, depth)
        right_s = _canon_term(right, env, depth)
        if rel in _SYMMETRIC and right_s < left_s:
            left_s, right_s = right_s, left_s
        return f"({rel.value} {left_s} {right_s})"
    if isinstance(formula, Divides):
        return f"(| {formula.divisor} {_canon_term(formula.term, env, depth)})"
    if isinstance(formula, And):
        return _canon_nary(
            "and", tuple(_canon_formula(op, env, depth) for op in formula.operands)
        )
    if isinstance(formula, Or):
        return _canon_nary(
            "or", tuple(_canon_formula(op, env, depth) for op in formula.operands)
        )
    if isinstance(formula, Not):
        return f"(not {_canon_formula(formula.operand, env, depth)})"
    if isinstance(formula, Implies):
        return (
            f"(=> {_canon_formula(formula.antecedent, env, depth)} "
            f"{_canon_formula(formula.consequent, env, depth)})"
        )
    if isinstance(formula, Iff):
        left_s = _canon_formula(formula.left, env, depth)
        right_s = _canon_formula(formula.right, env, depth)
        if right_s < left_s:
            left_s, right_s = right_s, left_s
        return f"(iff {left_s} {right_s})"
    if isinstance(formula, (Exists, Forall)):
        inner_env = dict(env)
        inner_env[formula.symbol] = depth + 1
        tag = "ex" if isinstance(formula, Exists) else "all"
        return f"({tag} {_canon_formula(formula.body, inner_env, depth + 1)})"
    raise TypeError(f"unknown formula {formula!r}")


def canonical_form(formula: Formula) -> str:
    """The canonical serialisation of ``formula`` (see module docstring)."""
    return _canon_formula(formula, {}, 0)


def fingerprint(formula: Formula, kind: str) -> str:
    """A stable hex cache key for the obligation ``(kind, formula)``.

    ``kind`` distinguishes validity from satisfiability queries (the string
    values of :class:`~repro.hoare.obligations.ObligationKind`).
    """
    payload = f"{kind}|{canonical_form(formula)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
