"""The obligation engine: cached, parallel, portfolio-scheduled discharge.

This subsystem sits between the Hoare layer (which generates proof
obligations) and the solver stack (which decides individual queries):

* :mod:`~repro.engine.fingerprint` — canonical obligation fingerprinting
  (alpha-renaming to de Bruijn indices, conjunct sorting, symmetric-atom
  orientation) hashed into stable cache keys;
* :mod:`~repro.engine.cache` — an in-memory LRU of conclusive verdicts with
  an optional persistent JSON store (``UNKNOWN`` is never cached);
* :mod:`~repro.engine.portfolio` — named solver configurations raced in
  sequence per obligation, with a win table that reorders future attempts;
* :mod:`~repro.engine.scheduler` — parallel discharge over a
  ``ProcessPoolExecutor`` with per-obligation budgets;
* :mod:`~repro.engine.core` — :class:`ObligationEngine`, the facade tying
  the pieces together behind ``discharge_all`` / ``discharge_collected``;
* :mod:`~repro.engine.batch` — multi-program batch verification
  (``repro verify-batch``) pooling every program's obligations into one
  discharge wave and emitting a structured report;
* :mod:`~repro.engine.incremental` — the search-session verdict store
  behind incremental re-verification: generational searches answer
  already-settled obligations (by canonical fingerprint) from the session
  and discharge only the delta.
"""

from .cache import CachedVerdict, ObligationCache
from .core import EngineStatistics, ObligationEngine, default_engine
from .fingerprint import canonical_form, fingerprint
from .incremental import StoredVerdict, VerdictStore
from .portfolio import (
    DEFAULT_STRATEGIES,
    Portfolio,
    SolverStrategy,
    is_conclusive,
    run_portfolio,
)
from .scheduler import DischargeOutcome, DischargeScheduler, DischargeTask
from .batch import (
    BatchItem,
    BatchProgramResult,
    BatchReport,
    case_study_items,
    directory_items,
    program_items,
    verify_batch,
)

__all__ = [
    "BatchItem",
    "BatchProgramResult",
    "BatchReport",
    "CachedVerdict",
    "DEFAULT_STRATEGIES",
    "DischargeOutcome",
    "DischargeScheduler",
    "DischargeTask",
    "EngineStatistics",
    "ObligationCache",
    "ObligationEngine",
    "Portfolio",
    "SolverStrategy",
    "StoredVerdict",
    "VerdictStore",
    "canonical_form",
    "case_study_items",
    "default_engine",
    "directory_items",
    "fingerprint",
    "is_conclusive",
    "program_items",
    "run_portfolio",
    "verify_batch",
]
