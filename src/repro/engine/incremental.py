"""Search-session verdict store: incremental re-verification across waves.

A deep exploration discharges near-identical candidates generation after
generation — a child program differs from its parent by one site edit, so
most of its proof obligations are byte-identical (same canonical
fingerprint) to obligations the search already settled.  The persistent
:class:`~repro.engine.cache.ObligationCache` answers *conclusive* verdicts
across processes, but it deliberately refuses ``UNKNOWN`` (a later run
with a bigger budget should retry), and every hit still walks the engine's
fingerprint/dedup machinery per wave.

:class:`VerdictStore` is the session-scoped layer above it: a plain
fingerprint → verdict memo that lives exactly as long as one search.  The
batch layer consults it *before* the pooled discharge wave, hands only the
delta (obligations the session has never seen) to the engine, and records
the delta's verdicts back.  Two deliberate semantic differences from the
persistent cache:

* **UNKNOWN verdicts replay.**  Within one wave the engine's in-wave dedup
  already answers duplicate obligations with the representative's verdict,
  whatever it is — including ``UNKNOWN``.  The store extends exactly that
  contract across waves, so a generational search settles every obligation
  the same way the old single-wave exhaustive gate did (byte-identical
  fingerprints and verdicts), just without re-paying the solver.
* **Session lifetime only.**  Nothing is persisted; a fresh search starts
  empty and the persistent cache still answers the first occurrence of
  each conclusive obligation.

The reuse counters (``reused`` / ``delta``) are the evidence the
incremental gate works: :meth:`stats` feeds the ``incremental`` section of
the ``repro explore --json`` envelope, and the batch layer mirrors them
into telemetry (``engine.incremental.reused`` / ``engine.incremental.delta``)
and the engine statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..hoare.obligations import ObligationResult
from ..solver.lia import Status


@dataclass(frozen=True)
class StoredVerdict:
    """One settled obligation verdict, keyed by canonical fingerprint."""

    status: Status
    model: Optional[Dict[object, int]]
    reason: str = ""


class VerdictStore:
    """Session-scoped fingerprint → verdict memo over one search.

    ``get`` counts a reuse on every hit; ``record`` counts a delta
    discharge on every store.  ``reused + delta`` therefore equals the
    total number of obligations the search pooled (duplicate occurrences
    within one wave each count once — they are distinct pooled
    obligations, even though the engine's in-wave dedup proves them once).
    """

    def __init__(self) -> None:
        self._entries: Dict[str, StoredVerdict] = {}
        self.reused = 0
        self.delta = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> Optional[StoredVerdict]:
        """The stored verdict for ``key`` (counted as a reuse), or None."""
        entry = self._entries.get(key)
        if entry is not None:
            self.reused += 1
        return entry

    def peek(self, key: str) -> Optional[StoredVerdict]:
        """Like :meth:`get` but without touching the reuse counter."""
        return self._entries.get(key)

    def record(self, key: str, result: ObligationResult) -> None:
        """Store a freshly discharged verdict (counted as a delta)."""
        self.delta += 1
        self._entries[key] = StoredVerdict(
            status=result.status,
            model=(
                dict(result.counterexample)
                if result.counterexample is not None
                else None
            ),
            reason=result.reason,
        )

    @property
    def total(self) -> int:
        """Obligations seen by the store: reused + discharged as delta."""
        return self.reused + self.delta

    @property
    def reuse_rate(self) -> float:
        return self.reused / self.total if self.total else 0.0

    def stats(self) -> Dict[str, float]:
        """The ``incremental`` section of the explore report/envelope."""
        return {
            "reused": float(self.reused),
            "delta_obligations": float(self.delta),
            "total_obligations": float(self.total),
            "reuse_rate": self.reuse_rate,
            "store_entries": float(len(self._entries)),
        }
