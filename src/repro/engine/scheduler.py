"""Parallel obligation discharge over a process pool.

Proof obligations are independent of each other — each is a closed query
against the decision procedures — so a batch of them (from one program or
from many) can be discharged concurrently.  The scheduler fans tasks out to
a :class:`concurrent.futures.ProcessPoolExecutor`; each worker runs the
strategy portfolio for its obligation and ships back a compact, picklable
outcome (the formula IR is made of frozen dataclasses, so tasks pickle
as-is).

``jobs=1`` (or a single task) short-circuits to an in-process loop with no
executor, which keeps the serial path free of multiprocessing overhead and
usable from environments where forking is undesirable.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..logic.formula import Formula, Symbol
from ..solver.backend import BackendUnavailableError, set_backend
from ..solver.interface import SolverStatistics
from ..solver.lia import Status
from .portfolio import SolverStrategy, run_portfolio


@dataclass(frozen=True)
class DischargeTask:
    """One obligation to discharge: position, query, and strategy order."""

    index: int
    formula: Formula
    kind: str  # ObligationKind value: "validity" | "satisfiability"
    strategies: Tuple[SolverStrategy, ...]
    budget_seconds: Optional[float] = None
    #: Whether the worker should record telemetry spans for this task.
    #: Set by the engine when a session is active in the dispatching
    #: process; worker processes have no session of their own, so they
    #: build a task-local one and ship the export home on the outcome.
    collect_telemetry: bool = False
    #: Human-readable provenance label ("program @ line 3, columns 5-12")
    #: recorded on the worker's discharge span — the obligation itself
    #: never crosses the process boundary, only this summary does.
    label: str = ""
    #: Requested evaluation backend (:data:`repro.solver.backend.BACKENDS`).
    #: Backend selection is per-process state, so the dispatcher records its
    #: request here and every worker re-applies it before solving; spawned
    #: workers would otherwise silently run on their own default.
    backend: str = "auto"


@dataclass(frozen=True)
class DischargeOutcome:
    """The portfolio's verdict for one task, matched back by ``index``."""

    index: int
    status: Status
    model: Optional[Dict[Symbol, int]]
    reason: str
    strategy: str  # winning strategy name, "" if none concluded
    attempts: int
    elapsed_seconds: float
    #: Solver counters summed over every strategy attempted for this task
    #: (picklable, so worker-process statistics survive the trip home).
    solver_stats: Optional[Dict[str, float]] = None
    #: The worker-local telemetry session, exported
    #: (:meth:`~repro.telemetry.TelemetrySession.export`) for the engine
    #: to re-parent under the dispatching wave's span.  ``None`` when the
    #: task ran in-process (its spans landed on the ambient session
    #: directly) or telemetry was off.
    telemetry: Optional[Dict[str, object]] = None


def _discharge_one(task: DischargeTask) -> DischargeOutcome:
    if task.collect_telemetry:
        active = telemetry.active_session()
        if active is None or active.pid != os.getpid():
            # Worker process: record into a task-local session and ship
            # the export home for re-parenting.  The pid check matters on
            # fork-start platforms, where workers inherit a *copy* of the
            # parent's active session — recording there would be silently
            # discarded.  In-process discharge (jobs=1) keeps the ambient
            # session, so spans nest under the wave naturally.
            session = telemetry.TelemetrySession()
            with telemetry.activated(session):
                outcome = _discharge_inner(task)
            return replace(outcome, telemetry=session.export())
    return _discharge_inner(task)


def _discharge_inner(task: DischargeTask) -> DischargeOutcome:
    start = time.perf_counter()
    try:
        set_backend(task.backend)
    except BackendUnavailableError:
        # A spawned worker without the optional extra must still make
        # progress: degrade to auto (-> compiled) rather than fail the task.
        set_backend("auto")
    statistics = SolverStatistics()
    with telemetry.span("discharge", index=task.index, kind=task.kind) as span:
        if task.label:
            span.set_attribute("provenance", task.label)
        result, winner, attempts = run_portfolio(
            task.formula, task.kind, task.strategies, task.budget_seconds, statistics
        )
        span.set_attribute("status", result.status.value)
        span.set_attribute("strategy", winner)
        span.set_attribute("attempts", attempts)
    return DischargeOutcome(
        index=task.index,
        status=result.status,
        model=result.model,
        reason=result.reason,
        strategy=winner,
        attempts=attempts,
        elapsed_seconds=time.perf_counter() - start,
        solver_stats=statistics.as_dict(),
    )


class DischargeScheduler:
    """Runs discharge tasks either in-process or across worker processes."""

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs

    def run(self, tasks: Sequence[DischargeTask]) -> List[DischargeOutcome]:
        """Discharge every task; outcomes are returned in task order."""
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            return [_discharge_one(task) for task in tasks]
        workers = min(self.jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            outcomes = list(pool.map(_discharge_one, tasks))
        outcomes.sort(key=lambda outcome: outcome.index)
        return outcomes
