"""Strategy portfolios: alternative solver configurations per obligation.

Every configuration of :class:`~repro.solver.interface.Solver` is
*conservative* — a conclusive verdict (``VALID`` / ``INVALID`` / ``SAT`` /
``UNSAT``) is correct under any budget, and budget exhaustion only ever
yields ``UNKNOWN``.  That makes solver configurations freely composable into
a portfolio: strategies are attempted in sequence and the first conclusive
verdict wins; an ``UNKNOWN`` merely hands the obligation to the next
strategy.

The portfolio also *learns*: it records which strategy produced the
conclusive verdict for each obligation kind and reorders future attempts by
win count, so a corpus dominated by (say) quick cube-solvable entailments
stops paying the full-pipeline start-up cost on every obligation.  Win
tables can be persisted next to the obligation cache and merged back from
parallel workers.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import telemetry
from ..logic.formula import Formula
from ..solver.interface import Solver, SolverResult, SolverStatistics
from ..solver.lia import Status

_STATS_FILENAME = "portfolio_stats.json"

#: Statuses that end a portfolio run, per query kind ("validity" /
#: "satisfiability" — the values of ObligationKind, kept as strings here so
#: worker processes need not unpickle the hoare layer).
_CONCLUSIVE = {
    "validity": (Status.VALID, Status.INVALID),
    "satisfiability": (Status.SAT, Status.UNSAT),
}


@dataclass(frozen=True)
class SolverStrategy:
    """One named solver configuration (picklable; solvers built per use)."""

    name: str
    max_cubes: int = 4096
    branch_depth: int = 40
    bounded_radius: int = 4
    enable_cooper: bool = True
    enable_bounded_fallback: bool = True

    def build(self) -> Solver:
        return Solver(
            max_cubes=self.max_cubes,
            branch_depth=self.branch_depth,
            bounded_radius=self.bounded_radius,
            enable_cooper=self.enable_cooper,
            enable_bounded_fallback=self.enable_bounded_fallback,
        )


#: The default portfolio: a cheap cube-only probe, the complete pipeline,
#: then a wider bounded model search for obligations the complete
#: procedures gave up on.
DEFAULT_STRATEGIES: Tuple[SolverStrategy, ...] = (
    SolverStrategy(
        "cube-fast",
        max_cubes=1024,
        branch_depth=24,
        enable_cooper=False,
        enable_bounded_fallback=False,
    ),
    SolverStrategy("full"),
    SolverStrategy(
        "bounded-probe",
        max_cubes=512,
        branch_depth=16,
        bounded_radius=6,
    ),
)


def is_conclusive(kind: str, status: Status) -> bool:
    """Whether ``status`` settles an obligation of the given kind."""
    return status in _CONCLUSIVE.get(kind, ())


def run_portfolio(
    formula: Formula,
    kind: str,
    strategies: Sequence[SolverStrategy],
    budget_seconds: Optional[float] = None,
    statistics: Optional["SolverStatistics"] = None,
) -> Tuple[SolverResult, str, int]:
    """Attempt ``strategies`` in order until one is conclusive.

    Returns ``(result, winning_strategy_name, attempts)``; the winner is
    ``""`` when no strategy concluded.  ``budget_seconds`` bounds the *total*
    wall clock across strategies: once spent, remaining strategies are
    skipped (at least one strategy always runs).  The budget is checked
    *between* strategies only — a strategy that is already running is never
    preempted, so one slow decision-procedure call can overshoot the budget;
    hard preemption would require killing worker processes mid-solve.

    When ``statistics`` is given, every attempted solver's counters are
    merged into it (the scheduler ships them back to the engine so batch
    reports can expose solver-level statistics across worker processes).
    """
    start = time.perf_counter()
    last = SolverResult(Status.UNKNOWN, reason="no strategy attempted")
    attempts = 0
    for strategy in strategies:
        if (
            budget_seconds is not None
            and attempts > 0
            and time.perf_counter() - start >= budget_seconds
        ):
            last = SolverResult(
                Status.UNKNOWN,
                reason=(
                    f"per-obligation budget of {budget_seconds:g}s exhausted "
                    f"after {attempts} strategies (last: {last.reason or last.status.value})"
                ),
            )
            break
        solver = strategy.build()
        with telemetry.span("strategy", name=strategy.name, kind=kind) as attempt_span:
            if kind == "validity":
                result = solver.check_valid(formula)
            else:
                result = solver.check_sat(formula)
            attempt_span.set_attribute("status", result.status.value)
        attempts += 1
        if statistics is not None:
            statistics.merge(solver.statistics.as_dict())
            # The breakdown the win table lacks: how long each strategy
            # actually ran, not just whether it concluded.
            statistics.add_strategy_seconds(
                strategy.name, solver.statistics.total_seconds
            )
        if is_conclusive(kind, result.status):
            return result, strategy.name, attempts
        last = result
    return last, "", attempts


class Portfolio:
    """An ordered strategy collection with a per-kind win table."""

    def __init__(self, strategies: Optional[Sequence[SolverStrategy]] = None) -> None:
        self.strategies: Tuple[SolverStrategy, ...] = tuple(
            strategies if strategies is not None else DEFAULT_STRATEGIES
        )
        if not self.strategies:
            raise ValueError("a portfolio needs at least one strategy")
        names = [strategy.name for strategy in self.strategies]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate strategy names: {names}")
        # wins[kind][name] -> conclusive verdicts produced.
        self.wins: Dict[str, Dict[str, int]] = {}

    def order_for(self, kind: str) -> Tuple[SolverStrategy, ...]:
        """Strategies ordered by historical wins for ``kind`` (stable)."""
        table = self.wins.get(kind)
        if not table:
            return self.strategies
        indexed = list(enumerate(self.strategies))
        indexed.sort(key=lambda pair: (-table.get(pair[1].name, 0), pair[0]))
        return tuple(strategy for _index, strategy in indexed)

    def record_win(self, kind: str, name: str, count: int = 1) -> None:
        table = self.wins.setdefault(kind, {})
        table[name] = table.get(name, 0) + count

    def merge_wins(self, wins: Dict[str, Dict[str, int]]) -> None:
        for kind, table in wins.items():
            for name, count in table.items():
                self.record_win(kind, name, count)

    def win_table(self) -> Dict[str, Dict[str, int]]:
        return {kind: dict(table) for kind, table in self.wins.items()}

    # -- persistence -------------------------------------------------------------

    def save(self, directory: str) -> str:
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, _STATS_FILENAME)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"wins": self.win_table()}, handle)
        return path

    def load(self, directory: str) -> bool:
        path = os.path.join(directory, _STATS_FILENAME)
        if not os.path.exists(path):
            return False
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            wins = payload.get("wins", {})
            known = {strategy.name for strategy in self.strategies}
            for kind, table in wins.items():
                for name, count in table.items():
                    if name in known:
                        self.record_win(str(kind), str(name), int(count))
            return True
        except (OSError, ValueError, TypeError):
            return False
