"""A small fluent DSL for constructing programs in Python.

Writing deeply nested dataclass constructors is tedious; case studies, tests
and examples instead use this builder:

>>> from repro.lang import builder as b
>>> prog = b.program(
...     "count",
...     b.assign("i", 0),
...     b.while_(b.lt("i", "n"), b.assign("i", b.add("i", 1)),
...              invariant=b.le("i", "n")),
...     b.assert_(b.eq("i", "n")),
... )

Expression helpers accept ``int`` literals, variable-name strings, or AST
nodes and coerce them appropriately.  Relational expression helpers use the
``o("x")`` / ``r("x")`` constructors for ``x<o>`` / ``x<r>``.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

from . import ast
from .ast import (
    ArrayAssign,
    ArrayRead,
    Assert,
    Assign,
    Assume,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    BoolOp,
    CmpOp,
    Compare,
    Execution,
    Expr,
    Havoc,
    If,
    IntOp,
    Not,
    Program,
    Relate,
    Relax,
    RelArrayRead,
    RelBinOp,
    RelBoolBin,
    RelBoolExpr,
    RelBoolLit,
    RelCompare,
    RelExpr,
    RelNot,
    RelVar,
    Skip,
    Stmt,
    While,
)

IntLike = Union[int, str, Expr]
RelIntLike = Union[int, RelExpr]
BoolLike = Union[bool, BoolExpr]
RelBoolLike = Union[bool, RelBoolExpr]


# ---------------------------------------------------------------------------
# Expression constructors
# ---------------------------------------------------------------------------


def e(value: IntLike) -> Expr:
    """Coerce ``value`` into an integer expression."""
    return ast.int_expr(value)


def v(name: str) -> Expr:
    """A variable reference."""
    return ast.Var(name)


def n(value: int) -> Expr:
    """An integer literal."""
    return ast.IntLit(value)


def add(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.ADD, e(left), e(right))


def sub(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.SUB, e(left), e(right))


def mul(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.MUL, e(left), e(right))


def div(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.DIV, e(left), e(right))


def mod(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.MOD, e(left), e(right))


def min_(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.MIN, e(left), e(right))


def max_(left: IntLike, right: IntLike) -> Expr:
    return BinOp(IntOp.MAX, e(left), e(right))


def aread(array: str, index: IntLike) -> Expr:
    """An array read ``array[index]``."""
    return ArrayRead(array, e(index))


# ---------------------------------------------------------------------------
# Boolean expression constructors
# ---------------------------------------------------------------------------


def bl(value: BoolLike) -> BoolExpr:
    """Coerce ``value`` into a boolean expression."""
    if isinstance(value, BoolExpr):
        return value
    if isinstance(value, bool):
        return BoolLit(value)
    raise TypeError(f"cannot coerce {value!r} to a boolean expression")


true = BoolLit(True)
false = BoolLit(False)


def lt(left: IntLike, right: IntLike) -> BoolExpr:
    return Compare(CmpOp.LT, e(left), e(right))


def le(left: IntLike, right: IntLike) -> BoolExpr:
    return Compare(CmpOp.LE, e(left), e(right))


def gt(left: IntLike, right: IntLike) -> BoolExpr:
    return Compare(CmpOp.GT, e(left), e(right))


def ge(left: IntLike, right: IntLike) -> BoolExpr:
    return Compare(CmpOp.GE, e(left), e(right))


def eq(left: IntLike, right: IntLike) -> BoolExpr:
    return Compare(CmpOp.EQ, e(left), e(right))


def ne(left: IntLike, right: IntLike) -> BoolExpr:
    return Compare(CmpOp.NE, e(left), e(right))


def and_(*operands: BoolLike) -> BoolExpr:
    return ast.conj(*[bl(op) for op in operands])


def or_(*operands: BoolLike) -> BoolExpr:
    return ast.disj(*[bl(op) for op in operands])


def implies(left: BoolLike, right: BoolLike) -> BoolExpr:
    return BoolBin(BoolOp.IMPLIES, bl(left), bl(right))


def not_(operand: BoolLike) -> BoolExpr:
    return Not(bl(operand))


# ---------------------------------------------------------------------------
# Relational expression constructors
# ---------------------------------------------------------------------------


def re(value: RelIntLike) -> RelExpr:
    """Coerce ``value`` into a relational integer expression."""
    return ast.rel_expr(value)


def o(name: str) -> RelVar:
    """The original-execution reference ``name<o>``."""
    return RelVar(name, Execution.ORIGINAL)


def r(name: str) -> RelVar:
    """The relaxed-execution reference ``name<r>``."""
    return RelVar(name, Execution.RELAXED)


def oread(array: str, index: RelIntLike) -> RelExpr:
    """Original-execution array read ``array<o>[index]``."""
    return RelArrayRead(array, Execution.ORIGINAL, re(index))


def rread(array: str, index: RelIntLike) -> RelExpr:
    """Relaxed-execution array read ``array<r>[index]``."""
    return RelArrayRead(array, Execution.RELAXED, re(index))


def radd(left: RelIntLike, right: RelIntLike) -> RelExpr:
    return RelBinOp(IntOp.ADD, re(left), re(right))


def rsub(left: RelIntLike, right: RelIntLike) -> RelExpr:
    return RelBinOp(IntOp.SUB, re(left), re(right))


def rmul(left: RelIntLike, right: RelIntLike) -> RelExpr:
    return RelBinOp(IntOp.MUL, re(left), re(right))


def rbl(value: RelBoolLike) -> RelBoolExpr:
    if isinstance(value, RelBoolExpr):
        return value
    if isinstance(value, bool):
        return RelBoolLit(value)
    raise TypeError(f"cannot coerce {value!r} to a relational boolean expression")


rel_true = RelBoolLit(True)
rel_false = RelBoolLit(False)


def rlt(left: RelIntLike, right: RelIntLike) -> RelBoolExpr:
    return RelCompare(CmpOp.LT, re(left), re(right))


def rle(left: RelIntLike, right: RelIntLike) -> RelBoolExpr:
    return RelCompare(CmpOp.LE, re(left), re(right))


def rgt(left: RelIntLike, right: RelIntLike) -> RelBoolExpr:
    return RelCompare(CmpOp.GT, re(left), re(right))


def rge(left: RelIntLike, right: RelIntLike) -> RelBoolExpr:
    return RelCompare(CmpOp.GE, re(left), re(right))


def req(left: RelIntLike, right: RelIntLike) -> RelBoolExpr:
    return RelCompare(CmpOp.EQ, re(left), re(right))


def rne(left: RelIntLike, right: RelIntLike) -> RelBoolExpr:
    return RelCompare(CmpOp.NE, re(left), re(right))


def rand(*operands: RelBoolLike) -> RelBoolExpr:
    return ast.rel_conj(*[rbl(op) for op in operands])


def ror(*operands: RelBoolLike) -> RelBoolExpr:
    return ast.rel_disj(*[rbl(op) for op in operands])


def rimplies(left: RelBoolLike, right: RelBoolLike) -> RelBoolExpr:
    return RelBoolBin(BoolOp.IMPLIES, rbl(left), rbl(right))


def rnot(operand: RelBoolLike) -> RelBoolExpr:
    return RelNot(rbl(operand))


def same(name: str) -> RelBoolExpr:
    """The noninterference atom ``name<o> == name<r>``.

    The paper's example proofs lean heavily on this shape of relational
    invariant ("relational assertions that establish the equality of values
    of variables in the original and relaxed executions").
    """
    return req(o(name), r(name))


def all_same(*names: str) -> RelBoolExpr:
    """Conjunction of :func:`same` over several variable names."""
    return rand(*[same(name) for name in names])


def within(name: str, bound: RelIntLike) -> RelBoolExpr:
    """The accuracy envelope ``|name<o> - name<r>| <= bound``.

    Expressed without absolute value as the conjunction
    ``name<o> - name<r> <= bound && name<r> - name<o> <= bound`` exactly as
    in the paper's LU decomposition example (Section 5.3).
    """
    return rand(
        rle(rsub(o(name), r(name)), re(bound)),
        rle(rsub(r(name), o(name)), re(bound)),
    )


# ---------------------------------------------------------------------------
# Statement constructors
# ---------------------------------------------------------------------------

skip = Skip()


def assign(target: str, value: IntLike) -> Stmt:
    return Assign(target, e(value))


def astore(array: str, index: IntLike, value: IntLike) -> Stmt:
    """Array element assignment ``array[index] = value``."""
    return ArrayAssign(array, e(index), e(value))


def havoc(targets: Union[str, Tuple[str, ...], list], predicate: BoolLike) -> Stmt:
    return Havoc(_target_tuple(targets), bl(predicate))


def relax(targets: Union[str, Tuple[str, ...], list], predicate: BoolLike) -> Stmt:
    return Relax(_target_tuple(targets), bl(predicate))


def assume(condition: BoolLike) -> Stmt:
    return Assume(bl(condition))


def assert_(condition: BoolLike) -> Stmt:
    return Assert(bl(condition))


def relate(label: str, condition: RelBoolLike) -> Stmt:
    return Relate(label, rbl(condition))


def if_(condition: BoolLike, then_branch: Stmt, else_branch: Stmt = skip) -> Stmt:
    return If(bl(condition), then_branch, else_branch)


def while_(
    condition: BoolLike,
    *body: Stmt,
    invariant: Optional[BoolExpr] = None,
    rel_invariant: Optional[RelBoolExpr] = None,
) -> Stmt:
    return While(bl(condition), block(*body), invariant, rel_invariant)


def block(*stmts: Stmt) -> Stmt:
    """Sequence statements; an empty block is ``skip``."""
    return ast.seq(*stmts)


def program(
    name: str,
    *stmts: Stmt,
    variables: Tuple[str, ...] = (),
    arrays: Tuple[str, ...] = (),
) -> Program:
    """Build a :class:`~repro.lang.ast.Program` from a statement sequence."""
    return Program(
        body=block(*stmts), name=name, variables=tuple(variables), arrays=tuple(arrays)
    )


def _target_tuple(targets: Union[str, Tuple[str, ...], list]) -> Tuple[str, ...]:
    if isinstance(targets, str):
        return (targets,)
    return tuple(targets)
