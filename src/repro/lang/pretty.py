"""Pretty printer for the relaxed-programming language.

The printer produces text in the paper's concrete syntax, which the parser
in :mod:`repro.lang.parser` accepts, so ``parse(pretty(p))`` round-trips for
every program ``p`` (a property-based test enforces this).
"""

from __future__ import annotations

from typing import List

from .ast import (
    ArrayAssign,
    ArrayRead,
    Assert,
    Assign,
    Assume,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    Compare,
    Expr,
    Havoc,
    If,
    IntLit,
    IntOp,
    Not,
    Program,
    Relate,
    Relax,
    RelArrayRead,
    RelBinOp,
    RelBoolBin,
    RelBoolExpr,
    RelBoolLit,
    RelCompare,
    RelExpr,
    RelIntLit,
    RelNot,
    RelVar,
    Seq,
    Skip,
    Stmt,
    Var,
    While,
)

_INDENT = "  "


def pretty_expr(expr: Expr) -> str:
    """Render an integer expression."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, BinOp):
        if expr.op in (IntOp.MIN, IntOp.MAX):
            return f"{expr.op.value}({pretty_expr(expr.left)}, {pretty_expr(expr.right)})"
        return f"({pretty_expr(expr.left)} {expr.op.value} {pretty_expr(expr.right)})"
    if isinstance(expr, ArrayRead):
        return f"{expr.array}[{pretty_expr(expr.index)}]"
    raise TypeError(f"unknown expression node {expr!r}")


def pretty_bool(expr: BoolExpr) -> str:
    """Render a boolean expression."""
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, Compare):
        return f"({pretty_expr(expr.left)} {expr.op.value} {pretty_expr(expr.right)})"
    if isinstance(expr, BoolBin):
        return f"({pretty_bool(expr.left)} {expr.op.value} {pretty_bool(expr.right)})"
    if isinstance(expr, Not):
        return f"!({pretty_bool(expr.operand)})"
    raise TypeError(f"unknown boolean expression node {expr!r}")


def pretty_rel_expr(expr: RelExpr) -> str:
    """Render a relational integer expression."""
    if isinstance(expr, RelIntLit):
        return str(expr.value)
    if isinstance(expr, RelVar):
        return f"{expr.name}<{expr.execution.value}>"
    if isinstance(expr, RelBinOp):
        if expr.op in (IntOp.MIN, IntOp.MAX):
            return (
                f"{expr.op.value}({pretty_rel_expr(expr.left)}, "
                f"{pretty_rel_expr(expr.right)})"
            )
        return (
            f"({pretty_rel_expr(expr.left)} {expr.op.value} "
            f"{pretty_rel_expr(expr.right)})"
        )
    if isinstance(expr, RelArrayRead):
        return (
            f"{expr.array}<{expr.execution.value}>[{pretty_rel_expr(expr.index)}]"
        )
    raise TypeError(f"unknown relational expression node {expr!r}")


def pretty_rel_bool(expr: RelBoolExpr) -> str:
    """Render a relational boolean expression."""
    if isinstance(expr, RelBoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, RelCompare):
        return (
            f"({pretty_rel_expr(expr.left)} {expr.op.value} "
            f"{pretty_rel_expr(expr.right)})"
        )
    if isinstance(expr, RelBoolBin):
        return (
            f"({pretty_rel_bool(expr.left)} {expr.op.value} "
            f"{pretty_rel_bool(expr.right)})"
        )
    if isinstance(expr, RelNot):
        return f"!({pretty_rel_bool(expr.operand)})"
    raise TypeError(f"unknown relational boolean node {expr!r}")


def _pretty_stmt(stmt: Stmt, indent: int, lines: List[str]) -> None:
    pad = _INDENT * indent
    if isinstance(stmt, Skip):
        lines.append(f"{pad}skip;")
    elif isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.target} = {pretty_expr(stmt.value)};")
    elif isinstance(stmt, ArrayAssign):
        lines.append(
            f"{pad}{stmt.array}[{pretty_expr(stmt.index)}] = "
            f"{pretty_expr(stmt.value)};"
        )
    elif isinstance(stmt, Havoc):
        targets = ", ".join(stmt.targets)
        lines.append(f"{pad}havoc ({targets}) st ({pretty_bool(stmt.predicate)});")
    elif isinstance(stmt, Relax):
        targets = ", ".join(stmt.targets)
        lines.append(f"{pad}relax ({targets}) st ({pretty_bool(stmt.predicate)});")
    elif isinstance(stmt, Assume):
        lines.append(f"{pad}assume {pretty_bool(stmt.condition)};")
    elif isinstance(stmt, Assert):
        lines.append(f"{pad}assert {pretty_bool(stmt.condition)};")
    elif isinstance(stmt, Relate):
        lines.append(f"{pad}relate {stmt.label}: {pretty_rel_bool(stmt.condition)};")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({pretty_bool(stmt.condition)}) {{")
        _pretty_stmt(stmt.then_branch, indent + 1, lines)
        lines.append(f"{pad}}} else {{")
        _pretty_stmt(stmt.else_branch, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, While):
        header = f"{pad}while ({pretty_bool(stmt.condition)})"
        if stmt.invariant is not None:
            header += f" invariant ({pretty_bool(stmt.invariant)})"
        if stmt.rel_invariant is not None:
            header += f" rel_invariant ({pretty_rel_bool(stmt.rel_invariant)})"
        lines.append(header + " {")
        _pretty_stmt(stmt.body, indent + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, Seq):
        _pretty_stmt(stmt.first, indent, lines)
        _pretty_stmt(stmt.second, indent, lines)
    else:
        raise TypeError(f"unknown statement node {stmt!r}")


def pretty_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Render a statement as an indented multi-line block."""
    lines: List[str] = []
    _pretty_stmt(stmt, indent, lines)
    return "\n".join(lines)


def pretty_program(program: Program) -> str:
    """Render a full program, including variable declarations."""
    lines: List[str] = [f"// program: {program.name}"]
    if program.variables:
        lines.append(f"vars {', '.join(program.variables)};")
    if program.arrays:
        lines.append(f"arrays {', '.join(program.arrays)};")
    lines.append(pretty_stmt(program.body))
    return "\n".join(lines) + "\n"
