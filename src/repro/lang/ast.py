"""Abstract syntax for the relaxed-programming language of Carbin et al. (PLDI 2012).

The language (Figure 1 of the paper) is a small imperative language with:

* integer expressions ``E`` and boolean expressions ``B``,
* *relational* integer expressions ``E*`` and boolean expressions ``B*`` that
  may refer to the value of a variable in the original execution (``x<o>``)
  or in the relaxed execution (``x<r>``),
* statements: ``skip``, assignment, ``havoc (X) st (B)``,
  ``relax (X) st (B)``, ``if``, ``while``, ``assume B``, ``assert B``,
  ``relate l : B*`` and sequential composition.

Every AST node is an immutable (frozen) dataclass so nodes can be hashed,
compared structurally, and safely shared between programs.  The module also
provides the array extension mentioned in Section 5 of the paper
(``ArrayRead`` / ``ArrayWrite`` and the corresponding statement form).

Nodes carry an optional source :class:`Span` (filled in by the parser).
The span is deliberately excluded from equality, hashing and repr: two
structurally identical programs are *the same program* no matter where
their text came from, divergence-spec anchors keep resolving across a
pretty/parse round-trip, and obligation fingerprints cannot depend on
source locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class IntOp(enum.Enum):
    """Integer binary operators (``iop`` in the paper's grammar)."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    MIN = "min"
    MAX = "max"

    def apply(self, left: int, right: int) -> int:
        """Apply the operator to two integers using the paper's semantics.

        Division is integer division truncated toward negative infinity
        (Python semantics).  Division/modulo by zero raises
        :class:`EvaluationError` at interpretation time; here we raise
        ``ZeroDivisionError`` and let callers wrap it.
        """
        if self is IntOp.ADD:
            return left + right
        if self is IntOp.SUB:
            return left - right
        if self is IntOp.MUL:
            return left * right
        if self is IntOp.DIV:
            return left // right
        if self is IntOp.MOD:
            return left % right
        if self is IntOp.MIN:
            return min(left, right)
        if self is IntOp.MAX:
            return max(left, right)
        raise AssertionError(f"unhandled integer operator {self}")


class CmpOp(enum.Enum):
    """Integer comparison operators (``cmp`` in the paper's grammar)."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def apply(self, left: int, right: int) -> bool:
        if self is CmpOp.LT:
            return left < right
        if self is CmpOp.LE:
            return left <= right
        if self is CmpOp.GT:
            return left > right
        if self is CmpOp.GE:
            return left >= right
        if self is CmpOp.EQ:
            return left == right
        if self is CmpOp.NE:
            return left != right
        raise AssertionError(f"unhandled comparison operator {self}")

    def negate(self) -> "CmpOp":
        """Return the comparison denoting the logical negation of this one."""
        return _CMP_NEGATION[self]

    def flip(self) -> "CmpOp":
        """Return the comparison with operands swapped (e.g. ``<`` -> ``>``)."""
        return _CMP_FLIP[self]


_CMP_NEGATION = {
    CmpOp.LT: CmpOp.GE,
    CmpOp.LE: CmpOp.GT,
    CmpOp.GT: CmpOp.LE,
    CmpOp.GE: CmpOp.LT,
    CmpOp.EQ: CmpOp.NE,
    CmpOp.NE: CmpOp.EQ,
}

_CMP_FLIP = {
    CmpOp.LT: CmpOp.GT,
    CmpOp.LE: CmpOp.GE,
    CmpOp.GT: CmpOp.LT,
    CmpOp.GE: CmpOp.LE,
    CmpOp.EQ: CmpOp.EQ,
    CmpOp.NE: CmpOp.NE,
}


class BoolOp(enum.Enum):
    """Boolean connectives (``lop`` in the paper's grammar)."""

    AND = "&&"
    OR = "||"
    IMPLIES = "==>"
    IFF = "<=>"

    def apply(self, left: bool, right: bool) -> bool:
        if self is BoolOp.AND:
            return left and right
        if self is BoolOp.OR:
            return left or right
        if self is BoolOp.IMPLIES:
            return (not left) or right
        if self is BoolOp.IFF:
            return left == right
        raise AssertionError(f"unhandled boolean operator {self}")


class Execution(enum.Enum):
    """Which execution a relational variable reference talks about.

    ``ORIGINAL`` corresponds to ``x<o>`` and ``RELAXED`` to ``x<r>`` in the
    paper's relational expression syntax.
    """

    ORIGINAL = "o"
    RELAXED = "r"


# ---------------------------------------------------------------------------
# Source spans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Span:
    """A source region: 1-based start line/column to inclusive end column.

    ``end_column`` points one past the last character (token column plus
    token length), matching the convention of most editors and LSP ranges.
    """

    line: int
    column: int
    end_line: int
    end_column: int

    def cover(self, other: Optional["Span"]) -> "Span":
        """The smallest span containing both ``self`` and ``other``."""
        if other is None:
            return self
        start = min((self.line, self.column), (other.line, other.column))
        end = max((self.end_line, self.end_column), (other.end_line, other.end_column))
        return Span(start[0], start[1], end[0], end[1])

    def describe(self) -> str:
        if self.line == self.end_line:
            return f"line {self.line}, columns {self.column}-{self.end_column}"
        return f"lines {self.line}-{self.end_line}"

    def as_dict(self) -> dict:
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }


# ---------------------------------------------------------------------------
# Expressions (non-relational)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Node:
    """Base class for every AST node.

    The ``span`` field is keyword-only with ``compare=False`` so that (a)
    every subclass keeps its positional field order, and (b) structural
    equality, hashing, anchor resolution and obligation fingerprints are
    all span-blind.
    """

    span: Optional[Span] = field(default=None, compare=False, repr=False, kw_only=True)

    def children(self) -> Tuple["Node", ...]:
        """Return the immediate child nodes (expressions and statements)."""
        return ()

    def walk(self) -> Iterator["Node"]:
        """Yield this node and every descendant in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


class Expr(Node):
    """Base class of integer expressions (``E``)."""

    __slots__ = ()


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal ``n``."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """A program variable ``x`` read in the current execution."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary integer operation ``E iop E``."""

    op: IntOp
    left: Expr
    right: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        if self.op in (IntOp.MIN, IntOp.MAX):
            return f"{self.op.value}({self.left}, {self.right})"
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class ArrayRead(Expr):
    """An array read ``A[index]`` (Section 5 array extension)."""

    array: str
    index: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.index,)

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


# ---------------------------------------------------------------------------
# Boolean expressions (non-relational)
# ---------------------------------------------------------------------------


class BoolExpr(Node):
    """Base class of boolean expressions (``B``)."""

    __slots__ = ()


@dataclass(frozen=True)
class BoolLit(BoolExpr):
    """``true`` or ``false``."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Compare(BoolExpr):
    """A comparison ``E cmp E``."""

    op: CmpOp
    left: Expr
    right: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class BoolBin(BoolExpr):
    """A boolean connective ``B lop B``."""

    op: BoolOp
    left: BoolExpr
    right: BoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Not(BoolExpr):
    """Boolean negation ``¬B``."""

    operand: BoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


# ---------------------------------------------------------------------------
# Relational expressions
# ---------------------------------------------------------------------------


class RelExpr(Node):
    """Base class of relational integer expressions (``E*``)."""

    __slots__ = ()


@dataclass(frozen=True)
class RelIntLit(RelExpr):
    """An integer literal inside a relational expression."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class RelVar(RelExpr):
    """A tagged variable reference ``x<o>`` or ``x<r>``."""

    name: str
    execution: Execution

    def __str__(self) -> str:
        return f"{self.name}<{self.execution.value}>"


@dataclass(frozen=True)
class RelBinOp(RelExpr):
    """A binary operation over relational integer expressions."""

    op: IntOp
    left: RelExpr
    right: RelExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        if self.op in (IntOp.MIN, IntOp.MAX):
            return f"{self.op.value}({self.left}, {self.right})"
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class RelArrayRead(RelExpr):
    """A tagged array read ``A<o>[index]`` or ``A<r>[index]``."""

    array: str
    execution: Execution
    index: RelExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.index,)

    def __str__(self) -> str:
        return f"{self.array}<{self.execution.value}>[{self.index}]"


class RelBoolExpr(Node):
    """Base class of relational boolean expressions (``B*``)."""

    __slots__ = ()


@dataclass(frozen=True)
class RelBoolLit(RelBoolExpr):
    """``true`` / ``false`` as a relational boolean expression."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class RelCompare(RelBoolExpr):
    """A comparison of relational integer expressions ``E* cmp E*``."""

    op: CmpOp
    left: RelExpr
    right: RelExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class RelBoolBin(RelBoolExpr):
    """A boolean connective over relational boolean expressions."""

    op: BoolOp
    left: RelBoolExpr
    right: RelBoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class RelNot(RelBoolExpr):
    """Negation of a relational boolean expression."""

    operand: RelBoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    """Base class of statements (``S``)."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Stmt):
    """``skip``."""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Assign(Stmt):
    """``x = E``."""

    target: str
    value: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.value,)

    def __str__(self) -> str:
        return f"{self.target} = {self.value}"


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    """``A[E1] = E2`` (array extension)."""

    array: str
    index: Expr
    value: Expr

    def children(self) -> Tuple[Node, ...]:
        return (self.index, self.value)

    def __str__(self) -> str:
        return f"{self.array}[{self.index}] = {self.value}"


@dataclass(frozen=True)
class Havoc(Stmt):
    """``havoc (X) st (B)`` — nondeterministic assignment in both semantics."""

    targets: Tuple[str, ...]
    predicate: BoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.predicate,)

    def __str__(self) -> str:
        return f"havoc ({', '.join(self.targets)}) st ({self.predicate})"


@dataclass(frozen=True)
class Relax(Stmt):
    """``relax (X) st (B)`` — nondeterministic only in the relaxed semantics."""

    targets: Tuple[str, ...]
    predicate: BoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.predicate,)

    def __str__(self) -> str:
        return f"relax ({', '.join(self.targets)}) st ({self.predicate})"


@dataclass(frozen=True)
class Assume(Stmt):
    """``assume B`` — unary assumption; failure yields the ``ba`` outcome."""

    condition: BoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.condition,)

    def __str__(self) -> str:
        return f"assume {self.condition}"


@dataclass(frozen=True)
class Assert(Stmt):
    """``assert B`` — unary assertion; failure yields the ``wr`` outcome."""

    condition: BoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.condition,)

    def __str__(self) -> str:
        return f"assert {self.condition}"


@dataclass(frozen=True)
class Relate(Stmt):
    """``relate l : B*`` — a labelled relational acceptability assertion."""

    label: str
    condition: RelBoolExpr

    def children(self) -> Tuple[Node, ...]:
        return (self.condition,)

    def __str__(self) -> str:
        return f"relate {self.label}: {self.condition}"


@dataclass(frozen=True)
class If(Stmt):
    """``if (B) {S1} else {S2}``."""

    condition: BoolExpr
    then_branch: Stmt
    else_branch: Stmt

    def children(self) -> Tuple[Node, ...]:
        return (self.condition, self.then_branch, self.else_branch)

    def __str__(self) -> str:
        return (
            f"if ({self.condition}) {{ {self.then_branch} }} "
            f"else {{ {self.else_branch} }}"
        )


@dataclass(frozen=True)
class While(Stmt):
    """``while (B) {S}``.

    The optional ``invariant`` / ``rel_invariant`` fields carry the loop
    annotations used by the Hoare-logic verification front ends.  They are
    not part of the dynamic semantics.
    """

    condition: BoolExpr
    body: Stmt
    invariant: Optional[BoolExpr] = None
    rel_invariant: Optional[RelBoolExpr] = None

    def children(self) -> Tuple[Node, ...]:
        return (self.condition, self.body)

    def __str__(self) -> str:
        return f"while ({self.condition}) {{ {self.body} }}"


@dataclass(frozen=True)
class Seq(Stmt):
    """Sequential composition ``S1 ; S2``."""

    first: Stmt
    second: Stmt

    def children(self) -> Tuple[Node, ...]:
        return (self.first, self.second)

    def __str__(self) -> str:
        return f"{self.first}; {self.second}"


# ---------------------------------------------------------------------------
# Programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Program:
    """A complete relaxed program.

    A program is a single top-level statement together with optional
    declarations of the variables and arrays it uses.  Declarations are not
    required by the dynamic semantics (states are finite maps that grow on
    assignment) but allow well-formedness checking and nicer error messages.
    """

    body: Stmt
    name: str = "program"
    variables: Tuple[str, ...] = field(default_factory=tuple)
    arrays: Tuple[str, ...] = field(default_factory=tuple)
    #: The concrete syntax this program was parsed from (``None`` for
    #: programs assembled with the builder API).  Excluded from equality
    #: and hashing, like node spans.
    source: Optional[str] = field(default=None, compare=False, repr=False)

    def statements(self) -> Iterator[Stmt]:
        """Yield every statement node in the program in pre-order."""
        for node in self.body.walk():
            if isinstance(node, Stmt):
                yield node

    def relate_labels(self) -> Tuple[str, ...]:
        """Return the labels of all ``relate`` statements, in syntactic order."""
        return tuple(
            stmt.label for stmt in self.statements() if isinstance(stmt, Relate)
        )


# ---------------------------------------------------------------------------
# Convenience aliases and helpers
# ---------------------------------------------------------------------------

AnyExpr = Union[Expr, RelExpr]
AnyBoolExpr = Union[BoolExpr, RelBoolExpr]

TRUE = BoolLit(True)
FALSE = BoolLit(False)
REL_TRUE = RelBoolLit(True)
REL_FALSE = RelBoolLit(False)
SKIP = Skip()


def seq(*stmts: Stmt) -> Stmt:
    """Right-associate a sequence of statements into nested :class:`Seq` nodes.

    ``seq()`` returns ``skip`` and ``seq(s)`` returns ``s`` unchanged.
    """
    if not stmts:
        return SKIP
    result = stmts[-1]
    for stmt in reversed(stmts[:-1]):
        result = Seq(stmt, result)
    return result


# Statement-valued fields of the statements that contain statements, in
# traversal order.  This is the single child spec used by the structural
# statement rewrites below (the formula IR has its own richer framework in
# :mod:`repro.logic.traverse`).
_STMT_CHILD_FIELDS = {
    Seq: ("first", "second"),
    If: ("then_branch", "else_branch"),
    While: ("body",),
}


def replace_statement(stmt: Stmt, target: Stmt, replacement: Stmt) -> Stmt:
    """Structurally replace the first occurrence of ``target`` in ``stmt``.

    Returns ``stmt`` itself (same object) when ``target`` does not occur, so
    callers and the recursion itself can detect "no replacement happened"
    with an identity check.  ``While`` loops keep their invariant
    annotations through the rebuild.
    """
    import dataclasses as _dataclasses

    if stmt is target or stmt == target:
        return replacement
    fields = _STMT_CHILD_FIELDS.get(type(stmt))
    if not fields:
        return stmt
    for name in fields:
        child = getattr(stmt, name)
        new_child = replace_statement(child, target, replacement)
        if new_child is not child:
            return _dataclasses.replace(stmt, **{name: new_child})
    return stmt


def conj(*exprs: BoolExpr) -> BoolExpr:
    """Conjoin boolean expressions; ``conj()`` is ``true``."""
    if not exprs:
        return TRUE
    result = exprs[0]
    for expr in exprs[1:]:
        result = BoolBin(BoolOp.AND, result, expr)
    return result


def disj(*exprs: BoolExpr) -> BoolExpr:
    """Disjoin boolean expressions; ``disj()`` is ``false``."""
    if not exprs:
        return FALSE
    result = exprs[0]
    for expr in exprs[1:]:
        result = BoolBin(BoolOp.OR, result, expr)
    return result


def rel_conj(*exprs: RelBoolExpr) -> RelBoolExpr:
    """Conjoin relational boolean expressions; ``rel_conj()`` is ``true``."""
    if not exprs:
        return REL_TRUE
    result = exprs[0]
    for expr in exprs[1:]:
        result = RelBoolBin(BoolOp.AND, result, expr)
    return result


def rel_disj(*exprs: RelBoolExpr) -> RelBoolExpr:
    """Disjoin relational boolean expressions; ``rel_disj()`` is ``false``."""
    if not exprs:
        return REL_FALSE
    result = exprs[0]
    for expr in exprs[1:]:
        result = RelBoolBin(BoolOp.OR, result, expr)
    return result


def int_expr(value: Union[int, str, Expr]) -> Expr:
    """Coerce an int, variable name or expression into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not integer expressions")
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot coerce {value!r} to an integer expression")


def rel_expr(value: Union[int, RelExpr]) -> RelExpr:
    """Coerce an int or relational expression into a :class:`RelExpr`."""
    if isinstance(value, RelExpr):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not relational integer expressions")
    if isinstance(value, int):
        return RelIntLit(value)
    raise TypeError(f"cannot coerce {value!r} to a relational integer expression")


def original(name: str) -> RelVar:
    """Build the relational reference ``name<o>``."""
    return RelVar(name, Execution.ORIGINAL)


def relaxed(name: str) -> RelVar:
    """Build the relational reference ``name<r>``."""
    return RelVar(name, Execution.RELAXED)
