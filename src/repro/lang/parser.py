"""Lexer and recursive-descent parser for the paper's concrete syntax.

The accepted grammar (statement separators are semicolons; ``//`` comments
run to end of line)::

    program   := [ "vars" idlist ";" ] [ "arrays" idlist ";" ] stmts
    stmts     := stmt*
    stmt      := "skip" ";"
               | ident "=" expr ";"
               | ident "[" expr "]" "=" expr ";"
               | "havoc" "(" idlist ")" "st" "(" bexpr ")" ";"
               | "relax" "(" idlist ")" "st" "(" bexpr ")" ";"
               | "assume" bexpr ";"
               | "assert" bexpr ";"
               | "relate" ident ":" rbexpr ";"
               | "if" "(" bexpr ")" "{" stmts "}" [ "else" "{" stmts "}" ]
               | "while" "(" bexpr ")" [ "invariant" "(" bexpr ")" ]
                     [ "rel_invariant" "(" rbexpr ")" ] "{" stmts "}"

    bexpr     := bor;  bor := band ("||" band)*;  band := bimp ("&&" bimp)*
    bimp      := bnot [ "==>" bimp ]
    bnot      := "!" bnot | bprimary
    bprimary  := "true" | "false" | comparison | "(" bexpr ")"
    comparison:= expr cmp expr

    expr      := term (("+" | "-") term)*
    term      := factor (("*" | "/" | "%") factor)*
    factor    := int | "-" factor | ident | ident "[" expr "]"
               | "min" "(" expr "," expr ")" | "max" "(" expr "," expr ")"
               | "(" expr ")"

Relational expressions (``rbexpr`` / ``rexpr``) follow the same structure but
variables carry an execution tag: ``x<o>``, ``x<r>``, ``A<o>[i]``.

The parser distinguishes a parenthesised comparison ``(x < y) && b`` from a
parenthesised arithmetic expression ``(x + y) < z`` by backtracking at the
boolean-primary level.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .ast import (
    ArrayAssign,
    ArrayRead,
    Assert,
    Assign,
    Assume,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    BoolOp,
    CmpOp,
    Compare,
    Execution,
    Expr,
    Havoc,
    If,
    IntLit,
    IntOp,
    Not,
    Program,
    Relate,
    Relax,
    RelArrayRead,
    RelBinOp,
    RelBoolBin,
    RelBoolExpr,
    RelBoolLit,
    RelCompare,
    RelExpr,
    RelIntLit,
    RelNot,
    RelVar,
    Seq,
    Skip,
    Span,
    Stmt,
    Var,
    While,
    seq,
)


class ParseError(Exception):
    """Raised when the input text is not a well-formed program."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


_KEYWORDS = {
    "skip",
    "havoc",
    "relax",
    "st",
    "assume",
    "assert",
    "relate",
    "if",
    "else",
    "while",
    "invariant",
    "rel_invariant",
    "true",
    "false",
    "min",
    "max",
    "vars",
    "arrays",
}

_TOKEN_SPEC = [
    ("COMMENT", r"//[^\n]*"),
    ("WHITESPACE", r"[ \t\r\n]+"),
    ("INT", r"\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("OP", r"==>|<=>|==|!=|<=|>=|&&|\|\||<|>|=|\+|-|\*|/|%|!|\(|\)|\{|\}|\[|\]|;|:|,"),
]

_TOKEN_RE = _re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))


def tokenize(text: str) -> List[Token]:
    """Convert source text into a token list (comments/whitespace dropped)."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {text[pos]!r}", line, column)
        kind = match.lastgroup or ""
        value = match.group()
        column = pos - line_start + 1
        if kind == "WHITESPACE" or kind == "COMMENT":
            newlines = value.count("\n")
            if newlines:
                line += newlines
                line_start = pos + value.rfind("\n") + 1
        elif kind == "IDENT" and value in _KEYWORDS:
            tokens.append(Token("KEYWORD", value, line, column))
        else:
            tokens.append(Token(kind, value, line, column))
        pos = match.end()
    tokens.append(Token("EOF", "", line, len(text) - line_start + 1))
    return tokens


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

_CMP_OPS = {
    "<": CmpOp.LT,
    "<=": CmpOp.LE,
    ">": CmpOp.GT,
    ">=": CmpOp.GE,
    "==": CmpOp.EQ,
    "!=": CmpOp.NE,
    "=": CmpOp.EQ,
}

_ADD_OPS = {"+": IntOp.ADD, "-": IntOp.SUB}
_MUL_OPS = {"*": IntOp.MUL, "/": IntOp.DIV, "%": IntOp.MOD}


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token utilities ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            expected = text if text is not None else kind
            raise ParseError(
                f"expected {expected!r} but found {token.text!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- span attachment ----------------------------------------------------

    def _spanned(self, node, start: Token):
        """Attach a source span from ``start`` to the last consumed token.

        Nodes that already carry a span keep it (a parenthesised
        subexpression returned unchanged keeps the span of its contents);
        spans are attached post-construction via ``object.__setattr__``
        because the field is ``compare=False`` metadata on frozen nodes,
        not part of their structural identity.
        """
        if node.span is None:
            end = self._tokens[self._pos - 1] if self._pos > 0 else start
            object.__setattr__(
                node,
                "span",
                Span(start.line, start.column, end.line, end.column + len(end.text)),
            )
        return node

    def _span_seq(self, node: Stmt) -> Stmt:
        """Give :class:`Seq` nodes the span covering their children.

        ``seq()`` right-associates statement lists outside the parser, so
        the sequencing nodes themselves are spanless until here.  The empty
        statement list returns the shared ``SKIP`` singleton, which must
        never be mutated — it is not a ``Seq``, so the guard covers it.
        """
        if isinstance(node, Seq) and node.span is None:
            self._span_seq(node.first)
            self._span_seq(node.second)
            first_span = node.first.span
            if first_span is not None:
                object.__setattr__(node, "span", first_span.cover(node.second.span))
        return node

    # -- entry points -------------------------------------------------------

    def parse_program(self, name: str = "program") -> Program:
        variables: Tuple[str, ...] = ()
        arrays: Tuple[str, ...] = ()
        if self._check("KEYWORD", "vars"):
            self._advance()
            variables = tuple(self._parse_ident_list())
            self._expect("OP", ";")
        if self._check("KEYWORD", "arrays"):
            self._advance()
            arrays = tuple(self._parse_ident_list())
            self._expect("OP", ";")
        body = self._parse_statements()
        self._expect("EOF")
        return Program(body=body, name=name, variables=variables, arrays=arrays)

    def parse_statement_block(self) -> Stmt:
        body = self._parse_statements()
        self._expect("EOF")
        return body

    def parse_bool_expression(self) -> BoolExpr:
        expr = self._parse_bexpr()
        self._expect("EOF")
        return expr

    def parse_rel_bool_expression(self) -> RelBoolExpr:
        expr = self._parse_rbexpr()
        self._expect("EOF")
        return expr

    def parse_expression(self) -> Expr:
        expr = self._parse_expr()
        self._expect("EOF")
        return expr

    # -- statements ----------------------------------------------------------

    def _parse_ident_list(self) -> List[str]:
        names = [self._expect("IDENT").text]
        while self._accept("OP", ","):
            names.append(self._expect("IDENT").text)
        return names

    def _parse_statements(self) -> Stmt:
        stmts: List[Stmt] = []
        while not self._check("EOF") and not self._check("OP", "}"):
            stmts.append(self._parse_statement())
        return self._span_seq(seq(*stmts))

    def _parse_statement(self) -> Stmt:
        start = self._peek()
        return self._spanned(self._parse_statement_inner(), start)

    def _parse_statement_inner(self) -> Stmt:
        token = self._peek()
        if token.kind == "KEYWORD":
            if token.text == "skip":
                self._advance()
                self._expect("OP", ";")
                return Skip()
            if token.text == "havoc":
                return self._parse_havoc_like(Havoc)
            if token.text == "relax":
                return self._parse_havoc_like(Relax)
            if token.text == "assume":
                self._advance()
                condition = self._parse_bexpr()
                self._expect("OP", ";")
                return Assume(condition)
            if token.text == "assert":
                self._advance()
                condition = self._parse_bexpr()
                self._expect("OP", ";")
                return Assert(condition)
            if token.text == "relate":
                self._advance()
                label = self._expect("IDENT").text
                self._expect("OP", ":")
                condition = self._parse_rbexpr()
                self._expect("OP", ";")
                return Relate(label, condition)
            if token.text == "if":
                return self._parse_if()
            if token.text == "while":
                return self._parse_while()
            raise self._error(f"unexpected keyword {token.text!r}")
        if token.kind == "IDENT":
            return self._parse_assignment()
        raise self._error(f"unexpected token {token.text!r} at start of statement")

    def _parse_havoc_like(self, node_class) -> Stmt:
        self._advance()  # havoc / relax keyword
        self._expect("OP", "(")
        targets = tuple(self._parse_ident_list())
        self._expect("OP", ")")
        self._expect("KEYWORD", "st")
        self._expect("OP", "(")
        predicate = self._parse_bexpr()
        self._expect("OP", ")")
        self._expect("OP", ";")
        return node_class(targets, predicate)

    def _parse_assignment(self) -> Stmt:
        name = self._expect("IDENT").text
        if self._accept("OP", "["):
            index = self._parse_expr()
            self._expect("OP", "]")
            self._expect("OP", "=")
            value = self._parse_expr()
            self._expect("OP", ";")
            return ArrayAssign(name, index, value)
        self._expect("OP", "=")
        value = self._parse_expr()
        self._expect("OP", ";")
        return Assign(name, value)

    def _parse_if(self) -> Stmt:
        self._expect("KEYWORD", "if")
        self._expect("OP", "(")
        condition = self._parse_bexpr()
        self._expect("OP", ")")
        self._expect("OP", "{")
        then_branch = self._parse_statements()
        self._expect("OP", "}")
        else_branch: Stmt = Skip()
        if self._accept("KEYWORD", "else"):
            self._expect("OP", "{")
            else_branch = self._parse_statements()
            self._expect("OP", "}")
        return If(condition, then_branch, else_branch)

    def _parse_while(self) -> Stmt:
        self._expect("KEYWORD", "while")
        self._expect("OP", "(")
        condition = self._parse_bexpr()
        self._expect("OP", ")")
        invariant: Optional[BoolExpr] = None
        rel_invariant: Optional[RelBoolExpr] = None
        if self._accept("KEYWORD", "invariant"):
            self._expect("OP", "(")
            invariant = self._parse_bexpr()
            self._expect("OP", ")")
        if self._accept("KEYWORD", "rel_invariant"):
            self._expect("OP", "(")
            rel_invariant = self._parse_rbexpr()
            self._expect("OP", ")")
        self._expect("OP", "{")
        body = self._parse_statements()
        self._expect("OP", "}")
        return While(condition, body, invariant, rel_invariant)

    # -- boolean expressions --------------------------------------------------

    def _parse_bexpr(self) -> BoolExpr:
        return self._parse_bor()

    def _parse_bor(self) -> BoolExpr:
        start = self._peek()
        left = self._parse_band()
        while self._check("OP", "||"):
            self._advance()
            right = self._parse_band()
            left = self._spanned(BoolBin(BoolOp.OR, left, right), start)
        return left

    def _parse_band(self) -> BoolExpr:
        start = self._peek()
        left = self._parse_bimp()
        while self._check("OP", "&&"):
            self._advance()
            right = self._parse_bimp()
            left = self._spanned(BoolBin(BoolOp.AND, left, right), start)
        return left

    def _parse_bimp(self) -> BoolExpr:
        start = self._peek()
        left = self._parse_bnot()
        if self._accept("OP", "==>"):
            right = self._parse_bimp()
            return self._spanned(BoolBin(BoolOp.IMPLIES, left, right), start)
        if self._accept("OP", "<=>"):
            right = self._parse_bimp()
            return self._spanned(BoolBin(BoolOp.IFF, left, right), start)
        return left

    def _parse_bnot(self) -> BoolExpr:
        start = self._peek()
        if self._accept("OP", "!"):
            return self._spanned(Not(self._parse_bnot()), start)
        return self._parse_bprimary()

    def _parse_bprimary(self) -> BoolExpr:
        start = self._peek()
        if self._check("KEYWORD", "true"):
            self._advance()
            return self._spanned(BoolLit(True), start)
        if self._check("KEYWORD", "false"):
            self._advance()
            return self._spanned(BoolLit(False), start)
        # Try a comparison first; fall back to a parenthesised boolean.
        saved = self._pos
        try:
            left = self._parse_expr()
            op_token = self._peek()
            if op_token.kind == "OP" and op_token.text in _CMP_OPS:
                self._advance()
                right = self._parse_expr()
                return self._spanned(Compare(_CMP_OPS[op_token.text], left, right), start)
            raise self._error("expected a comparison operator")
        except ParseError:
            self._pos = saved
        if self._accept("OP", "("):
            inner = self._parse_bexpr()
            self._expect("OP", ")")
            return inner
        raise self._error("expected a boolean expression")

    # -- integer expressions ---------------------------------------------------

    def _parse_expr(self) -> Expr:
        start = self._peek()
        left = self._parse_term()
        while self._peek().kind == "OP" and self._peek().text in _ADD_OPS:
            op = _ADD_OPS[self._advance().text]
            right = self._parse_term()
            left = self._spanned(BinOp(op, left, right), start)
        return left

    def _parse_term(self) -> Expr:
        start = self._peek()
        left = self._parse_factor()
        while self._peek().kind == "OP" and self._peek().text in _MUL_OPS:
            op = _MUL_OPS[self._advance().text]
            right = self._parse_factor()
            left = self._spanned(BinOp(op, left, right), start)
        return left

    def _parse_factor(self) -> Expr:
        token = self._peek()
        if token.kind == "INT":
            self._advance()
            return self._spanned(IntLit(int(token.text)), token)
        if token.kind == "OP" and token.text == "-":
            self._advance()
            operand = self._parse_factor()
            if isinstance(operand, IntLit):
                return self._spanned(IntLit(-operand.value), token)
            return self._spanned(BinOp(IntOp.SUB, IntLit(0), operand), token)
        if token.kind == "KEYWORD" and token.text in ("min", "max"):
            self._advance()
            self._expect("OP", "(")
            left = self._parse_expr()
            self._expect("OP", ",")
            right = self._parse_expr()
            self._expect("OP", ")")
            op = IntOp.MIN if token.text == "min" else IntOp.MAX
            return self._spanned(BinOp(op, left, right), token)
        if token.kind == "IDENT":
            self._advance()
            if self._accept("OP", "["):
                index = self._parse_expr()
                self._expect("OP", "]")
                return self._spanned(ArrayRead(token.text, index), token)
            return self._spanned(Var(token.text), token)
        if token.kind == "OP" and token.text == "(":
            self._advance()
            inner = self._parse_expr()
            self._expect("OP", ")")
            return inner
        raise self._error(f"expected an integer expression, found {token.text!r}")

    # -- relational expressions -------------------------------------------------

    def _parse_rbexpr(self) -> RelBoolExpr:
        return self._parse_rbor()

    def _parse_rbor(self) -> RelBoolExpr:
        start = self._peek()
        left = self._parse_rband()
        while self._check("OP", "||"):
            self._advance()
            right = self._parse_rband()
            left = self._spanned(RelBoolBin(BoolOp.OR, left, right), start)
        return left

    def _parse_rband(self) -> RelBoolExpr:
        start = self._peek()
        left = self._parse_rbimp()
        while self._check("OP", "&&"):
            self._advance()
            right = self._parse_rbimp()
            left = self._spanned(RelBoolBin(BoolOp.AND, left, right), start)
        return left

    def _parse_rbimp(self) -> RelBoolExpr:
        start = self._peek()
        left = self._parse_rbnot()
        if self._accept("OP", "==>"):
            right = self._parse_rbimp()
            return self._spanned(RelBoolBin(BoolOp.IMPLIES, left, right), start)
        if self._accept("OP", "<=>"):
            right = self._parse_rbimp()
            return self._spanned(RelBoolBin(BoolOp.IFF, left, right), start)
        return left

    def _parse_rbnot(self) -> RelBoolExpr:
        start = self._peek()
        if self._accept("OP", "!"):
            return self._spanned(RelNot(self._parse_rbnot()), start)
        return self._parse_rbprimary()

    def _parse_rbprimary(self) -> RelBoolExpr:
        start = self._peek()
        if self._check("KEYWORD", "true"):
            self._advance()
            return self._spanned(RelBoolLit(True), start)
        if self._check("KEYWORD", "false"):
            self._advance()
            return self._spanned(RelBoolLit(False), start)
        saved = self._pos
        try:
            left = self._parse_rexpr()
            op_token = self._peek()
            if op_token.kind == "OP" and op_token.text in _CMP_OPS:
                self._advance()
                right = self._parse_rexpr()
                return self._spanned(
                    RelCompare(_CMP_OPS[op_token.text], left, right), start
                )
            raise self._error("expected a comparison operator")
        except ParseError:
            self._pos = saved
        if self._accept("OP", "("):
            inner = self._parse_rbexpr()
            self._expect("OP", ")")
            return inner
        raise self._error("expected a relational boolean expression")

    def _parse_rexpr(self) -> RelExpr:
        start = self._peek()
        left = self._parse_rterm()
        while self._peek().kind == "OP" and self._peek().text in _ADD_OPS:
            op = _ADD_OPS[self._advance().text]
            right = self._parse_rterm()
            left = self._spanned(RelBinOp(op, left, right), start)
        return left

    def _parse_rterm(self) -> RelExpr:
        start = self._peek()
        left = self._parse_rfactor()
        while self._peek().kind == "OP" and self._peek().text in _MUL_OPS:
            op = _MUL_OPS[self._advance().text]
            right = self._parse_rfactor()
            left = self._spanned(RelBinOp(op, left, right), start)
        return left

    def _parse_rfactor(self) -> RelExpr:
        token = self._peek()
        if token.kind == "INT":
            self._advance()
            return self._spanned(RelIntLit(int(token.text)), token)
        if token.kind == "OP" and token.text == "-":
            self._advance()
            operand = self._parse_rfactor()
            if isinstance(operand, RelIntLit):
                return self._spanned(RelIntLit(-operand.value), token)
            return self._spanned(RelBinOp(IntOp.SUB, RelIntLit(0), operand), token)
        if token.kind == "KEYWORD" and token.text in ("min", "max"):
            self._advance()
            self._expect("OP", "(")
            left = self._parse_rexpr()
            self._expect("OP", ",")
            right = self._parse_rexpr()
            self._expect("OP", ")")
            op = IntOp.MIN if token.text == "min" else IntOp.MAX
            return self._spanned(RelBinOp(op, left, right), token)
        if token.kind == "IDENT":
            self._advance()
            execution = self._parse_execution_tag()
            if self._accept("OP", "["):
                index = self._parse_rexpr()
                self._expect("OP", "]")
                return self._spanned(RelArrayRead(token.text, execution, index), token)
            return self._spanned(RelVar(token.text, execution), token)
        if token.kind == "OP" and token.text == "(":
            self._advance()
            inner = self._parse_rexpr()
            self._expect("OP", ")")
            return inner
        raise self._error(
            f"expected a relational integer expression, found {token.text!r}"
        )

    def _parse_execution_tag(self) -> Execution:
        self._expect("OP", "<")
        tag = self._expect("IDENT").text
        self._expect("OP", ">")
        if tag == "o":
            return Execution.ORIGINAL
        if tag == "r":
            return Execution.RELAXED
        raise self._error(f"expected execution tag 'o' or 'r', found {tag!r}")


# ---------------------------------------------------------------------------
# Module-level convenience functions
# ---------------------------------------------------------------------------


def parse_program(text: str, name: str = "program") -> Program:
    """Parse a full program, retaining ``text`` for diagnostics excerpts."""
    program = Parser(tokenize(text)).parse_program(name)
    object.__setattr__(program, "source", text)
    if program.body.span is not None:
        object.__setattr__(program, "span", program.body.span)
    return program


def parse_statement(text: str) -> Stmt:
    """Parse a statement block (one or more statements)."""
    return Parser(tokenize(text)).parse_statement_block()


def parse_bool(text: str) -> BoolExpr:
    """Parse a boolean expression."""
    return Parser(tokenize(text)).parse_bool_expression()


def parse_rel_bool(text: str) -> RelBoolExpr:
    """Parse a relational boolean expression."""
    return Parser(tokenize(text)).parse_rel_bool_expression()


def parse_expr(text: str) -> Expr:
    """Parse an integer expression."""
    return Parser(tokenize(text)).parse_expression()
