"""Recover concrete source text (and spans) for builder-built programs.

Programs parsed from text carry their source and per-node spans natively;
programs assembled with AST constructors (the case-study builders) or
rewritten by the relaxation transforms have neither.  :func:`ensure_source`
closes that gap by pretty-printing the program and re-parsing the result:
the re-parsed program has full span information, and because node equality
ignores spans, we can check that the round-trip preserved the program before
adopting it.

Sequential composition is binary (``Seq(first, second)``), so the same
statement list can associate differently depending on who built it — the
parser right-nests, the relaxation transforms splice sub-sequences in
place.  Association is semantically irrelevant (``;`` is associative, and
the proof rules fold over the flattened statement list), so the round-trip
check compares *Seq-normalised* bodies: both sides flattened and re-nested
the same way.

If the round-trip changes the program beyond Seq association (it should not
— the repo's case-study lint enforces pretty/parse stability — but the
check is cheap), the original program is returned untouched and diagnostics
simply degrade to spanless provenance.
"""

from __future__ import annotations

from dataclasses import replace

from .ast import If, Program, Seq, Stmt, While
from .parser import ParseError, parse_program
from .pretty import pretty_program


def _flattened(stmt: Stmt):
    """Yield the non-Seq statements of a Seq tree, left to right."""
    if isinstance(stmt, Seq):
        yield from _flattened(stmt.first)
        yield from _flattened(stmt.second)
    else:
        yield stmt


def _normalized(stmt: Stmt) -> Stmt:
    """Rebuild ``stmt`` with every Seq tree right-nested (recursively)."""
    if isinstance(stmt, Seq):
        parts = [_normalized(part) for part in _flattened(stmt)]
        result = parts[-1]
        for part in reversed(parts[:-1]):
            result = Seq(part, result)
        return result
    if isinstance(stmt, While):
        return replace(stmt, body=_normalized(stmt.body))
    if isinstance(stmt, If):
        return replace(
            stmt,
            then_branch=_normalized(stmt.then_branch),
            else_branch=_normalized(stmt.else_branch),
        )
    return stmt


def ensure_source(program: Program) -> Program:
    """Return ``program`` with ``source`` text and node spans attached.

    A program that carries both source text *and* spans (i.e. one that came
    out of the parser unmodified) is returned as-is.  A program with stale
    source — a relaxation transform rebuilt the body, dropping its spans,
    while :func:`dataclasses.replace` carried the old text along — is
    re-derived from its pretty-printed form just like a builder program.

    The returned program is structurally equal to the input up to Seq
    association (node equality is span-blind), so divergence-spec anchors
    and obligation fingerprints are unaffected.
    """
    if program.source is not None and program.body.span is not None:
        return program
    text = pretty_program(program)
    try:
        reparsed = parse_program(text, name=program.name)
    except ParseError:
        return program
    if (
        reparsed.variables == program.variables
        and reparsed.arrays == program.arrays
        and (
            reparsed.body == program.body
            or _normalized(reparsed.body) == _normalized(program.body)
        )
    ):
        return reparsed
    return program
