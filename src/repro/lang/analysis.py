"""Static analyses over the relaxed-programming language AST.

These are the small syntactic analyses the paper's proof rules rely on:

* free variables of expressions, boolean expressions and relational formulas,
* the set of variables a statement may modify,
* the ``no_rel(s)`` predicate guarding the ``diverge`` rule (Figure 8),
* well-formedness of programs: unique ``relate`` labels, use of declared
  variables, and ``relate`` statements not nested under divergent-only
  contexts (checked later by the proof system itself),
* the ``Gamma`` map from ``relate`` labels to their relational conditions
  used by the observational compatibility relation (Theorem 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .ast import (
    ArrayAssign,
    ArrayRead,
    Assert,
    Assign,
    Assume,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    Compare,
    Expr,
    Havoc,
    If,
    IntLit,
    Node,
    Not,
    Program,
    Relate,
    Relax,
    RelArrayRead,
    RelBinOp,
    RelBoolBin,
    RelBoolExpr,
    RelBoolLit,
    RelCompare,
    RelExpr,
    RelIntLit,
    RelNot,
    RelVar,
    Seq,
    Skip,
    Stmt,
    Var,
    While,
)


class WellFormednessError(Exception):
    """Raised when a program violates a static well-formedness requirement."""


# ---------------------------------------------------------------------------
# Free variables
# ---------------------------------------------------------------------------


def expr_vars(expr: Expr) -> FrozenSet[str]:
    """Return the free program variables of an integer expression."""
    if isinstance(expr, IntLit):
        return frozenset()
    if isinstance(expr, Var):
        return frozenset({expr.name})
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, ArrayRead):
        return frozenset({expr.array}) | expr_vars(expr.index)
    raise TypeError(f"unknown expression node {expr!r}")


def bool_vars(expr: BoolExpr) -> FrozenSet[str]:
    """Return the free program variables of a boolean expression."""
    if isinstance(expr, BoolLit):
        return frozenset()
    if isinstance(expr, Compare):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, BoolBin):
        return bool_vars(expr.left) | bool_vars(expr.right)
    if isinstance(expr, Not):
        return bool_vars(expr.operand)
    raise TypeError(f"unknown boolean expression node {expr!r}")


def rel_expr_vars(expr: RelExpr) -> FrozenSet[Tuple[str, str]]:
    """Return free relational variables as ``(name, tag)`` pairs.

    The tag is ``"o"`` for original-execution references and ``"r"`` for
    relaxed-execution references, matching the paper's ``x<o>`` / ``x<r>``.
    """
    if isinstance(expr, RelIntLit):
        return frozenset()
    if isinstance(expr, RelVar):
        return frozenset({(expr.name, expr.execution.value)})
    if isinstance(expr, RelBinOp):
        return rel_expr_vars(expr.left) | rel_expr_vars(expr.right)
    if isinstance(expr, RelArrayRead):
        return frozenset({(expr.array, expr.execution.value)}) | rel_expr_vars(
            expr.index
        )
    raise TypeError(f"unknown relational expression node {expr!r}")


def rel_bool_vars(expr: RelBoolExpr) -> FrozenSet[Tuple[str, str]]:
    """Return free relational variables of a relational boolean expression."""
    if isinstance(expr, RelBoolLit):
        return frozenset()
    if isinstance(expr, RelCompare):
        return rel_expr_vars(expr.left) | rel_expr_vars(expr.right)
    if isinstance(expr, RelBoolBin):
        return rel_bool_vars(expr.left) | rel_bool_vars(expr.right)
    if isinstance(expr, RelNot):
        return rel_bool_vars(expr.operand)
    raise TypeError(f"unknown relational boolean node {expr!r}")


# ---------------------------------------------------------------------------
# Statement-level analyses
# ---------------------------------------------------------------------------


def modified_vars(stmt: Stmt) -> FrozenSet[str]:
    """Return the set of scalar variables a statement may modify.

    Array names are included when the statement writes an array element or
    havocs/relaxes the array wholesale (the case-study modelling of
    ``relax (RS) st (true)`` treats RS as a scalar summary or an array name).
    """
    if isinstance(stmt, (Skip, Assert, Assume, Relate)):
        return frozenset()
    if isinstance(stmt, Assign):
        return frozenset({stmt.target})
    if isinstance(stmt, ArrayAssign):
        return frozenset({stmt.array})
    if isinstance(stmt, (Havoc, Relax)):
        return frozenset(stmt.targets)
    if isinstance(stmt, If):
        return modified_vars(stmt.then_branch) | modified_vars(stmt.else_branch)
    if isinstance(stmt, While):
        return modified_vars(stmt.body)
    if isinstance(stmt, Seq):
        return modified_vars(stmt.first) | modified_vars(stmt.second)
    raise TypeError(f"unknown statement node {stmt!r}")


def read_vars(stmt: Stmt) -> FrozenSet[str]:
    """Return the set of variables a statement may read."""
    if isinstance(stmt, Skip):
        return frozenset()
    if isinstance(stmt, Assign):
        return expr_vars(stmt.value)
    if isinstance(stmt, ArrayAssign):
        return frozenset({stmt.array}) | expr_vars(stmt.index) | expr_vars(stmt.value)
    if isinstance(stmt, (Havoc, Relax)):
        return bool_vars(stmt.predicate)
    if isinstance(stmt, (Assert, Assume)):
        return bool_vars(stmt.condition)
    if isinstance(stmt, Relate):
        return frozenset(name for name, _tag in rel_bool_vars(stmt.condition))
    if isinstance(stmt, If):
        return (
            bool_vars(stmt.condition)
            | read_vars(stmt.then_branch)
            | read_vars(stmt.else_branch)
        )
    if isinstance(stmt, While):
        return bool_vars(stmt.condition) | read_vars(stmt.body)
    if isinstance(stmt, Seq):
        return read_vars(stmt.first) | read_vars(stmt.second)
    raise TypeError(f"unknown statement node {stmt!r}")


def used_vars(stmt: Stmt) -> FrozenSet[str]:
    """Return all variables mentioned by a statement (read or written)."""
    return read_vars(stmt) | modified_vars(stmt)


def no_rel(stmt: Stmt) -> bool:
    """The ``no_rel(s)`` predicate of Figure 8.

    True iff no ``relate`` statement occurs anywhere inside ``stmt``.  The
    ``diverge`` rule of the axiomatic relaxed semantics is only applicable to
    statements satisfying this predicate, because relational assertions have
    no natural semantics once the original and relaxed executions are no
    longer in lockstep.
    """
    return not any(isinstance(node, Relate) for node in stmt.walk())


def contains_relax(stmt: Stmt) -> bool:
    """Return True iff a ``relax`` statement occurs anywhere inside ``stmt``."""
    return any(isinstance(node, Relax) for node in stmt.walk())


def relate_statements(stmt: Stmt) -> List[Relate]:
    """Return all ``relate`` statements inside ``stmt`` in pre-order."""
    return [node for node in stmt.walk() if isinstance(node, Relate)]


def gamma(program: Program) -> Dict[str, RelBoolExpr]:
    """Build the label map ``Γ : L -> B*`` of Theorem 6.

    ``Γ`` maps each ``relate`` label in the program to its relational boolean
    expression.  Well-formed programs have uniquely labelled ``relate``
    statements; duplicates raise :class:`WellFormednessError`.
    """
    mapping: Dict[str, RelBoolExpr] = {}
    for stmt in relate_statements(program.body):
        if stmt.label in mapping:
            raise WellFormednessError(
                f"duplicate relate label {stmt.label!r}; relate statements in "
                "well-formed programs must be uniquely labelled"
            )
        mapping[stmt.label] = stmt.condition
    return mapping


# ---------------------------------------------------------------------------
# Well-formedness
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WellFormednessReport:
    """The result of checking a program's static well-formedness."""

    ok: bool
    errors: Tuple[str, ...]

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise WellFormednessError("; ".join(self.errors))


def check_program(program: Program, *, strict_declarations: bool = False) -> WellFormednessReport:
    """Check static well-formedness conditions for a program.

    Conditions checked:

    * ``relate`` labels are unique across the program,
    * ``havoc`` / ``relax`` target lists are non-empty and duplicate-free,
    * if ``strict_declarations`` is set, every variable used is declared in
      ``program.variables`` or ``program.arrays``.
    """
    errors: List[str] = []

    seen_labels: Set[str] = set()
    for stmt in relate_statements(program.body):
        if stmt.label in seen_labels:
            errors.append(f"duplicate relate label {stmt.label!r}")
        seen_labels.add(stmt.label)

    for node in program.body.walk():
        if isinstance(node, (Havoc, Relax)):
            kind = "havoc" if isinstance(node, Havoc) else "relax"
            if not node.targets:
                errors.append(f"{kind} statement has an empty target list")
            if len(set(node.targets)) != len(node.targets):
                errors.append(
                    f"{kind} statement has duplicate targets {node.targets!r}"
                )

    if strict_declarations:
        declared = set(program.variables) | set(program.arrays)
        for name in sorted(used_vars(program.body)):
            if name not in declared:
                errors.append(f"variable {name!r} is used but not declared")

    return WellFormednessReport(ok=not errors, errors=tuple(errors))


def statement_size(stmt: Stmt) -> int:
    """Return the number of AST nodes in a statement (a simple size metric)."""
    return sum(1 for _ in stmt.walk())


def program_size(program: Program) -> int:
    """Return the number of AST nodes in a program."""
    return statement_size(program.body)


def count_statement_kinds(program: Program) -> Dict[str, int]:
    """Count statements in the program, keyed by their class name.

    Used by the artifact-statistics benchmark (experiment E1) to report a
    structural profile of each case study.
    """
    counts: Dict[str, int] = {}
    for stmt in program.statements():
        key = type(stmt).__name__
        counts[key] = counts.get(key, 0) + 1
    return counts
