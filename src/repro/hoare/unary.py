"""The unary proof systems: axiomatic original (⊢o) and intermediate (⊢i).

Figure 7 of the paper gives the Hoare rules of the axiomatic original
semantics; Figure 9 gives the two rules that differ in the axiomatic
intermediate semantics (used by the ``diverge`` rule of the relational
system when the original and relaxed executions are no longer in lockstep):

===============  ==============================  ==============================
statement        original semantics ⊢o            intermediate semantics ⊢i
===============  ==============================  ==============================
``relax``        behaves as ``assert e`` (no-op    behaves as ``havoc (X) st e``
                 on the state, predicate must
                 hold)
``assume``       assumed without proof (may        must be proved, exactly like
                 fail as ``ba``)                  ``assert``
everything else  standard Hoare rules              same as ⊢o
===============  ==============================  ==============================

The implementation is a weakest-precondition verification-condition
generator over annotated programs (loops carry invariants).  The
``havoc``/``relax`` progress premise of the paper is incorporated into the
weakest precondition as the conjunct "some assignment to the targets
satisfies the predicate" — for every reachable state, which is (slightly
stronger than and) sufficient for the paper's non-emptiness premise, and is
exactly the condition needed for Lemma 2 / Lemma 4 style progress.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..lang.ast import (
    ArrayAssign,
    Assert,
    Assign,
    Assume,
    BoolExpr,
    Havoc,
    If,
    Program,
    Relate,
    Relax,
    Seq,
    Skip,
    Stmt,
    While,
)
from ..lang.pretty import pretty_bool, pretty_stmt
from ..logic.formula import (
    Formula,
    FreshSymbols,
    Store,
    Symbol,
    SymTerm,
    Tag,
    TRUE,
    conj,
    exists,
    forall,
    formula_arrays,
    free_symbols,
    implies,
    neg,
)
from ..logic.subst import rename_arrays, substitute
from ..logic.translate import formula_of_bool, term_of_expr
from ..logic.traverse import TypeDispatcher
from ..solver.interface import Solver
from .obligations import (
    ObligationCollector,
    ObligationKind,
    ProofSystem,
    ProvenanceContext,
    VerificationReport,
    discharge,
)

if TYPE_CHECKING:  # pragma: no cover - only for annotations
    from ..engine.core import ObligationEngine


class MissingInvariantError(Exception):
    """Raised when a ``while`` loop lacks the invariant annotation the
    verification-condition generator needs."""


class UnsupportedStatementError(Exception):
    """Raised when a statement falls outside the supported fragment."""


class UnarySystem(enum.Enum):
    """Which unary axiomatic semantics to generate conditions for."""

    ORIGINAL = "original"
    INTERMEDIATE = "intermediate"


def _condition_formula(condition: BoolExpr, tag: Optional[Tag]) -> Formula:
    return formula_of_bool(condition, tag)


@dataclass
class UnaryVCGenerator:
    """Weakest-precondition VC generation for ⊢o and ⊢i.

    ``tag`` controls which execution's variables the generated formulas talk
    about: ``None`` for standalone unary verification, ``Tag.ORIGINAL`` /
    ``Tag.RELAXED`` when the relational system invokes the unary systems for
    the projections of a divergent region (the ``diverge`` rule).
    """

    system: UnarySystem
    collector: ObligationCollector
    tag: Optional[Tag] = None
    fresh: Optional[FreshSymbols] = None

    def __post_init__(self) -> None:
        if self.fresh is None:
            self.fresh = FreshSymbols()

    # -- entry point -----------------------------------------------------------

    def verification_conditions(
        self, stmt: Stmt, precondition: Formula, postcondition: Formula
    ) -> None:
        """Emit the obligations for ``{precondition} stmt {postcondition}``."""
        weakest = self.wp(stmt, postcondition)
        self.collector.record_rule("conseq")
        self.collector.add(
            implies(precondition, weakest),
            ObligationKind.VALIDITY,
            rule="conseq",
            description="precondition establishes the weakest precondition",
            statement=pretty_stmt(stmt) if not isinstance(stmt, Seq) else "<body>",
            node=stmt,
        )

    # -- weakest preconditions ----------------------------------------------------

    def wp(self, stmt: Stmt, post: Formula) -> Formula:
        """The weakest precondition of ``stmt`` for postcondition ``post``.

        Dispatches through the shared :class:`TypeDispatcher` (one dict
        lookup per statement; the Figure 7 / Figure 9 rules live in the
        ``_wp_*`` handlers below).
        """
        return _WP(stmt, self, post)

    # -- rule helpers -----------------------------------------------------------------

    def _wp_assert(self, condition: BoolExpr, post: Formula) -> Formula:
        formula = _condition_formula(condition, self.tag)
        return conj(formula, post)

    def _wp_havoc(
        self,
        targets: Sequence[str],
        predicate: BoolExpr,
        post: Formula,
        statement_text: str,
    ) -> Formula:
        predicate_formula = _condition_formula(predicate, self.tag)
        assert self.fresh is not None
        # Array-valued targets: the predicate must not constrain the array's
        # contents; havocing the array then amounts to forgetting everything the
        # postcondition knew about it, implemented by renaming the array symbol.
        predicate_arrays = {a.name for a in formula_arrays(predicate_formula)}
        post_arrays = {a.name for a in formula_arrays(post)}
        array_targets = [
            name for name in targets if name in predicate_arrays or name in post_arrays
        ]
        scalar_targets = [name for name in targets if name not in array_targets]
        for name in array_targets:
            if name in predicate_arrays:
                raise UnsupportedStatementError(
                    f"havoc/relax of array {name!r} with a predicate constraining its "
                    "contents is not supported"
                )
        post_for_arrays = post
        if array_targets:
            renaming_arrays = {
                Symbol(name, self.tag): self.fresh.fresh(name, self.tag)
                for name in array_targets
            }
            post_for_arrays = rename_arrays(post, renaming_arrays)

        renaming: Dict[Symbol, SymTerm] = {}
        fresh_symbols: List[Symbol] = []
        for name in scalar_targets:
            source = Symbol(name, self.tag)
            fresh_symbol = self.fresh.fresh(name, self.tag)
            fresh_symbols.append(fresh_symbol)
            renaming[source] = SymTerm(fresh_symbol)
        predicate_fresh = substitute(predicate_formula, renaming)
        post_fresh = substitute(post_for_arrays, renaming)
        # Progress: some assignment to the targets satisfies the predicate.
        progress = exists(fresh_symbols, predicate_fresh) if fresh_symbols else predicate_fresh
        # Correctness: every satisfying assignment establishes the postcondition.
        correctness = (
            forall(fresh_symbols, implies(predicate_fresh, post_fresh))
            if fresh_symbols
            else implies(predicate_fresh, post_fresh)
        )
        return conj(progress, correctness)

    def _wp_while(self, stmt: While, post: Formula) -> Formula:
        self.collector.record_rule("while")
        if stmt.invariant is None:
            raise MissingInvariantError(
                f"while loop {pretty_bool(stmt.condition)} needs an 'invariant' "
                "annotation for verification-condition generation"
            )
        invariant = _condition_formula(stmt.invariant, self.tag)
        condition = _condition_formula(stmt.condition, self.tag)
        body_wp = self.wp(stmt.body, invariant)
        self.collector.add(
            implies(conj(invariant, condition), body_wp),
            ObligationKind.VALIDITY,
            rule="while-preserve",
            description="loop invariant is preserved by the loop body",
            statement=pretty_bool(stmt.condition),
            node=stmt,
        )
        self.collector.add(
            implies(conj(invariant, neg(condition)), post),
            ObligationKind.VALIDITY,
            rule="while-exit",
            description="loop invariant and exit condition establish the postcondition",
            statement=pretty_bool(stmt.condition),
            node=stmt,
        )
        return invariant


# -- the wp rule table ---------------------------------------------------------
#
# One handler per statement class, registered on the shared dispatcher from
# repro.logic.traverse; handler signature is (stmt, generator, post).

_WP = TypeDispatcher("statement")


@_WP.register(Skip)
def _wp_skip(stmt: Skip, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("skip")
    return post


@_WP.register(Assign)
def _wp_assign(stmt: Assign, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("assign")
    target = Symbol(stmt.target, gen.tag)
    value = term_of_expr(stmt.value, gen.tag)
    return substitute(post, {target: value})


@_WP.register(ArrayAssign)
def _wp_array_assign(stmt: ArrayAssign, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("assign-array")
    array = Symbol(stmt.array, gen.tag)
    index = term_of_expr(stmt.index, gen.tag)
    value = term_of_expr(stmt.value, gen.tag)
    return substitute(post, {}, arrays={array: Store(array, index, value)})


@_WP.register(Havoc)
def _wp_havoc_stmt(stmt: Havoc, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("havoc")
    return gen._wp_havoc(stmt.targets, stmt.predicate, post, str(stmt))


@_WP.register(Relax)
def _wp_relax(stmt: Relax, gen: UnaryVCGenerator, post: Formula) -> Formula:
    if gen.system is UnarySystem.ORIGINAL:
        # Figure 7: relax is verified exactly like assert of its predicate.
        gen.collector.record_rule("relax-as-assert")
        return gen._wp_assert(stmt.predicate, post)
    # Figure 9: relax is verified exactly like havoc.
    gen.collector.record_rule("relax-as-havoc")
    return gen._wp_havoc(stmt.targets, stmt.predicate, post, str(stmt))


@_WP.register(Assert)
def _wp_assert_stmt(stmt: Assert, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("assert")
    return gen._wp_assert(stmt.condition, post)


@_WP.register(Assume)
def _wp_assume(stmt: Assume, gen: UnaryVCGenerator, post: Formula) -> Formula:
    if gen.system is UnarySystem.ORIGINAL:
        # Figure 7: the assumption is taken on faith (it may fail as ba).
        gen.collector.record_rule("assume")
        return implies(_condition_formula(stmt.condition, gen.tag), post)
    # Figure 9: the intermediate semantics must prove assumptions.
    gen.collector.record_rule("assume-as-assert")
    return gen._wp_assert(stmt.condition, post)


@_WP.register(Relate)
def _wp_relate(stmt: Relate, gen: UnaryVCGenerator, post: Formula) -> Formula:
    # Figure 7: relate is a no-op for the unary systems.
    gen.collector.record_rule("relate-skip")
    return post


@_WP.register(If)
def _wp_if(stmt: If, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("if")
    condition = _condition_formula(stmt.condition, gen.tag)
    then_wp = gen.wp(stmt.then_branch, post)
    else_wp = gen.wp(stmt.else_branch, post)
    return conj(implies(condition, then_wp), implies(neg(condition), else_wp))


@_WP.register(While)
def _wp_while_stmt(stmt: While, gen: UnaryVCGenerator, post: Formula) -> Formula:
    return gen._wp_while(stmt, post)


@_WP.register(Seq)
def _wp_seq(stmt: Seq, gen: UnaryVCGenerator, post: Formula) -> Formula:
    gen.collector.record_rule("seq")
    return gen.wp(stmt.first, gen.wp(stmt.second, post))


def collect_unary(
    program_or_stmt: Union[Program, Stmt],
    precondition: Union[Formula, BoolExpr],
    postcondition: Union[Formula, BoolExpr],
    system: UnarySystem = UnarySystem.ORIGINAL,
    tag: Optional[Tag] = None,
    program_name: Optional[str] = None,
    context: Optional[ProvenanceContext] = None,
) -> Tuple[ObligationCollector, str]:
    """Generate (but do not discharge) the VCs of a unary triple.

    Returns the populated obligation collector plus the program name, ready
    to be discharged by :func:`~repro.hoare.obligations.discharge` or pooled
    with other programs' obligations in an obligation engine batch.
    """
    stmt = program_or_stmt.body if isinstance(program_or_stmt, Program) else program_or_stmt
    name = program_name or (
        program_or_stmt.name if isinstance(program_or_stmt, Program) else "<statement>"
    )
    pre = precondition if isinstance(precondition, Formula) else formula_of_bool(precondition, tag)
    post = (
        postcondition
        if isinstance(postcondition, Formula)
        else formula_of_bool(postcondition, tag)
    )
    proof_system = (
        ProofSystem.ORIGINAL if system is UnarySystem.ORIGINAL else ProofSystem.INTERMEDIATE
    )
    if context is None:
        context = ProvenanceContext(
            program=name,
            source=(
                program_or_stmt.source
                if isinstance(program_or_stmt, Program)
                else None
            ),
        )
    collector = ObligationCollector(proof_system, context=context)
    generator = UnaryVCGenerator(system=system, collector=collector, tag=tag)
    try:
        generator.verification_conditions(stmt, pre, post)
    except (MissingInvariantError, UnsupportedStatementError) as error:
        collector.error(str(error))
    return collector, name


def prove_unary(
    program_or_stmt: Union[Program, Stmt],
    precondition: Union[Formula, BoolExpr],
    postcondition: Union[Formula, BoolExpr],
    system: UnarySystem = UnarySystem.ORIGINAL,
    solver: Optional[Solver] = None,
    tag: Optional[Tag] = None,
    program_name: Optional[str] = None,
    engine: Optional["ObligationEngine"] = None,
) -> VerificationReport:
    """Verify ``{precondition} program {postcondition}`` under ⊢o or ⊢i.

    Pre/postconditions may be given as program boolean expressions (they are
    translated with the requested ``tag``) or as logic formulas.  Passing an
    obligation ``engine`` routes discharge through its cache, portfolio and
    scheduler; otherwise the classic serial path on ``solver`` is used.
    """
    collector, name = collect_unary(
        program_or_stmt,
        precondition,
        postcondition,
        system=system,
        tag=tag,
        program_name=program_name,
    )
    return discharge(collector, solver or Solver(), name, engine=engine)


def prove_original(
    program_or_stmt: Union[Program, Stmt],
    precondition: Union[Formula, BoolExpr],
    postcondition: Union[Formula, BoolExpr],
    solver: Optional[Solver] = None,
    engine: Optional["ObligationEngine"] = None,
) -> VerificationReport:
    """Verify a triple under the axiomatic original semantics ⊢o (Figure 7)."""
    return prove_unary(
        program_or_stmt, precondition, postcondition, UnarySystem.ORIGINAL, solver,
        engine=engine,
    )


def prove_intermediate(
    program_or_stmt: Union[Program, Stmt],
    precondition: Union[Formula, BoolExpr],
    postcondition: Union[Formula, BoolExpr],
    solver: Optional[Solver] = None,
    engine: Optional["ObligationEngine"] = None,
) -> VerificationReport:
    """Verify a triple under the axiomatic intermediate semantics ⊢i (Figure 9)."""
    return prove_unary(
        program_or_stmt, precondition, postcondition, UnarySystem.INTERMEDIATE, solver,
        engine=engine,
    )
