"""High-level acceptability verification: combine ⊢o and ⊢r proofs.

Section 4 of the paper derives its headline guarantees from combinations of
proofs in the axiomatic original and relaxed semantics:

* **Original Progress Modulo Assumptions** (Lemma 2) — a ⊢o proof means no
  original execution violates an assertion (it may still violate an
  assumption).
* **Soundness of Relational Assertions** (Theorem 6) — a ⊢r proof means
  every pair of original/relaxed executions satisfies all executed
  ``relate`` statements.
* **Relative Relaxed Progress** (Theorem 7) — a ⊢r proof means that if no
  original execution errs, no relaxed execution errs.
* **Relaxed Progress** (Theorem 8) — ⊢o and ⊢r proofs together mean that if
  original executions do not violate assumptions, relaxed executions are
  error free.
* **Relaxed Progress Modulo Original Assumptions** (Corollary 9) — with
  both proofs, an error in a relaxed execution implies an assumption
  violation in an original execution (errors are debuggable on the original
  program).

:class:`AcceptabilityVerifier` packages the two proofs and reports which
guarantees the supplied annotations establish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from ..lang.analysis import modified_vars, used_vars
from ..lang.ast import BoolExpr, Program, RelBoolExpr, Stmt
from ..lang.source import ensure_source
from ..logic.formula import Formula, TRUE, conj
from ..logic.inject import relational_frame
from ..logic.translate import formula_of_bool, formula_of_rel_bool
from ..solver.interface import Solver
from .obligations import (
    ObligationCollector,
    ProvenanceContext,
    VerificationReport,
    discharge,
)
from .relational import RelationalConfig, RelationalProver
from .unary import UnarySystem, collect_unary

if TYPE_CHECKING:  # pragma: no cover - only for annotations
    from ..engine.core import ObligationEngine


@dataclass
class AcceptabilitySpec:
    """The developer-facing specification of what to verify.

    Unary pre/postconditions annotate the ⊢o proof; relational pre/post
    conditions annotate the ⊢r proof.  When the relational precondition is
    omitted, the default is noninterference on every variable the program
    uses (``x<o> == x<r>`` for each variable) — the natural assumption that
    both executions start from the same state.
    """

    precondition: Union[BoolExpr, Formula, None] = None
    postcondition: Union[BoolExpr, Formula, None] = None
    rel_precondition: Union[RelBoolExpr, Formula, None] = None
    rel_postcondition: Union[RelBoolExpr, Formula, None] = None
    relational_config: Optional[RelationalConfig] = None


@dataclass
class AcceptabilityReport:
    """The combined outcome of the ⊢o and ⊢r verifications."""

    program_name: str
    original: VerificationReport
    relaxed: VerificationReport

    @property
    def verified(self) -> bool:
        return self.original.verified and self.relaxed.verified

    def guarantees(self) -> Dict[str, bool]:
        """Which of the paper's semantic guarantees the proofs establish."""
        return {
            "original_progress_modulo_assumptions": self.original.verified,
            "soundness_of_relational_assertions": self.relaxed.verified,
            "relative_relaxed_progress": self.relaxed.verified,
            "relaxed_progress": self.original.verified and self.relaxed.verified,
            "relaxed_progress_modulo_original_assumptions": (
                self.original.verified and self.relaxed.verified
            ),
        }

    def effort(self) -> Dict[str, Dict[str, int]]:
        """Proof-effort metrics per layer (the analogue of lines of Coq)."""
        return {
            "original": {
                "rule_applications": self.original.total_rule_applications(),
                "obligations": len(self.original.results),
                "obligation_size": self.original.total_obligation_size(),
            },
            "relaxed": {
                "rule_applications": self.relaxed.total_rule_applications(),
                "obligations": len(self.relaxed.results),
                "obligation_size": self.relaxed.total_obligation_size(),
            },
        }

    def summary(self) -> str:
        lines = [f"=== acceptability verification: {self.program_name} ==="]
        lines.append(self.original.summary())
        lines.append(self.relaxed.summary())
        lines.append("guarantees:")
        for name, holds in self.guarantees().items():
            marker = "yes" if holds else "NO"
            lines.append(f"  {name}: {marker}")
        return "\n".join(lines)


@dataclass
class CollectedAcceptability:
    """The undischarged obligations of one program's ⊢o and ⊢r proofs.

    Produced by :meth:`AcceptabilityVerifier.collect`; the batch layer pools
    the obligations of many programs into one engine discharge wave and then
    scatters the results back into per-program reports.
    """

    program_name: str
    original: ObligationCollector
    relaxed: ObligationCollector
    # The program the obligations were collected from, with source text and
    # spans attached when recoverable — the anchor for forensic reports.
    program: Optional[Program] = None


class AcceptabilityVerifier:
    """Verify a relaxed program against an :class:`AcceptabilitySpec`.

    When an obligation ``engine`` is supplied, the side conditions of both
    proofs are discharged through it (cache, portfolio, parallel scheduler);
    otherwise the classic serial path on ``solver`` is used.  ``solver`` is
    always used for the relational prover's convergence checks, which happen
    during proof construction rather than discharge.
    """

    def __init__(
        self,
        solver: Optional[Solver] = None,
        engine: Optional["ObligationEngine"] = None,
    ) -> None:
        self.solver = solver or Solver()
        self.engine = engine

    def collect(
        self,
        program: Program,
        spec: AcceptabilitySpec,
        study: str = "",
        sites: tuple = (),
    ) -> CollectedAcceptability:
        """Generate both proofs' obligations without discharging them.

        ``study`` and ``sites`` (case-study name, applied relaxation-site
        identifiers) flow into every obligation's provenance; builder-built
        programs are round-tripped through the pretty-printer to recover
        source text and spans (structure-preserving, see
        :func:`repro.lang.source.ensure_source`).
        """
        program = ensure_source(program)
        precondition = self._unary(spec.precondition)
        postcondition = self._unary(spec.postcondition)
        context = ProvenanceContext(
            program=program.name,
            study=study,
            sites=tuple(sites),
            source=program.source,
        )
        original_collector, _ = collect_unary(
            program,
            precondition,
            postcondition,
            system=UnarySystem.ORIGINAL,
            program_name=program.name,
            context=context.child(),
        )

        rel_pre = self._relational(spec.rel_precondition, program)
        rel_post = self._relational(spec.rel_postcondition, program, default=TRUE)
        prover = RelationalProver(
            solver=self.solver,
            config=spec.relational_config,
            context=context.child(),
        )
        relaxed_collector, _ = prover.collect(
            program, rel_pre, rel_post, program_name=program.name
        )
        return CollectedAcceptability(
            program_name=program.name,
            original=original_collector,
            relaxed=relaxed_collector,
            program=program,
        )

    def verify(
        self,
        program: Program,
        spec: AcceptabilitySpec,
        study: str = "",
        sites: tuple = (),
    ) -> AcceptabilityReport:
        collected = self.collect(program, spec, study=study, sites=sites)
        original_report = discharge(
            collected.original, self.solver, program.name, engine=self.engine
        )
        relaxed_report = discharge(
            collected.relaxed, self.solver, program.name, engine=self.engine
        )
        return AcceptabilityReport(
            program_name=program.name,
            original=original_report,
            relaxed=relaxed_report,
        )

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _unary(value: Union[BoolExpr, Formula, None]) -> Formula:
        if value is None:
            return TRUE
        if isinstance(value, Formula):
            return value
        return formula_of_bool(value)

    @staticmethod
    def _relational(
        value: Union[RelBoolExpr, Formula, None],
        program: Program,
        default: Optional[Formula] = None,
    ) -> Formula:
        if value is None:
            if default is not None:
                return default
            names = sorted(
                set(program.variables) | (used_vars(program.body) - set(program.arrays))
            )
            return relational_frame(names)
        if isinstance(value, Formula):
            return value
        return formula_of_rel_bool(value)


def verify_acceptability(
    program: Program,
    spec: Optional[AcceptabilitySpec] = None,
    solver: Optional[Solver] = None,
    engine: Optional["ObligationEngine"] = None,
) -> AcceptabilityReport:
    """Convenience wrapper over :class:`AcceptabilityVerifier`."""
    return AcceptabilityVerifier(solver=solver, engine=engine).verify(
        program, spec or AcceptabilitySpec()
    )
