"""Proof obligations, their results, and verification reports.

The axiomatic semantics of the paper generate two kinds of side conditions:

* **validity** obligations — entailments ``|= P ⇒ Q`` (the consequence rule,
  assert/assume premises, loop invariant preservation, convergence checks,
  relate premises), discharged by :meth:`Solver.check_valid`;
* **satisfiability** obligations — the non-emptiness premises of the
  ``havoc`` and ``relax`` rules (``[[...]] ≠ ∅``), discharged by
  :meth:`Solver.check_sat`.

An obligation records where it came from (the rule and the statement), so a
verification report can present per-rule effort statistics — the analogue of
the paper's "lines of Coq proof script" measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..lang.ast import Node, Span
from ..logic.formula import Formula, formula_size
from ..solver.interface import Solver, SolverResult
from ..solver.lia import Status

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from ..engine.core import ObligationEngine


class ObligationKind(enum.Enum):
    """Whether the obligation is an entailment or a non-emptiness premise."""

    VALIDITY = "validity"
    SATISFIABILITY = "satisfiability"


class ProofSystem(enum.Enum):
    """Which axiomatic semantics generated the obligation."""

    ORIGINAL = "original"       # ⊢o, Figure 7
    INTERMEDIATE = "intermediate"  # ⊢i, Figure 9
    RELAXED = "relaxed"         # ⊢r, Figure 8


@dataclass(frozen=True)
class ObligationProvenance:
    """Where an obligation came from, down to the source span.

    Attached at collection time by :class:`ObligationCollector` and carried
    through fingerprinting, the persistent cache and ``--jobs`` worker
    round-trips untouched (workers only ever see formulas).  Everything here
    is plain data — strings, an optional :class:`~repro.lang.ast.Span` and a
    tuple of relaxation-site identifiers — so it pickles and serialises
    losslessly.
    """

    program: str = ""
    study: str = ""
    statement: str = ""
    span: Optional[Span] = None
    sites: Tuple[str, ...] = ()
    rule: str = ""
    system: str = ""
    kind: str = ""
    source: Optional[str] = None

    def location(self) -> str:
        """Human-readable source location, e.g. ``line 3, columns 5-12``."""
        if self.span is None:
            return "unknown location"
        return self.span.describe()

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "study": self.study,
            "statement": self.statement,
            "span": self.span.as_dict() if self.span is not None else None,
            "sites": list(self.sites),
            "rule": self.rule,
            "system": self.system,
            "kind": self.kind,
        }


@dataclass
class ProvenanceContext:
    """Collection-time context shared by every obligation of one proof run.

    Built once per verification (per program / case study) and handed to the
    collectors; :meth:`ObligationCollector.add` combines it with the per-call
    rule/statement information into an :class:`ObligationProvenance`.
    """

    program: str = ""
    study: str = ""
    sites: Tuple[str, ...] = ()
    source: Optional[str] = None

    def child(self) -> "ProvenanceContext":
        """Context for a nested collector (the diverge rule's sub-proofs)."""
        return ProvenanceContext(
            program=self.program,
            study=self.study,
            sites=self.sites,
            source=self.source,
        )


@dataclass
class ProofObligation:
    """A single side condition produced by a proof rule."""

    formula: Formula
    kind: ObligationKind
    system: ProofSystem
    rule: str
    description: str
    statement: str = ""
    provenance: Optional[ObligationProvenance] = None

    def size(self) -> int:
        return formula_size(self.formula)


@dataclass
class ObligationResult:
    """The solver's verdict on one obligation."""

    obligation: ProofObligation
    status: Status
    counterexample: Optional[Dict] = None
    elapsed_seconds: float = 0.0
    reason: str = ""

    @property
    def discharged(self) -> bool:
        if self.obligation.kind is ObligationKind.VALIDITY:
            return self.status is Status.VALID
        return self.status is Status.SAT


@dataclass
class VerificationReport:
    """The aggregate result of verifying a program under one proof system."""

    system: ProofSystem
    program_name: str
    results: List[ObligationResult] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)
    rule_applications: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def verified(self) -> bool:
        return not self.errors and all(result.discharged for result in self.results)

    @property
    def obligations(self) -> List[ProofObligation]:
        return [result.obligation for result in self.results]

    def undischarged(self) -> List[ObligationResult]:
        return [result for result in self.results if not result.discharged]

    def as_dict(self) -> Dict[str, object]:
        """The canonical JSON shape of one proof layer.

        Shared by every ``--json`` surface (``verify-batch``,
        ``verify-case-study``) so the counters stay in sync by construction.
        """
        return {
            "verified": self.verified,
            "obligations": len(self.results),
            "discharged": sum(1 for result in self.results if result.discharged),
            "unknown": sum(
                1 for result in self.results if result.status is Status.UNKNOWN
            ),
            "undischarged": [
                {
                    "rule": result.obligation.rule,
                    "description": result.obligation.description,
                    "status": result.status.value,
                    "reason": result.reason,
                    "provenance": (
                        result.obligation.provenance.as_dict()
                        if result.obligation.provenance is not None
                        else None
                    ),
                }
                for result in self.undischarged()
            ],
            "errors": list(self.errors),
        }

    def total_rule_applications(self) -> int:
        return sum(self.rule_applications.values())

    def total_obligation_size(self) -> int:
        return sum(result.obligation.size() for result in self.results)

    def summary(self) -> str:
        """A short human-readable summary of the verification outcome."""
        verdict = "VERIFIED" if self.verified else "NOT VERIFIED"
        lines = [
            f"[{self.system.value}] {self.program_name}: {verdict}",
            f"  rule applications : {self.total_rule_applications()}",
            f"  proof obligations : {len(self.results)} "
            f"({sum(1 for r in self.results if r.discharged)} discharged)",
            f"  obligation size   : {self.total_obligation_size()} formula nodes",
            f"  solver time       : {self.elapsed_seconds:.3f}s",
        ]
        for failure in self.undischarged():
            line = (
                f"  UNDISCHARGED [{failure.obligation.rule}] "
                f"{failure.obligation.description} -> {failure.status.value}"
            )
            provenance = failure.obligation.provenance
            if provenance is not None and provenance.span is not None:
                line += f" @ {provenance.location()}"
            if failure.reason:
                line += f" ({failure.reason})"
            lines.append(line)
        for error in self.errors:
            lines.append(f"  ERROR {error}")
        return "\n".join(lines)


class ObligationCollector:
    """Accumulates obligations and rule applications during proof construction."""

    def __init__(
        self,
        system: ProofSystem,
        context: Optional[ProvenanceContext] = None,
    ) -> None:
        self.system = system
        self.context = context if context is not None else ProvenanceContext()
        self.obligations: List[ProofObligation] = []
        self.rule_applications: Dict[str, int] = {}
        self.errors: List[str] = []

    def record_rule(self, rule: str) -> None:
        self.rule_applications[rule] = self.rule_applications.get(rule, 0) + 1

    def add(
        self,
        formula: Formula,
        kind: ObligationKind,
        rule: str,
        description: str,
        statement: str = "",
        node: Optional[Node] = None,
    ) -> None:
        span = node.span if node is not None else None
        if not statement and node is not None:
            statement = str(node)
        provenance = ObligationProvenance(
            program=self.context.program,
            study=self.context.study,
            statement=statement,
            span=span,
            sites=self.context.sites,
            rule=rule,
            system=self.system.value,
            kind=kind.value,
            source=self.context.source,
        )
        self.obligations.append(
            ProofObligation(
                formula=formula,
                kind=kind,
                system=self.system,
                rule=rule,
                description=description,
                statement=statement,
                provenance=provenance,
            )
        )

    def error(self, message: str) -> None:
        self.errors.append(message)


def discharge(
    collector: ObligationCollector,
    solver: Solver,
    program_name: str,
    engine: Optional["ObligationEngine"] = None,
) -> VerificationReport:
    """Discharge every collected obligation and build a report.

    This is now a thin wrapper over the obligation engine
    (:mod:`repro.engine`): without an explicit ``engine`` it constructs the
    default serial engine around ``solver``, which reproduces the classic
    synchronous discharge loop (one solver call per obligation, in order).
    Passing an engine adds result caching, parallel discharge and portfolio
    scheduling without changing this call site.
    """
    if engine is None:
        # Imported lazily: the engine package imports this module.
        from ..engine.core import ObligationEngine

        engine = ObligationEngine(solver=solver)
    return engine.discharge_collected(collector, program_name)
