"""The axiomatic relaxed (relational) semantics ⊢r — Figure 8 of the paper.

The relational proof system relates pairs of executions: an original
execution (⇓o) and a relaxed execution (⇓r) of the *same* program.  Its
judgments ``⊢r {P*} s {Q*}`` use relational formulas over tagged symbols
(``x<o>`` / ``x<r>``).

The implementation is a forward symbolic executor: starting from the
relational precondition it pushes a relational formula through the program,
applying the Figure 8 rule for each statement and emitting the rule's side
conditions as proof obligations.  Control-flow statements use the
*convergent* rules when the current relational formula forces both
executions to take the same branch (checked with the solver), and fall back
to the *diverge* rule otherwise:

* the diverge rule requires ``no_rel(s)`` (no ``relate`` inside the
  divergent region),
* the projections of the current relational formula become the
  preconditions of independent unary proofs — ⊢o for the original side and
  ⊢i for the relaxed side (Figure 9) — whose postconditions are supplied by
  a :class:`DivergenceSpec` annotation (or default to ``true``),
* relationships over variables *not modified* by the divergent region are
  preserved by the relational frame rule (implemented by existentially
  quantifying the modified variables of the pre-state relation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..lang.analysis import modified_vars, no_rel
from ..lang.ast import (
    ArrayAssign,
    Assert,
    Assign,
    Assume,
    BoolExpr,
    Havoc,
    If,
    Program,
    Relate,
    Relax,
    RelBoolExpr,
    Seq,
    Skip,
    Stmt,
    While,
)
from ..lang.pretty import pretty_bool, pretty_stmt
from ..logic.formula import (
    Formula,
    FreshSymbols,
    Symbol,
    SymTerm,
    Tag,
    TRUE,
    conj,
    disj,
    eq,
    exists,
    free_symbols,
    formula_arrays,
    implies,
    neg,
)
from ..logic.inject import inj_o, inj_r, pair, projection_formula
from ..logic.subst import rename_arrays, substitute, substitute_term
from ..logic.translate import formula_of_bool, formula_of_rel_bool, term_of_expr
from ..logic.traverse import TypeDispatcher
from ..solver.interface import Solver
from .obligations import (
    ObligationCollector,
    ObligationKind,
    ProofSystem,
    ProvenanceContext,
    VerificationReport,
    discharge,
)
from .unary import UnarySystem, UnaryVCGenerator, UnsupportedStatementError

if TYPE_CHECKING:  # pragma: no cover - only for annotations
    from ..engine.core import ObligationEngine


@dataclass(frozen=True)
class DivergenceSpec:
    """Annotations for a statement verified with the diverge rule.

    ``original_post`` / ``relaxed_post`` are *unary* boolean expressions (or
    formulas over untagged symbols) that the original (⊢o) and intermediate
    (⊢i) systems must establish for the divergent region.  When omitted they
    default to ``true`` — sound, but all knowledge about modified variables
    is lost and only the relational frame survives the region.
    """

    original_post: Optional[Union[BoolExpr, Formula]] = None
    relaxed_post: Optional[Union[BoolExpr, Formula]] = None
    comment: str = ""


@dataclass
class RelationalConfig:
    """Configuration of the relational prover."""

    # Statements (AST nodes) mapped to their divergence annotations.
    divergence_specs: Mapping[Stmt, DivergenceSpec] = field(default_factory=dict)
    # Names of array variables (array havoc/relax targets are renamed wholesale).
    arrays: Sequence[str] = ()
    # Read-only arrays whose contents are identical in the original and relaxed
    # executions (program inputs); they are translated as a single shared symbol,
    # which gives the relational proofs "array noninterference" for free.
    shared_arrays: Sequence[str] = ()
    # Force the diverge rule for these statements even if control flow converges.
    force_divergent: Sequence[Stmt] = ()


class RelationalProofError(Exception):
    """Raised when the relational proof cannot be constructed (e.g. a
    ``relate`` statement inside a divergent region)."""


class RelationalProver:
    """Forward symbolic execution implementing the ⊢r proof rules."""

    def __init__(
        self,
        solver: Optional[Solver] = None,
        config: Optional[RelationalConfig] = None,
        engine: Optional["ObligationEngine"] = None,
        context: Optional[ProvenanceContext] = None,
    ) -> None:
        self.solver = solver or Solver()
        self.config = config or RelationalConfig()
        self.engine = engine
        self.context = context if context is not None else ProvenanceContext()
        self.collector = ObligationCollector(ProofSystem.RELAXED, context=self.context)
        self.unary_collectors: List[ObligationCollector] = []
        self._fresh = FreshSymbols()

    # -- translation helpers (shared-array aware) ---------------------------------

    def _share(self, formula: Formula) -> Formula:
        """Rename tagged occurrences of shared (read-only input) arrays to a
        single untagged symbol, reflecting that both executions read the same
        array."""
        if not self.config.shared_arrays:
            return formula
        renaming = {}
        for array in formula_arrays(formula):
            if array.name in self.config.shared_arrays and array.tag is not None:
                renaming[array] = Symbol(array.name, None)
        if not renaming:
            return formula
        return rename_arrays(formula, renaming)

    def _bool(self, condition: BoolExpr, tag: Optional[Tag]) -> Formula:
        return self._share(formula_of_bool(condition, tag))

    def _rbool(self, condition: RelBoolExpr) -> Formula:
        return self._share(formula_of_rel_bool(condition))

    # -- public API ----------------------------------------------------------------

    def collect(
        self,
        program_or_stmt: Union[Program, Stmt],
        precondition: Union[Formula, RelBoolExpr],
        postcondition: Union[Formula, RelBoolExpr],
        program_name: Optional[str] = None,
    ) -> Tuple[ObligationCollector, str]:
        """Run the ⊢r proof construction without discharging obligations.

        Returns the collector (with the diverge-rule unary sub-proofs
        already merged in) plus the program name.  Convergence premises are
        still checked with ``self.solver`` during construction — those are
        proof-search queries, not obligations.  Each prover instance should
        collect at most once (the collector accumulates).
        """
        stmt = (
            program_or_stmt.body
            if isinstance(program_or_stmt, Program)
            else program_or_stmt
        )
        name = program_name or (
            program_or_stmt.name
            if isinstance(program_or_stmt, Program)
            else "<statement>"
        )
        pre = self._share(
            precondition
            if isinstance(precondition, Formula)
            else formula_of_rel_bool(precondition)
        )
        post = self._share(
            postcondition
            if isinstance(postcondition, Formula)
            else formula_of_rel_bool(postcondition)
        )
        if not self.context.program:
            self.context.program = name
        if self.context.source is None and isinstance(program_or_stmt, Program):
            self.context.source = program_or_stmt.source
        self._fresh.reserve(sorted(s.name for s in free_symbols(pre) | free_symbols(post)))
        try:
            final = self.sp(stmt, pre)
            self.collector.record_rule("conseq")
            self.collector.add(
                implies(final, post),
                ObligationKind.VALIDITY,
                rule="conseq",
                description="symbolic postcondition establishes the stated postcondition",
                node=stmt,
            )
        except (RelationalProofError, UnsupportedStatementError) as error:
            self.collector.error(str(error))
        # Merge unary obligations gathered by diverge-rule subproofs.
        for unary in self.unary_collectors:
            for obligation in unary.obligations:
                self.collector.obligations.append(obligation)
            for rule, count in unary.rule_applications.items():
                key = f"{unary.system.value}:{rule}"
                self.collector.rule_applications[key] = (
                    self.collector.rule_applications.get(key, 0) + count
                )
            self.collector.errors.extend(unary.errors)
        return self.collector, name

    def prove(
        self,
        program_or_stmt: Union[Program, Stmt],
        precondition: Union[Formula, RelBoolExpr],
        postcondition: Union[Formula, RelBoolExpr],
        program_name: Optional[str] = None,
    ) -> VerificationReport:
        """Verify ``⊢r {precondition} program {postcondition}``."""
        collector, name = self.collect(
            program_or_stmt, precondition, postcondition, program_name
        )
        return discharge(collector, self.solver, name, engine=self.engine)

    # -- forward symbolic execution ---------------------------------------------------

    def sp(self, stmt: Stmt, relation: Formula) -> Formula:
        """The relational strongest postcondition of ``stmt`` from ``relation``.

        Dispatches through the shared :class:`TypeDispatcher`; the Figure 8
        rules live in the ``_sp_*`` handlers registered below the class.
        """
        return _SP(stmt, self, relation)

    # -- straight-line rules ----------------------------------------------------------

    def _sp_assign(self, stmt: Assign, relation: Formula) -> Formula:
        old_o = self._fresh.fresh(stmt.target, Tag.ORIGINAL)
        old_r = self._fresh.fresh(stmt.target, Tag.RELAXED)
        target_o = Symbol(stmt.target, Tag.ORIGINAL)
        target_r = Symbol(stmt.target, Tag.RELAXED)
        renaming = {target_o: SymTerm(old_o), target_r: SymTerm(old_r)}
        shifted_relation = substitute(relation, renaming)
        # The assigned expression is evaluated in the *old* state, so the old-value
        # renaming applies to the right-hand side only, not to the target itself.
        value_o = self._share(
            eq(
                SymTerm(target_o),
                substitute_term(term_of_expr(stmt.value, Tag.ORIGINAL), renaming),
            )
        )
        value_r = self._share(
            eq(
                SymTerm(target_r),
                substitute_term(term_of_expr(stmt.value, Tag.RELAXED), renaming),
            )
        )
        return exists([old_o, old_r], conj(shifted_relation, value_o, value_r))

    def _sp_transfer(
        self,
        condition: BoolExpr,
        relation: Formula,
        rule: str,
        statement_text: str,
        node: Optional[Stmt] = None,
    ) -> Formula:
        """The assert / assume rules of Figure 8: transfer validity from the
        original execution to the relaxed execution via the current relation."""
        original = self._bool(condition, Tag.ORIGINAL)
        relaxed = self._bool(condition, Tag.RELAXED)
        self.collector.add(
            implies(conj(relation, original), relaxed),
            ObligationKind.VALIDITY,
            rule=rule,
            description=(
                f"the relation transfers {rule} {pretty_bool(condition)} from the "
                "original to the relaxed execution"
            ),
            statement=statement_text,
            node=node,
        )
        return conj(relation, original, relaxed)

    def _sp_havoc(self, stmt, relation: Formula, relax_only: bool) -> Formula:
        """The relax rule (and the analogous lockstep havoc rule).

        ``relax`` modifies only the relaxed execution's copies of the targets;
        ``havoc`` modifies both copies (each side independently).
        """
        scalar_targets = [name for name in stmt.targets if name not in self.config.arrays]
        array_targets = [name for name in stmt.targets if name in self.config.arrays]
        predicate_o = self._bool(stmt.predicate, Tag.ORIGINAL)
        predicate_r = self._bool(stmt.predicate, Tag.RELAXED)

        for name in array_targets:
            if name in {s.name for s in free_symbols(predicate_r) | formula_arrays(predicate_r)}:
                raise UnsupportedStatementError(
                    f"array {name!r} is a relax/havoc target constrained by its own "
                    "predicate; this fragment is not supported"
                )

        renaming: Dict[Symbol, SymTerm] = {}
        quantified: List[Symbol] = []
        for name in scalar_targets:
            fresh_r = self._fresh.fresh(name, Tag.RELAXED)
            renaming[Symbol(name, Tag.RELAXED)] = SymTerm(fresh_r)
            quantified.append(fresh_r)
            if not relax_only:
                fresh_o = self._fresh.fresh(name, Tag.ORIGINAL)
                renaming[Symbol(name, Tag.ORIGINAL)] = SymTerm(fresh_o)
                quantified.append(fresh_o)

        shifted = substitute(relation, renaming)
        # Forget relational facts about havoced/relaxed arrays by renaming them.
        array_renaming: Dict[Symbol, Symbol] = {}
        for name in array_targets:
            array_renaming[Symbol(name, Tag.RELAXED)] = self._fresh.fresh(name, Tag.RELAXED)
            if not relax_only:
                array_renaming[Symbol(name, Tag.ORIGINAL)] = self._fresh.fresh(
                    name, Tag.ORIGINAL
                )
        if array_renaming:
            shifted = rename_arrays(shifted, array_renaming)

        quantified_relation = exists(quantified, shifted) if quantified else shifted
        result = conj(quantified_relation, predicate_o, predicate_r)
        # The rule's premise: the relaxed execution can actually choose values
        # satisfying the predicate (non-emptiness of the postcondition).
        self.collector.add(
            conj(quantified_relation, predicate_r),
            ObligationKind.SATISFIABILITY,
            rule="relax" if relax_only else "havoc",
            description=(
                "the relaxation predicate is satisfiable for the relaxed execution"
            ),
            statement=str(stmt),
            node=stmt,
        )
        return result

    # -- control flow: convergent rules and the diverge rule ---------------------------

    def _converges(self, condition: BoolExpr, relation: Formula) -> bool:
        """Check the convergence premise ``P* ⇒ <b.b> ∨ <¬b.¬b>``."""
        both_true = self._share(pair(formula_of_bool(condition), formula_of_bool(condition)))
        both_false = self._share(
            pair(neg(formula_of_bool(condition)), neg(formula_of_bool(condition)))
        )
        premise = implies(relation, disj(both_true, both_false))
        return self.solver.check_valid(premise).is_valid

    def _sp_if(self, stmt: If, relation: Formula) -> Formula:
        forced = any(stmt is node or stmt == node for node in self.config.force_divergent)
        if not forced and self._converges(stmt.condition, relation):
            self.collector.record_rule("if-convergent")
            both_true = self._share(
                pair(formula_of_bool(stmt.condition), formula_of_bool(stmt.condition))
            )
            both_false = self._share(
                pair(neg(formula_of_bool(stmt.condition)), neg(formula_of_bool(stmt.condition)))
            )
            then_post = self.sp(stmt.then_branch, conj(relation, both_true))
            else_post = self.sp(stmt.else_branch, conj(relation, both_false))
            return disj(then_post, else_post)
        self.collector.record_rule("diverge")
        return self._sp_diverge(stmt, relation)

    def _sp_while(self, stmt: While, relation: Formula) -> Formula:
        condition = stmt.condition
        rel_invariant = (
            self._rbool(stmt.rel_invariant)
            if stmt.rel_invariant is not None
            else None
        )
        forced = any(stmt is node or stmt == node for node in self.config.force_divergent)
        if rel_invariant is not None and not forced:
            # Convergent while rule: the invariant must force lockstep branching.
            if self._converges(condition, rel_invariant):
                self.collector.record_rule("while-convergent")
                both_true = self._share(
                    pair(formula_of_bool(condition), formula_of_bool(condition))
                )
                both_false = self._share(
                    pair(neg(formula_of_bool(condition)), neg(formula_of_bool(condition)))
                )
                self.collector.add(
                    implies(relation, rel_invariant),
                    ObligationKind.VALIDITY,
                    rule="while-entry",
                    description="relational loop invariant holds on entry",
                    statement=pretty_bool(condition),
                    node=stmt,
                )
                body_post = self.sp(stmt.body, conj(rel_invariant, both_true))
                self.collector.add(
                    implies(body_post, rel_invariant),
                    ObligationKind.VALIDITY,
                    rule="while-preserve",
                    description="relational loop invariant is preserved by the body",
                    statement=pretty_bool(condition),
                    node=stmt,
                )
                return conj(rel_invariant, both_false)
        self.collector.record_rule("diverge")
        return self._sp_diverge(stmt, relation)

    def _sp_diverge(self, stmt: Stmt, relation: Formula) -> Formula:
        """The diverge rule: independent unary proofs plus the relational frame."""
        if not no_rel(stmt):
            raise RelationalProofError(
                "the diverge rule requires no_rel(s): a relate statement occurs "
                f"inside the divergent region {pretty_stmt(stmt)!r}"
            )
        spec = self._lookup_spec(stmt)
        original_post = self._as_unary_formula(spec.original_post if spec else None)
        relaxed_post = self._as_unary_formula(spec.relaxed_post if spec else None)

        # Projections of the current relation become the unary preconditions.
        original_pre = projection_formula(relation, Tag.ORIGINAL)
        relaxed_pre = projection_formula(relation, Tag.RELAXED)

        # Independent unary proofs: ⊢o for the original side, ⊢i for the relaxed side.
        original_collector = ObligationCollector(
            ProofSystem.ORIGINAL, context=self.context.child()
        )
        original_generator = UnaryVCGenerator(
            system=UnarySystem.ORIGINAL, collector=original_collector, tag=None
        )
        try:
            original_generator.verification_conditions(stmt, original_pre, original_post)
        except Exception as error:  # MissingInvariantError and friends
            original_collector.error(str(error))
        self.unary_collectors.append(original_collector)

        intermediate_collector = ObligationCollector(
            ProofSystem.INTERMEDIATE, context=self.context.child()
        )
        intermediate_generator = UnaryVCGenerator(
            system=UnarySystem.INTERMEDIATE, collector=intermediate_collector, tag=None
        )
        try:
            intermediate_generator.verification_conditions(stmt, relaxed_pre, relaxed_post)
        except Exception as error:
            intermediate_collector.error(str(error))
        self.unary_collectors.append(intermediate_collector)

        # Relational frame: relationships over unmodified variables survive.
        # Sorted so the quantifier order (and fresh-name numbering) of the
        # frame is deterministic across processes — obligation fingerprints
        # must not depend on set iteration order.
        modified = sorted(modified_vars(stmt))
        scalar_modified = [name for name in modified if name not in self.config.arrays]
        array_modified = [name for name in modified if name in self.config.arrays]
        quantified: List[Symbol] = []
        for name in scalar_modified:
            quantified.append(Symbol(name, Tag.ORIGINAL))
            quantified.append(Symbol(name, Tag.RELAXED))
        frame = relation
        if array_modified:
            renaming = {}
            for name in array_modified:
                renaming[Symbol(name, Tag.ORIGINAL)] = self._fresh.fresh(name, Tag.ORIGINAL)
                renaming[Symbol(name, Tag.RELAXED)] = self._fresh.fresh(name, Tag.RELAXED)
            frame = rename_arrays(frame, renaming)
        if quantified:
            # Rename then existentially quantify so the frame says nothing about
            # the modified variables' new values.
            renaming_scalars: Dict[Symbol, SymTerm] = {}
            fresh_scalars: List[Symbol] = []
            for symbol in quantified:
                fresh_symbol = self._fresh.fresh(symbol.name, symbol.tag)
                renaming_scalars[symbol] = SymTerm(fresh_symbol)
                fresh_scalars.append(fresh_symbol)
            frame = exists(fresh_scalars, substitute(frame, renaming_scalars))

        return conj(frame, inj_o(original_post), inj_r(relaxed_post))

    # -- helpers -----------------------------------------------------------------------

    def _lookup_spec(self, stmt: Stmt) -> Optional[DivergenceSpec]:
        for node, spec in self.config.divergence_specs.items():
            if node is stmt or node == stmt:
                return spec
        return None

    @staticmethod
    def _as_unary_formula(value: Optional[Union[BoolExpr, Formula]]) -> Formula:
        if value is None:
            return TRUE
        if isinstance(value, Formula):
            return value
        return formula_of_bool(value)


# -- the sp rule table ---------------------------------------------------------
#
# One handler per statement class (Figure 8), registered on the shared
# dispatcher; handler signature is (stmt, prover, relation).

_SP = TypeDispatcher("statement")


@_SP.register(Skip)
def _sp_skip(stmt: Skip, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("skip")
    return relation


@_SP.register(Assign)
def _sp_assign_stmt(stmt: Assign, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("assign")
    return prover._sp_assign(stmt, relation)


@_SP.register(ArrayAssign)
def _sp_array_assign(stmt: ArrayAssign, prover: RelationalProver, relation: Formula) -> Formula:
    raise UnsupportedStatementError(
        "array assignment in lockstep relational reasoning is not supported; "
        "place array writes inside a divergent region or model them with "
        "scalar summaries"
    )


@_SP.register(Havoc)
def _sp_havoc_stmt(stmt: Havoc, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("havoc")
    return prover._sp_havoc(stmt, relation, relax_only=False)


@_SP.register(Relax)
def _sp_relax(stmt: Relax, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("relax")
    return prover._sp_havoc(stmt, relation, relax_only=True)


@_SP.register(Assert)
def _sp_assert(stmt: Assert, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("assert")
    return prover._sp_transfer(stmt.condition, relation, "assert", str(stmt), node=stmt)


@_SP.register(Assume)
def _sp_assume(stmt: Assume, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("assume")
    return prover._sp_transfer(stmt.condition, relation, "assume", str(stmt), node=stmt)


@_SP.register(Relate)
def _sp_relate(stmt: Relate, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("relate")
    condition = prover._rbool(stmt.condition)
    prover.collector.add(
        implies(relation, condition),
        ObligationKind.VALIDITY,
        rule="relate",
        description=f"relate {stmt.label!r} holds for all reachable state pairs",
        statement=str(stmt),
        node=stmt,
    )
    return conj(relation, condition)


@_SP.register(If)
def _sp_if_stmt(stmt: If, prover: RelationalProver, relation: Formula) -> Formula:
    return prover._sp_if(stmt, relation)


@_SP.register(While)
def _sp_while_stmt(stmt: While, prover: RelationalProver, relation: Formula) -> Formula:
    return prover._sp_while(stmt, relation)


@_SP.register(Seq)
def _sp_seq(stmt: Seq, prover: RelationalProver, relation: Formula) -> Formula:
    prover.collector.record_rule("seq")
    return prover.sp(stmt.second, prover.sp(stmt.first, relation))


def prove_relaxed(
    program_or_stmt: Union[Program, Stmt],
    precondition: Union[Formula, RelBoolExpr],
    postcondition: Union[Formula, RelBoolExpr],
    solver: Optional[Solver] = None,
    config: Optional[RelationalConfig] = None,
    program_name: Optional[str] = None,
    engine: Optional["ObligationEngine"] = None,
) -> VerificationReport:
    """Verify ``⊢r {precondition} program {postcondition}`` (Figure 8)."""
    prover = RelationalProver(solver=solver, config=config, engine=engine)
    return prover.prove(program_or_stmt, precondition, postcondition, program_name)
