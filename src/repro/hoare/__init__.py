"""Axiomatic semantics: the ⊢o, ⊢i and ⊢r proof systems (Figures 7–9).

* :mod:`repro.hoare.unary` — weakest-precondition verification-condition
  generation for the axiomatic original (⊢o) and intermediate (⊢i)
  semantics,
* :mod:`repro.hoare.relational` — the relational axiomatic relaxed
  semantics ⊢r as a forward symbolic executor with convergent control-flow
  rules, the diverge rule and the relational frame,
* :mod:`repro.hoare.obligations` — proof obligations, solver discharge and
  verification reports (the basis of the proof-effort metrics),
* :mod:`repro.hoare.verifier` — the combined acceptability verifier and the
  mapping from proofs to the paper's five semantic guarantees.
"""

from . import obligations, relational, unary, verifier
from .obligations import (
    ObligationCollector,
    ObligationKind,
    ObligationResult,
    ProofObligation,
    ProofSystem,
    VerificationReport,
    discharge,
)
from .relational import (
    DivergenceSpec,
    RelationalConfig,
    RelationalProofError,
    RelationalProver,
    prove_relaxed,
)
from .unary import (
    MissingInvariantError,
    UnarySystem,
    UnaryVCGenerator,
    UnsupportedStatementError,
    prove_intermediate,
    prove_original,
    prove_unary,
)
from .verifier import (
    AcceptabilityReport,
    AcceptabilitySpec,
    AcceptabilityVerifier,
    verify_acceptability,
)

__all__ = [
    "obligations",
    "relational",
    "unary",
    "verifier",
    "ObligationCollector",
    "ObligationKind",
    "ObligationResult",
    "ProofObligation",
    "ProofSystem",
    "VerificationReport",
    "discharge",
    "DivergenceSpec",
    "RelationalConfig",
    "RelationalProofError",
    "RelationalProver",
    "prove_relaxed",
    "MissingInvariantError",
    "UnarySystem",
    "UnaryVCGenerator",
    "UnsupportedStatementError",
    "prove_intermediate",
    "prove_original",
    "prove_unary",
    "AcceptabilityReport",
    "AcceptabilitySpec",
    "AcceptabilityVerifier",
    "verify_acceptability",
]
