"""Build and render forensic reports for failed proof obligations.

A failed VALIDITY obligation comes with a counterexample model (an integer
assignment to the formula's free symbols) found by the bounded model search;
a failed SATISFIABILITY obligation comes with none (the relaxation
predicate's denotation is empty).  Either way the obligation's provenance
(:class:`~repro.hoare.obligations.ObligationProvenance`) anchors the verdict
to a statement span in the program source.

Everything in a :class:`FailureDiagnostic` is plain data with a lossless
``as_dict``/``from_dict`` round-trip, so a diagnostics section embedded in a
``--json`` envelope can be replayed by ``repro explain --from-json`` without
re-running collection or the solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..hoare.obligations import ObligationKind, ObligationResult
from ..lang.ast import Program, Span
from ..logic.evaluate import EvaluationError, Valuation, evaluate
from ..logic.formula import (
    And,
    Atom,
    Divides,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Symbol,
    formula_arrays,
)
from ..solver.lia import Status

#: Quantifier evaluation domain half-width.  Covers both the bounded model
#: search radius (4) and the solver's quantifier witness radius (6), so a
#: model found by either re-evaluates the same way here.
DOMAIN_RADIUS = 8

#: Enumeration ceiling for quantifier evaluation: a formula whose nested
#: quantifier depth would force more than this many body evaluations is not
#: enumerated (the check falls back to grounding + a solver query instead).
ENUMERATION_BUDGET = 200_000


# ---------------------------------------------------------------------------
# Mechanical re-evaluation
# ---------------------------------------------------------------------------


def _model_valuation(
    model: Dict[Symbol, int], arrays: Sequence[Symbol] = ()
) -> Valuation:
    """The model as a valuation, optionally with all-zero array contents.

    Counterexample models assign integers to scalar symbols only (array
    reads are Ackermannised away inside the solver), so a formula reading an
    array cannot be evaluated from the model alone.  Extending the model
    with all-zero arrays is still sound for *confirming* a VALIDITY failure:
    false under any one concrete extension witnesses invalidity.
    """
    valuation = Valuation(scalars=dict(model))
    if arrays:
        domain = _model_domain(model)
        valuation.arrays = {
            array: {index: 0 for index in domain} for array in arrays
        }
    return valuation


def _model_domain(model: Dict[Symbol, int]) -> List[int]:
    """A finite quantifier domain wide enough to cover the model's values."""
    values = list(model.values()) or [0]
    low = min(min(values) - DOMAIN_RADIUS, -DOMAIN_RADIUS)
    high = max(max(values) + DOMAIN_RADIUS, DOMAIN_RADIUS)
    return list(range(low, high + 1))


def _quantifier_depth(formula: Formula) -> int:
    """Maximum quantifier nesting depth (enumeration cost exponent)."""
    if isinstance(formula, (Exists, Forall)):
        return 1 + _quantifier_depth(formula.body)
    if isinstance(formula, Not):
        return _quantifier_depth(formula.operand)
    if isinstance(formula, (And, Or)):
        return max((_quantifier_depth(op) for op in formula.operands), default=0)
    if isinstance(formula, Implies):
        return max(
            _quantifier_depth(formula.antecedent),
            _quantifier_depth(formula.consequent),
        )
    if isinstance(formula, Iff):
        return max(_quantifier_depth(formula.left), _quantifier_depth(formula.right))
    return 0


def _enumerable(formula: Formula, domain: List[int]) -> bool:
    depth = _quantifier_depth(formula)
    try:
        return len(domain) ** depth <= ENUMERATION_BUDGET
    except OverflowError:  # pragma: no cover - astronomically deep
        return False


def reevaluate(formula: Formula, model: Dict[Symbol, int]) -> Optional[bool]:
    """Evaluate ``formula`` under the counterexample ``model``.

    Returns ``None`` when the formula is not fully evaluable (a symbol the
    model does not assign, an array select, division by zero in a pruned
    branch, or quantifier nesting beyond :data:`ENUMERATION_BUDGET`) — the
    diagnostic then reports the atoms that *did* evaluate.
    """
    domain = _model_domain(model)
    if not _enumerable(formula, domain):
        return None
    try:
        return evaluate(formula, _model_valuation(model), domain)
    except EvaluationError:
        return None


def _zero_selects(node):
    """Interpret every array as all-zeros, syntactically.

    ``select(A, i)`` becomes ``0``; ``select(store(B, i, v), j)`` becomes
    ``ite(j == i, v, select(B, j))`` recursively.  The result contains no
    array reads, so the decision procedures apply without Ackermannisation
    (which cannot handle quantified indexes).
    """
    from ..logic.formula import Const, Ite, Rel, Select, Store, Term
    from ..logic.formula import Formula as FormulaBase

    if isinstance(node, tuple):
        return tuple(_zero_selects(part) for part in node)
    if isinstance(node, Select):
        index = _zero_selects(node.index)
        array = node.array
        if isinstance(array, Store):
            # Unfold one store layer: read-at-written-index, else recurse.
            return Ite(
                Atom(Rel.EQ, index, _zero_selects(array.index)),
                _zero_selects(array.value),
                _zero_selects(Select(array.array, node.index)),
            )
        return Const(0)
    if isinstance(node, (Symbol, Const)):
        return node
    if isinstance(node, (Term, FormulaBase)):
        return type(node)(
            *(_zero_selects(getattr(node, name)) for name in node._fields)
        )
    return node


def _solver_check(
    formula: Formula, model: Dict[Symbol, int]
) -> Tuple[Optional[bool], List[str]]:
    """Decide the grounded formula with the decision procedures.

    Substitutes the model's scalar assignment into the formula and asks the
    solver whether the resulting (scalar-closed) formula is satisfiable.
    UNSAT means the formula is false under the model for *every* choice of
    array contents — a confirmation stronger than pointwise evaluation.
    When that query is inconclusive (e.g. quantified array indexes defeat
    the Ackermann reduction), the arrays are interpreted as all-zeros
    syntactically and the query retried; returns ``(value, zero_arrays)``.
    """
    from ..logic.formula import Const
    from ..logic.subst import substitute
    from ..solver.interface import Solver

    grounded = substitute(
        formula, {symbol: Const(value) for symbol, value in model.items()}
    )
    try:
        result = Solver().check_sat(grounded)
    except Exception:  # pragma: no cover - defensive: diagnosis must not raise
        return None, []
    if result.status is Status.UNSAT:
        return False, []
    arrays = sorted(formula_arrays(grounded), key=str)
    if result.status is Status.SAT and not arrays:
        return True, []
    if not arrays:
        return None, []
    try:
        zeroed = _zero_selects(grounded)
        result = Solver().check_sat(zeroed)
    except Exception:  # pragma: no cover - defensive
        return None, []
    names = [str(array) for array in arrays]
    if result.status is Status.UNSAT:
        return False, names
    if result.status is Status.SAT:
        return True, names
    return None, []


def _reevaluate_with_arrays(
    formula: Formula, model: Dict[Symbol, int]
) -> Tuple[Optional[bool], List[str], str]:
    """The full mechanical-confirmation cascade for one counterexample.

    Returns ``(value, zero_arrays, method)``: direct enumeration first, then
    enumeration with zero-filled arrays (``zero_arrays`` names them), then
    grounding + solver query for formulas too deeply quantified to
    enumerate.  ``method`` records which check concluded (``""`` if none).
    """
    value = reevaluate(formula, model)
    if value is not None:
        return value, [], "evaluation"
    domain = _model_domain(model)
    arrays = sorted(formula_arrays(formula), key=str)
    if arrays and _enumerable(formula, domain):
        try:
            value = evaluate(formula, _model_valuation(model, arrays), domain)
            return value, [str(array) for array in arrays], "evaluation"
        except EvaluationError:
            pass
    value, zero_arrays = _solver_check(formula, model)
    if value is not None:
        return value, zero_arrays, "solver-substitution"
    return None, [], ""


def _atoms_of(formula: Formula, under_quantifier: bool = False):
    """Yield ``(atomic formula, under_quantifier)`` leaves, in syntax order."""
    if isinstance(formula, (Atom, Divides)):
        yield formula, under_quantifier
    elif isinstance(formula, Not):
        yield from _atoms_of(formula.operand, under_quantifier)
    elif isinstance(formula, (And, Or)):
        for operand in formula.operands:
            yield from _atoms_of(operand, under_quantifier)
    elif isinstance(formula, Implies):
        yield from _atoms_of(formula.antecedent, under_quantifier)
        yield from _atoms_of(formula.consequent, under_quantifier)
    elif isinstance(formula, Iff):
        yield from _atoms_of(formula.left, under_quantifier)
        yield from _atoms_of(formula.right, under_quantifier)
    elif isinstance(formula, (Exists, Forall)):
        yield from _atoms_of(formula.body, True)


@dataclass(frozen=True)
class AtomEvaluation:
    """One atomic subformula's value under the counterexample."""

    text: str
    value: Optional[bool]  # None: not evaluable under the model
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {"text": self.text, "value": self.value, "note": self.note}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "AtomEvaluation":
        return cls(
            text=str(payload.get("text", "")),
            value=payload.get("value"),  # type: ignore[arg-type]
            note=str(payload.get("note", "")),
        )


def evaluate_atoms(
    formula: Formula, model: Dict[Symbol, int]
) -> List[AtomEvaluation]:
    """Evaluate every atomic subformula of ``formula`` under ``model``.

    Atoms under a quantifier depend on the bound symbol and are reported
    unevaluated with a note; duplicated atoms are reported once.
    """
    valuation = _model_valuation(model)
    zero_arrays = _model_valuation(model, sorted(formula_arrays(formula), key=str))
    domain = _model_domain(model)
    evaluations: List[AtomEvaluation] = []
    seen = set()
    for atom, under_quantifier in _atoms_of(formula):
        text = str(atom)
        if text in seen:
            continue
        seen.add(text)
        if under_quantifier:
            evaluations.append(
                AtomEvaluation(text, None, "depends on a quantified symbol")
            )
            continue
        try:
            value = evaluate(atom, valuation, domain)
            evaluations.append(AtomEvaluation(text, bool(value)))
        except EvaluationError as error:
            try:
                value = evaluate(atom, zero_arrays, domain)
                evaluations.append(
                    AtomEvaluation(text, bool(value), "array cells assumed 0")
                )
            except EvaluationError:
                evaluations.append(AtomEvaluation(text, None, str(error)))
    return evaluations


# ---------------------------------------------------------------------------
# Source excerpts
# ---------------------------------------------------------------------------


def source_excerpt(source: str, span: Span, context: int = 2) -> str:
    """An annotated excerpt: numbered lines, markers on the spanned region."""
    lines = source.splitlines()
    first = max(1, span.line - context)
    last = min(len(lines), span.end_line + context)
    width = len(str(last))
    rendered: List[str] = []
    for number in range(first, last + 1):
        text = lines[number - 1]
        marker = ">" if span.line <= number <= span.end_line else " "
        rendered.append(f"{marker} {number:>{width}} | {text}")
        if span.line <= number <= span.end_line:
            start_col = span.column if number == span.line else 1
            end_col = span.end_column if number == span.end_line else len(text) + 1
            carets = " " * (start_col - 1) + "^" * max(1, end_col - start_col)
            rendered.append(f"  {' ' * width} | {carets}")
    return "\n".join(rendered)


# ---------------------------------------------------------------------------
# The diagnostic record
# ---------------------------------------------------------------------------


@dataclass
class FailureDiagnostic:
    """Everything needed to explain one undischarged obligation."""

    program: str = ""
    study: str = ""
    rule: str = ""
    system: str = ""
    kind: str = ""
    status: str = ""
    reason: str = ""
    description: str = ""
    statement: str = ""
    location: str = "unknown location"
    span: Optional[Dict[str, int]] = None
    sites: List[str] = field(default_factory=list)
    #: Counterexample assignment keyed by rendered symbol name (``x<o>``).
    model: Dict[str, int] = field(default_factory=dict)
    atoms: List[AtomEvaluation] = field(default_factory=list)
    formula_text: str = ""
    #: The formula's value re-evaluated under the model — ``False`` confirms
    #: the counterexample mechanically; ``None`` when not fully evaluable.
    formula_value: Optional[bool] = None
    #: Array symbols whose cells were assumed 0 during re-evaluation (the
    #: model assigns scalars only; any concrete extension that falsifies a
    #: VALIDITY obligation is a genuine witness).
    zero_arrays: List[str] = field(default_factory=list)
    #: How ``formula_value`` was established: ``"evaluation"`` (bounded
    #: enumeration), ``"solver-substitution"`` (model grounded into the
    #: formula, decided by the solver), or ``""`` (not established).
    check_method: str = ""
    excerpt: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "program": self.program,
            "study": self.study,
            "rule": self.rule,
            "system": self.system,
            "kind": self.kind,
            "status": self.status,
            "reason": self.reason,
            "description": self.description,
            "statement": self.statement,
            "location": self.location,
            "span": dict(self.span) if self.span is not None else None,
            "sites": list(self.sites),
            "model": dict(self.model),
            "atoms": [atom.as_dict() for atom in self.atoms],
            "formula_text": self.formula_text,
            "formula_value": self.formula_value,
            "zero_arrays": list(self.zero_arrays),
            "check_method": self.check_method,
            "excerpt": self.excerpt,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FailureDiagnostic":
        span = payload.get("span")
        return cls(
            program=str(payload.get("program", "")),
            study=str(payload.get("study", "")),
            rule=str(payload.get("rule", "")),
            system=str(payload.get("system", "")),
            kind=str(payload.get("kind", "")),
            status=str(payload.get("status", "")),
            reason=str(payload.get("reason", "")),
            description=str(payload.get("description", "")),
            statement=str(payload.get("statement", "")),
            location=str(payload.get("location", "unknown location")),
            span=dict(span) if isinstance(span, dict) else None,
            sites=[str(site) for site in payload.get("sites", [])],
            model={
                str(name): int(value)
                for name, value in dict(payload.get("model", {})).items()
            },
            atoms=[
                AtomEvaluation.from_dict(entry)
                for entry in payload.get("atoms", [])
                if isinstance(entry, dict)
            ],
            formula_text=str(payload.get("formula_text", "")),
            formula_value=payload.get("formula_value"),  # type: ignore[arg-type]
            zero_arrays=[str(name) for name in payload.get("zero_arrays", [])],
            check_method=str(payload.get("check_method", "")),
            excerpt=str(payload.get("excerpt", "")),
        )

    def attribution(self) -> Dict[str, object]:
        """The compact failure-attribution record (explorer candidates).

        A subset of :meth:`as_dict` that names *what* failed and *where*
        without the full forensic payload (no excerpt or atom table).
        """
        return {
            "rule": self.rule,
            "system": self.system,
            "kind": self.kind,
            "status": self.status,
            "reason": self.reason,
            "statement": self.statement,
            "location": self.location,
            "sites": list(self.sites),
            "model": dict(self.model),
        }

    def render(self) -> str:
        """The forensic text block for one failure."""
        header = f"{self.status.upper()} obligation [{self.rule}] in {self.program!r}"
        if self.study and self.study != self.program:
            header += f" (study {self.study})"
        lines = [header]
        lines.append(f"  system    : {self.system} ({self.kind})")
        lines.append(f"  what      : {self.description}")
        if self.statement:
            lines.append(f"  statement : {self.statement}")
        lines.append(f"  location  : {self.location}")
        if self.sites:
            lines.append(f"  sites     : {', '.join(self.sites)}")
        if self.reason:
            lines.append(f"  reason    : {self.reason}")
        if self.excerpt:
            lines.append("  source:")
            for excerpt_line in self.excerpt.splitlines():
                lines.append(f"    {excerpt_line}")
        if self.model:
            lines.append("  counterexample (concrete assignment):")
            for name in sorted(self.model):
                lines.append(f"    {name} = {self.model[name]}")
        elif self.kind == ObligationKind.SATISFIABILITY.value and self.status == "unsat":
            lines.append(
                "  the relaxation predicate admits no assignment: "
                "the relaxed statement's denotation is empty"
            )
        if self.atoms:
            lines.append("  atom evaluation under the counterexample:")
            for atom in self.atoms:
                if atom.value is None:
                    mark = "?"
                    suffix = f"  ({atom.note})" if atom.note else ""
                else:
                    mark = "T" if atom.value else "F"
                    suffix = ""
                lines.append(f"    [{mark}] {atom.text}{suffix}")
        if self.zero_arrays:
            lines.append(
                "  array contents are not part of the model; cells of "
                f"{', '.join(self.zero_arrays)} assumed 0 (any concrete "
                "extension that falsifies the formula is a genuine witness)"
            )
        if self.formula_value is False:
            how = (
                "model substituted into the formula, refuted by the solver"
                if self.check_method == "solver-substitution"
                else "re-evaluates to false under the model"
            )
            lines.append(
                f"  formula {how} (counterexample confirmed mechanically)"
            )
        elif self.formula_value is True:
            lines.append(
                "  WARNING: formula re-evaluates to true under the model "
                "(evaluation domain may be too narrow)"
            )
        elif self.model:
            lines.append(
                "  formula could not be re-checked under the model "
                "(arrays, quantifier depth, or an inconclusive solver query)"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------


def diagnose_result(
    result: ObligationResult, program: Optional[Program] = None
) -> Optional[FailureDiagnostic]:
    """Build a diagnostic for an undischarged result (``None`` if discharged)."""
    if result.discharged:
        return None
    obligation = result.obligation
    provenance = obligation.provenance
    diagnostic = FailureDiagnostic(
        rule=obligation.rule,
        system=obligation.system.value,
        kind=obligation.kind.value,
        status=result.status.value,
        reason=result.reason,
        description=obligation.description,
        statement=obligation.statement,
        formula_text=str(obligation.formula),
    )
    source: Optional[str] = None
    if provenance is not None:
        diagnostic.program = provenance.program
        diagnostic.study = provenance.study
        diagnostic.sites = list(provenance.sites)
        diagnostic.location = provenance.location()
        if provenance.span is not None:
            diagnostic.span = provenance.span.as_dict()
        source = provenance.source
        if not diagnostic.statement:
            diagnostic.statement = provenance.statement
    if program is not None:
        if not diagnostic.program:
            diagnostic.program = program.name
        if source is None:
            source = program.source
    if source is not None and provenance is not None and provenance.span is not None:
        diagnostic.excerpt = source_excerpt(source, provenance.span)
    if result.counterexample:
        model: Dict[Symbol, int] = dict(result.counterexample)
        diagnostic.model = {str(symbol): value for symbol, value in model.items()}
        diagnostic.atoms = evaluate_atoms(obligation.formula, model)
        (
            diagnostic.formula_value,
            diagnostic.zero_arrays,
            diagnostic.check_method,
        ) = _reevaluate_with_arrays(obligation.formula, model)
    return diagnostic


def diagnose_report(report, program: Optional[Program] = None) -> List[FailureDiagnostic]:
    """Diagnostics for every undischarged obligation of a report.

    Accepts either a single-layer
    :class:`~repro.hoare.obligations.VerificationReport` or a combined
    :class:`~repro.hoare.verifier.AcceptabilityReport`.
    """
    layers = (
        [report.original, report.relaxed]
        if hasattr(report, "original") and hasattr(report, "relaxed")
        else [report]
    )
    diagnostics: List[FailureDiagnostic] = []
    for layer in layers:
        for result in layer.undischarged():
            diagnostic = diagnose_result(result, program)
            if diagnostic is not None:
                diagnostics.append(diagnostic)
    return diagnostics


def render_diagnostics(diagnostics: Sequence[FailureDiagnostic]) -> str:
    """Render a sequence of diagnostics as one separated report."""
    if not diagnostics:
        return "no failures to explain: every obligation discharged"
    blocks = [diagnostic.render() for diagnostic in diagnostics]
    return "\n\n".join(blocks)
