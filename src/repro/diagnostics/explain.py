"""The ``repro explain`` driver: replay a failing relaxation and explain it.

Three entry points, all built on :mod:`repro.diagnostics.report`:

* :func:`explain_case_study` — apply named relaxation sites to a registered
  case study, verify the transformed program (optionally through an engine,
  so ``--cache-dir`` replays answered obligations with zero solver calls),
  and diagnose every undischarged obligation;
* :func:`explain_from_payload` — replay the ``diagnostics`` section of a
  ``--json`` report envelope (written by ``--explain``) without re-running
  the solver at all;
* :func:`batch_diagnostics` / :func:`report_diagnostics` — failure
  attribution for ``verify-batch --explain`` and the explorer's
  per-candidate ``failures`` entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..casestudies import resolve_case_study
from ..hoare.obligations import discharge
from ..hoare.verifier import AcceptabilityReport, AcceptabilityVerifier
from ..relaxations.sites import apply_site
from .report import FailureDiagnostic, diagnose_report, render_diagnostics


@dataclass
class ExplainReport:
    """The structured outcome of one ``repro explain`` invocation."""

    study: str
    program: str
    sites: Tuple[str, ...] = ()
    verified: bool = False
    diagnostics: List[FailureDiagnostic] = field(default_factory=list)
    replayed: bool = False  # True when rebuilt from a --json envelope

    def as_dict(self) -> Dict[str, object]:
        return {
            "study": self.study,
            "program": self.program,
            "sites": list(self.sites),
            "verified": self.verified,
            "replayed": self.replayed,
            "diagnostics": [diag.as_dict() for diag in self.diagnostics],
        }

    def render(self) -> str:
        header = [f"=== failure forensics: {self.program or self.study} ==="]
        if self.study and self.study != self.program:
            header.append(f"case study : {self.study}")
        if self.sites:
            header.append(f"applied sites : {', '.join(self.sites)}")
        if self.replayed:
            header.append("(replayed from a recorded report envelope)")
        if self.verified:
            header.append("verdict    : VERIFIED — no failures to explain")
            return "\n".join(header)
        header.append(
            f"verdict    : NOT VERIFIED — {len(self.diagnostics)} "
            f"undischarged obligation(s)"
        )
        return "\n".join(header) + "\n\n" + render_diagnostics(self.diagnostics)


def explain_case_study(
    name: str,
    site_ids: Sequence[str] = (),
    solver=None,
    engine=None,
) -> ExplainReport:
    """Apply ``site_ids`` to a case study, verify, and diagnose failures.

    Sites are applied in order, re-discovering the site space after each
    transformation (exactly as the explorer composes them); an identifier
    that does not resolve raises :class:`ValueError` listing the sites that
    are currently applicable.  When ``engine`` carries a persistent cache,
    previously answered obligations replay from disk with no solver calls —
    including their stored counterexample models.
    """
    case = resolve_case_study(name)
    program = case.build_program()
    applied: List[str] = []
    for site_id in site_ids:
        available = {site.site_id: site for site in case.relaxation_sites(program)}
        if site_id not in available:
            raise ValueError(
                f"unknown relaxation site {site_id!r} for case study "
                f"{case.name!r} (after applying {applied or 'no sites'}); "
                f"applicable sites: {', '.join(sorted(available)) or 'none'}"
            )
        program = apply_site(program, available[site_id]).program
        applied.append(site_id)

    spec = case.acceptability_spec(program)
    verifier = AcceptabilityVerifier(solver=solver, engine=engine)
    bundle = verifier.collect(program, spec, study=case.name, sites=tuple(applied))
    original = discharge(
        bundle.original, verifier.solver, bundle.program_name, engine=engine
    )
    relaxed = discharge(
        bundle.relaxed, verifier.solver, bundle.program_name, engine=engine
    )
    report = AcceptabilityReport(
        program_name=bundle.program_name, original=original, relaxed=relaxed
    )
    return ExplainReport(
        study=case.name,
        program=bundle.program_name,
        sites=tuple(applied),
        verified=report.verified,
        diagnostics=diagnose_report(report, program=bundle.program),
    )


def explain_from_payload(payload: Dict[str, object]) -> ExplainReport:
    """Rebuild an :class:`ExplainReport` from a recorded ``--json`` envelope.

    Accepts any payload carrying a ``diagnostics`` section (``explain
    --json``, ``verify-batch --explain --json``, ``verify-case-study
    --explain --json``); the diagnostics round-trip losslessly, so the
    rendered report is identical to the original run's — no solver needed.
    """
    if not isinstance(payload, dict):
        raise ValueError("report envelope must be a JSON object")
    section = payload.get("diagnostics")
    if section is None:
        raise ValueError(
            "report envelope has no 'diagnostics' section; re-run the "
            "producing command with --explain (or use 'repro explain')"
        )
    if not isinstance(section, list):
        raise ValueError("'diagnostics' section must be a list")
    diagnostics = [FailureDiagnostic.from_dict(entry) for entry in section]
    study = str(payload.get("study") or payload.get("name") or "")
    program = str(payload.get("program") or study)
    sites = tuple(str(site) for site in payload.get("sites", ()) or ())
    return ExplainReport(
        study=study,
        program=program,
        sites=sites,
        verified=bool(payload.get("verified", not diagnostics)),
        diagnostics=diagnostics,
        replayed=True,
    )


def report_diagnostics(report, program=None) -> List[FailureDiagnostic]:
    """Diagnostics for one acceptability (or single-layer) report."""
    return diagnose_report(report, program=program)


def batch_diagnostics(batch_report) -> List[FailureDiagnostic]:
    """Diagnostics for every failed program of a ``verify-batch`` report."""
    diagnostics: List[FailureDiagnostic] = []
    for result in batch_report.programs:
        if result.report is None or result.verified:
            continue
        diagnostics.extend(
            diagnose_report(result.report, program=result.program)
        )
    return diagnostics


def diagnostics_section(
    diagnostics: Sequence[FailureDiagnostic],
) -> List[Dict[str, object]]:
    """The JSON shape of the envelope's ``diagnostics`` section."""
    return [diag.as_dict() for diag in diagnostics]
