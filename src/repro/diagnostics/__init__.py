"""Failure forensics: source-anchored diagnostics for failed obligations.

This package turns an undischarged proof obligation into an explanation a
developer can act on: the counterexample model printed as concrete variable
assignments, evaluated atom-by-atom against the violated formula, anchored
to an annotated excerpt of the offending source statement, and attributed
to the relaxation site(s) that produced the program under verification.

Entry points
------------
* :func:`diagnose_result` / :func:`diagnose_report` — build
  :class:`FailureDiagnostic` objects from verification results;
* :func:`render_diagnostics` — the human-readable forensic report;
* :func:`reevaluate` — mechanically re-check that the counterexample
  falsifies the obligation formula;
* :mod:`repro.diagnostics.explain` — the ``repro explain`` driver
  (seeded failing relaxations, envelope replay, explorer attribution).
"""

from .explain import (
    ExplainReport,
    batch_diagnostics,
    diagnostics_section,
    explain_case_study,
    explain_from_payload,
    report_diagnostics,
)
from .report import (
    AtomEvaluation,
    FailureDiagnostic,
    diagnose_report,
    diagnose_result,
    reevaluate,
    render_diagnostics,
    source_excerpt,
)

__all__ = [
    "AtomEvaluation",
    "ExplainReport",
    "FailureDiagnostic",
    "batch_diagnostics",
    "diagnose_report",
    "diagnose_result",
    "diagnostics_section",
    "explain_case_study",
    "explain_from_payload",
    "reevaluate",
    "render_diagnostics",
    "report_diagnostics",
    "source_excerpt",
]
