"""Linear integer terms and atom canonicalisation.

The decision procedures work over *linear* terms: integer-coefficient linear
combinations of symbols plus a constant.  This module converts formula terms
into :class:`LinearTerm` values (raising :class:`NonLinearError` when a term
is genuinely non-linear, e.g. the product of two variables) and provides the
canonical atom forms used by Cooper's quantifier elimination:

* ``0 < t``  — a strict inequality with the term on the right,
* ``d | t``  — divisibility of a linear term by a positive constant,
* negated divisibility.

Equalities and disequalities are rewritten into strict inequalities during
canonicalisation (over the integers ``a = b`` iff ``a < b + 1 && b < a + 1``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from ..logic.formula import (
    Add,
    Const,
    Div,
    Max,
    Min,
    Mod,
    Mul,
    Select,
    Store,
    Sub,
    SymTerm,
    Symbol,
    Term,
    Ite,
)


class NonLinearError(Exception):
    """Raised when a term cannot be expressed as a linear combination."""


@dataclass(frozen=True)
class LinearTerm:
    """An integer linear combination ``sum(coeffs[s] * s) + constant``.

    Coefficient maps never contain zero entries, so structural equality of
    two :class:`LinearTerm` values coincides with semantic equality of the
    linear functions they denote.
    """

    coeffs: Tuple[Tuple[Symbol, int], ...]
    constant: int = 0

    @staticmethod
    def of(coeffs: Mapping[Symbol, int], constant: int = 0) -> "LinearTerm":
        cleaned = tuple(sorted(((s, c) for s, c in coeffs.items() if c != 0)))
        return LinearTerm(cleaned, constant)

    @staticmethod
    def constant_term(value: int) -> "LinearTerm":
        return LinearTerm((), value)

    @staticmethod
    def variable(symbol: Symbol, coefficient: int = 1) -> "LinearTerm":
        if coefficient == 0:
            return LinearTerm((), 0)
        return LinearTerm(((symbol, coefficient),), 0)

    # -- accessors -----------------------------------------------------------

    def coefficient(self, symbol: Symbol) -> int:
        for sym, coeff in self.coeffs:
            if sym == symbol:
                return coeff
        return 0

    def symbols(self) -> FrozenSet[Symbol]:
        return frozenset(sym for sym, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def as_dict(self) -> Dict[Symbol, int]:
        return dict(self.coeffs)

    # -- arithmetic ----------------------------------------------------------

    def add(self, other: "LinearTerm") -> "LinearTerm":
        coeffs = self.as_dict()
        for sym, coeff in other.coeffs:
            coeffs[sym] = coeffs.get(sym, 0) + coeff
        return LinearTerm.of(coeffs, self.constant + other.constant)

    def negate(self) -> "LinearTerm":
        return LinearTerm.of({s: -c for s, c in self.coeffs}, -self.constant)

    def subtract(self, other: "LinearTerm") -> "LinearTerm":
        return self.add(other.negate())

    def scale(self, factor: int) -> "LinearTerm":
        if factor == 0:
            return LinearTerm((), 0)
        return LinearTerm.of({s: c * factor for s, c in self.coeffs}, self.constant * factor)

    def drop(self, symbol: Symbol) -> "LinearTerm":
        """Remove ``symbol`` from the combination (coefficient becomes 0)."""
        return LinearTerm.of({s: c for s, c in self.coeffs if s != symbol}, self.constant)

    def substitute(self, symbol: Symbol, replacement: "LinearTerm") -> "LinearTerm":
        """Replace ``symbol`` with another linear term."""
        coeff = self.coefficient(symbol)
        if coeff == 0:
            return self
        return self.drop(symbol).add(replacement.scale(coeff))

    def evaluate(self, assignment: Mapping[Symbol, int]) -> int:
        total = self.constant
        for sym, coeff in self.coeffs:
            if sym not in assignment:
                raise KeyError(f"no value for {sym}")
            total += coeff * assignment[sym]
        return total

    def content(self) -> int:
        """The gcd of all coefficients (not the constant); 0 for constants."""
        result = 0
        for _sym, coeff in self.coeffs:
            result = gcd(result, abs(coeff))
        return result

    def to_term(self) -> Term:
        """Convert back to a formula term (for pretty-printing results)."""
        result: Optional[Term] = None
        for sym, coeff in self.coeffs:
            part: Term
            if coeff == 1:
                part = SymTerm(sym)
            else:
                part = Mul(Const(coeff), SymTerm(sym))
            result = part if result is None else Add(result, part)
        if result is None:
            return Const(self.constant)
        if self.constant != 0:
            result = Add(result, Const(self.constant))
        return result

    def __str__(self) -> str:
        parts = []
        for sym, coeff in self.coeffs:
            if coeff == 1:
                parts.append(str(sym))
            elif coeff == -1:
                parts.append(f"-{sym}")
            else:
                parts.append(f"{coeff}*{sym}")
        if self.constant != 0 or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts)


ZERO = LinearTerm((), 0)
ONE = LinearTerm((), 1)


def linearize(term: Term) -> LinearTerm:
    """Convert a formula term into a :class:`LinearTerm`.

    Raises :class:`NonLinearError` for products of non-constant terms,
    division/modulo, min/max, if-then-else and array reads — those must be
    eliminated by :mod:`repro.solver.normalize` before linearisation.
    """
    if isinstance(term, Const):
        return LinearTerm.constant_term(term.value)
    if isinstance(term, SymTerm):
        return LinearTerm.variable(term.symbol)
    if isinstance(term, Add):
        return linearize(term.left).add(linearize(term.right))
    if isinstance(term, Sub):
        return linearize(term.left).subtract(linearize(term.right))
    if isinstance(term, Mul):
        left = linearize(term.left)
        right = linearize(term.right)
        if left.is_constant():
            return right.scale(left.constant)
        if right.is_constant():
            return left.scale(right.constant)
        raise NonLinearError(f"non-linear product {term}")
    if isinstance(term, (Div, Mod, Min, Max, Ite, Select, Store)):
        raise NonLinearError(f"term {term} must be eliminated before linearisation")
    raise TypeError(f"unknown term {term!r}")


def is_linear(term: Term) -> bool:
    """Return True iff :func:`linearize` succeeds for ``term``."""
    try:
        linearize(term)
        return True
    except NonLinearError:
        return False
