"""Cooper's quantifier elimination for Presburger arithmetic.

This is the complete backend of the solver: given a formula of linear
integer arithmetic with arbitrary quantifiers, :func:`eliminate_quantifiers`
produces an equivalent quantifier-free formula, and :func:`decide_closed`
decides a sentence (a formula with no free symbols).

The implementation follows the textbook presentation (e.g. Harrison,
"Handbook of Practical Logic and Automated Reasoning", §5.7):

* normalise the matrix so every atom containing the quantified variable has
  the variable with coefficient ``+1`` or ``-1`` (introducing a divisibility
  constraint for the coefficient lcm),
* build the "minus-infinity" variant of the matrix and the set of lower
  bounds ``B``,
* replace ``exists x . phi(x)`` by the finite disjunction over the test
  points ``j`` and ``b + j`` for ``j in 1..D`` and ``b in B`` where ``D`` is
  the lcm of the divisibility divisors.

Cooper's algorithm is exponential; the primary solver pipeline avoids it
whenever possible (skolemisation + cube solving) and uses this module for
universally quantified subformulas and as a cross-checking oracle in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic.formula import (
    And,
    Atom,
    Const,
    Divides,
    Exists,
    FALSE,
    FalseF,
    Forall,
    Formula,
    Not,
    Or,
    Rel,
    Symbol,
    TRUE,
    TrueF,
    conj,
    disj,
    neg,
)
from .linear import LinearTerm, NonLinearError, linearize
from .normalize import to_nnf


class QuantifierEliminationError(Exception):
    """Raised when a formula cannot be handled by Cooper's algorithm
    (non-linear atoms or unexpected structure)."""


def _lcm(a: int, b: int) -> int:
    return abs(a * b) // gcd(a, b) if a and b else max(abs(a), abs(b), 1)


# ---------------------------------------------------------------------------
# Internal representation: formulas whose atoms are canonical linear atoms.
#
# During elimination of a variable x we represent atoms as one of
#   ("lt", t)      meaning 0 < t          (t is a LinearTerm, may contain x)
#   ("div", d, t)  meaning d | t
#   ("ndiv", d, t) meaning not (d | t)
# Other formulas (not containing x) are kept opaque.
# ---------------------------------------------------------------------------


def _canonicalize_atom(formula: Formula, symbol: Symbol) -> Formula:
    """Rewrite an atom so that, if it mentions ``symbol``, it is a strict
    ``0 < t`` inequality or a (possibly negated) divisibility atom."""
    if isinstance(formula, Atom):
        lin = linearize(formula.left).subtract(linearize(formula.right))
        if lin.coefficient(symbol) == 0:
            return formula
        rel = formula.rel
        if rel is Rel.LT:  # lin < 0  <=>  0 < -lin
            return _lt_atom(lin.negate())
        if rel is Rel.LE:  # lin <= 0  <=>  0 < 1 - lin
            return _lt_atom(lin.negate().add(LinearTerm.constant_term(1)))
        if rel is Rel.GT:  # lin > 0  <=>  0 < lin
            return _lt_atom(lin)
        if rel is Rel.GE:  # lin >= 0  <=>  0 < lin + 1
            return _lt_atom(lin.add(LinearTerm.constant_term(1)))
        if rel is Rel.EQ:  # lin == 0  <=>  0 < lin + 1  and  0 < 1 - lin
            return conj(
                _lt_atom(lin.add(LinearTerm.constant_term(1))),
                _lt_atom(lin.negate().add(LinearTerm.constant_term(1))),
            )
        if rel is Rel.NE:  # lin != 0  <=>  0 < lin  or  0 < -lin
            return disj(_lt_atom(lin), _lt_atom(lin.negate()))
        raise AssertionError(f"unhandled relation {rel}")
    return formula


def _lt_atom(term: LinearTerm) -> Formula:
    """Build the canonical atom ``0 < term``."""
    return Atom(Rel.LT, Const(0), term.to_term())


def _atom_linear(formula: Atom) -> LinearTerm:
    """For a canonical ``0 < t`` atom, return ``t`` as a linear term."""
    return linearize(formula.right).subtract(linearize(formula.left))


def _walk_canonical(formula: Formula, symbol: Symbol, handler) -> Formula:
    """Map ``handler`` over the atoms of an NNF formula (leaves only)."""
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Atom):
        return handler(formula)
    if isinstance(formula, Divides):
        return handler(formula)
    if isinstance(formula, Not) and isinstance(formula.operand, Divides):
        return handler(formula)
    if isinstance(formula, And):
        return conj(*[_walk_canonical(op, symbol, handler) for op in formula.operands])
    if isinstance(formula, Or):
        return disj(*[_walk_canonical(op, symbol, handler) for op in formula.operands])
    raise QuantifierEliminationError(f"unexpected formula in NNF matrix: {formula}")


def _coefficient_lcm(formula: Formula, symbol: Symbol) -> int:
    """LCM of the absolute coefficients of ``symbol`` in the matrix atoms."""
    result = 1

    def visit(f: Formula) -> None:
        nonlocal result
        if isinstance(f, Atom):
            lin = linearize(f.left).subtract(linearize(f.right))
            coeff = lin.coefficient(symbol)
            if coeff != 0:
                result = _lcm(result, abs(coeff))
        elif isinstance(f, Divides):
            lin = linearize(f.term)
            coeff = lin.coefficient(symbol)
            if coeff != 0:
                result = _lcm(result, abs(coeff))
        elif isinstance(f, Not) and isinstance(f.operand, Divides):
            visit(f.operand)
        elif isinstance(f, (And, Or)):
            for op in f.operands:
                visit(op)

    visit(formula)
    return result


def _scale_to_unit(formula: Formula, symbol: Symbol, delta: int) -> Formula:
    """Multiply atoms so the coefficient of ``symbol`` becomes ``+/-delta``,
    then substitute ``y = delta * symbol`` so the coefficient is ``+/-1``."""

    def handler(atom: Formula) -> Formula:
        if isinstance(atom, Atom):
            lin = _atom_linear_any(atom)
            coeff = lin.coefficient(symbol)
            if coeff == 0:
                return atom
            factor = delta // abs(coeff)
            scaled = lin.scale(factor)
            # After scaling, the coefficient of symbol is +/-delta; reinterpret
            # delta*symbol as the new unit variable (coefficient +/-1).
            new_coeffs = dict(scaled.coeffs)
            new_coeffs[symbol] = 1 if coeff > 0 else -1
            return _lt_atom(LinearTerm.of(new_coeffs, scaled.constant))
        if isinstance(atom, Divides):
            lin = linearize(atom.term)
            coeff = lin.coefficient(symbol)
            if coeff == 0:
                return atom
            factor = delta // abs(coeff)
            scaled = lin.scale(factor)
            new_coeffs = dict(scaled.coeffs)
            new_coeffs[symbol] = 1 if coeff > 0 else -1
            return Divides(atom.divisor * factor, LinearTerm.of(new_coeffs, scaled.constant).to_term())
        if isinstance(atom, Not) and isinstance(atom.operand, Divides):
            inner = handler(atom.operand)
            return Not(inner)
        raise AssertionError(f"unexpected atom {atom!r}")

    return _walk_canonical(formula, symbol, handler)


def _atom_linear_any(atom: Atom) -> LinearTerm:
    """Linear form of an arbitrary canonical ``0 < t`` atom."""
    return linearize(atom.right).subtract(linearize(atom.left))


def _minus_infinity(formula: Formula, symbol: Symbol) -> Formula:
    """The formula with lower-bound atoms replaced by false and upper bounds by true."""

    def handler(atom: Formula) -> Formula:
        if isinstance(atom, Atom):
            lin = _atom_linear_any(atom)
            coeff = lin.coefficient(symbol)
            if coeff == 0:
                return atom
            # 0 < symbol + t  (coeff +1): as symbol -> -infinity this is false.
            # 0 < -symbol + t (coeff -1): as symbol -> -infinity this is true.
            return FALSE if coeff > 0 else TRUE
        return atom

    return _walk_canonical(formula, symbol, handler)


def _lower_bounds(formula: Formula, symbol: Symbol) -> List[LinearTerm]:
    """Collect the lower-bound terms b such that an atom ``b < symbol`` occurs.

    For a canonical atom ``0 < symbol + t`` the bound is ``b = -t``.
    """
    bounds: List[LinearTerm] = []

    def visit(f: Formula) -> None:
        if isinstance(f, Atom):
            lin = _atom_linear_any(f)
            coeff = lin.coefficient(symbol)
            if coeff > 0:
                bounds.append(lin.drop(symbol).negate())
        elif isinstance(f, (And, Or)):
            for op in f.operands:
                visit(op)

    visit(formula)
    unique: List[LinearTerm] = []
    for bound in bounds:
        if bound not in unique:
            unique.append(bound)
    return unique


def _divisor_lcm(formula: Formula, symbol: Symbol) -> int:
    result = 1

    def visit(f: Formula) -> None:
        nonlocal result
        if isinstance(f, Divides):
            lin = linearize(f.term)
            if lin.coefficient(symbol) != 0:
                result = _lcm(result, abs(f.divisor))
        elif isinstance(f, Not) and isinstance(f.operand, Divides):
            visit(f.operand)
        elif isinstance(f, (And, Or)):
            for op in f.operands:
                visit(op)

    visit(formula)
    return result


def _substitute_linear(formula: Formula, symbol: Symbol, value: LinearTerm) -> Formula:
    """Substitute a linear term for ``symbol`` in every canonical atom."""

    def handler(atom: Formula) -> Formula:
        if isinstance(atom, Atom):
            lin = _atom_linear_any(atom)
            if lin.coefficient(symbol) == 0:
                return atom
            substituted = lin.substitute(symbol, value)
            if substituted.is_constant():
                return TRUE if substituted.constant > 0 else FALSE
            return _lt_atom(substituted)
        if isinstance(atom, Divides):
            lin = linearize(atom.term)
            if lin.coefficient(symbol) == 0:
                return atom
            substituted = lin.substitute(symbol, value)
            if substituted.is_constant():
                return TRUE if substituted.constant % atom.divisor == 0 else FALSE
            return Divides(atom.divisor, substituted.to_term())
        if isinstance(atom, Not) and isinstance(atom.operand, Divides):
            inner = handler(atom.operand)
            return neg(inner)
        raise AssertionError(f"unexpected atom {atom!r}")

    return _walk_canonical(formula, symbol, handler)


def eliminate_exists(symbol: Symbol, matrix: Formula) -> Formula:
    """Eliminate ``exists symbol`` from an NNF, quantifier-free matrix."""
    # 1. Canonicalise atoms mentioning the symbol.
    canonical = _walk_canonical(
        to_nnf(matrix), symbol, lambda atom: _canonicalize_atom(atom, symbol)
    )
    canonical = to_nnf(canonical)
    # 2. Make the coefficient of the symbol +/-1.
    delta = _coefficient_lcm(canonical, symbol)
    scaled = _scale_to_unit(canonical, symbol, delta)
    if delta > 1:
        scaled = conj(scaled, Divides(delta, LinearTerm.variable(symbol).to_term()))
    # 3. Build the minus-infinity formula, lower bounds and divisor lcm.
    minus_inf = _minus_infinity(scaled, symbol)
    bounds = _lower_bounds(scaled, symbol)
    big_d = _divisor_lcm(scaled, symbol)
    # 4. Finite disjunction over test points.
    disjuncts: List[Formula] = []
    for j in range(1, big_d + 1):
        disjuncts.append(_substitute_linear(minus_inf, symbol, LinearTerm.constant_term(j)))
    for bound in bounds:
        for j in range(1, big_d + 1):
            point = bound.add(LinearTerm.constant_term(j))
            disjuncts.append(_substitute_linear(scaled, symbol, point))
    return disj(*disjuncts)


def eliminate_quantifiers(formula: Formula) -> Formula:
    """Eliminate all quantifiers from a linear-arithmetic formula."""
    if isinstance(formula, (TrueF, FalseF, Atom, Divides)):
        return formula
    if isinstance(formula, Not):
        return neg(eliminate_quantifiers(formula.operand))
    if isinstance(formula, And):
        return conj(*[eliminate_quantifiers(op) for op in formula.operands])
    if isinstance(formula, Or):
        return disj(*[eliminate_quantifiers(op) for op in formula.operands])
    if isinstance(formula, Exists):
        body = eliminate_quantifiers(formula.body)
        try:
            return eliminate_exists(formula.symbol, body)
        except NonLinearError as error:
            raise QuantifierEliminationError(str(error)) from error
    if isinstance(formula, Forall):
        body = eliminate_quantifiers(formula.body)
        try:
            return neg(eliminate_exists(formula.symbol, to_nnf(neg(body))))
        except NonLinearError as error:
            raise QuantifierEliminationError(str(error)) from error
    # Implies / Iff: convert via NNF first.
    return eliminate_quantifiers(to_nnf(formula))


def decide_closed(formula: Formula) -> bool:
    """Decide a Presburger sentence (all symbols quantified)."""
    from ..logic.evaluate import Valuation, evaluate
    from ..logic.formula import free_symbols

    eliminated = eliminate_quantifiers(formula)
    remaining = free_symbols(eliminated)
    if remaining:
        raise QuantifierEliminationError(
            f"formula is not closed; free symbols remain: {sorted(map(str, remaining))}"
        )
    return evaluate(eliminated, Valuation())
