"""Formula normalisation passes used by the decision procedures.

The pipeline applied by :class:`repro.solver.interface.Solver` is:

1. :func:`eliminate_compound_terms` — remove ``min`` / ``max`` /
   ``if-then-else`` terms (by case splits) and constant-divisor ``div`` /
   ``mod`` terms (by introducing existentially quantified quotients, which is
   sound in any polarity because the quotient is uniquely determined).
2. :func:`ackermannize` — replace array ``select`` terms over symbolic
   arrays with fresh integer symbols plus functional-consistency constraints
   (Ackermann's reduction), valid because our obligations never store into
   arrays after weakest-precondition expansion.
3. :func:`to_nnf` — negation normal form, expanding ``==>`` and ``<=>``.
4. :func:`strip_positive_existentials` — skolemise top-level existential
   quantifiers of a satisfiability query by renaming the bound variables to
   fresh free symbols.
5. :func:`to_dnf` — disjunctive normal form (with a size cap), after which
   each cube is decided by the linear-arithmetic core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..logic.formula import (
    Add,
    And,
    Atom,
    Const,
    Div,
    Divides,
    Exists,
    FALSE,
    FalseF,
    Forall,
    Formula,
    FreshSymbols,
    Iff,
    Implies,
    Ite,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Rel,
    Select,
    Store,
    Sub,
    SymTerm,
    Symbol,
    TRUE,
    Term,
    TrueF,
    conj,
    disj,
    exists,
    free_symbols,
    neg,
)
from ..logic.subst import substitute
from ..logic.traverse import iter_nodes, map_atom_terms, replace_node


class UnsupportedFormulaError(Exception):
    """Raised when a formula falls outside the supported fragment
    (e.g. division by a non-constant term)."""


class FormulaTooLargeError(Exception):
    """Raised when a normalisation pass would exceed its size budget."""


# ---------------------------------------------------------------------------
# Compound-term elimination (ite / min / max / div / mod)
# ---------------------------------------------------------------------------


def _find_compound(term: Term) -> Optional[Term]:
    """Return an innermost compound subterm of ``term`` or None."""
    children: Tuple[Term, ...]
    if isinstance(term, (Const, SymTerm)):
        return None
    if isinstance(term, (Add, Sub, Mul)):
        children = (term.left, term.right)
    elif isinstance(term, (Div, Mod, Min, Max)):
        children = (term.left, term.right)
    elif isinstance(term, Ite):
        children = (term.then_term, term.else_term)
    elif isinstance(term, Select):
        children = (term.index,)
    elif isinstance(term, Store):
        children = (term.index, term.value)
    else:
        raise TypeError(f"unknown term {term!r}")
    for child in children:
        inner = _find_compound(child)
        if inner is not None:
            return inner
    if isinstance(term, (Div, Mod, Min, Max, Ite)):
        return term
    return None


def _replace_term(term: Term, target: Term, replacement: Term) -> Term:
    """Replace every occurrence of ``target`` (structural = identity when
    interned); ``Ite`` conditions are left alone (handled by the caller)."""
    return replace_node(term, target, replacement)


def _atom_terms(formula: Formula) -> Tuple[Term, ...]:
    if isinstance(formula, Atom):
        return (formula.left, formula.right)
    if isinstance(formula, Divides):
        return (formula.term,)
    return ()


def _rebuild_atom(formula: Formula, target: Term, replacement: Term) -> Formula:
    if isinstance(formula, Atom):
        return Atom(
            formula.rel,
            _replace_term(formula.left, target, replacement),
            _replace_term(formula.right, target, replacement),
        )
    if isinstance(formula, Divides):
        return Divides(formula.divisor, _replace_term(formula.term, target, replacement))
    raise TypeError(f"not an atom: {formula!r}")


def eliminate_compound_terms(formula: Formula, fresh: Optional[FreshSymbols] = None) -> Formula:
    """Remove ite/min/max/div/mod terms from every atom of ``formula``."""
    if fresh is None:
        fresh = FreshSymbols([s.name for s in free_symbols(formula)])

    def process(f: Formula) -> Formula:
        if isinstance(f, (TrueF, FalseF)):
            return f
        if isinstance(f, (Atom, Divides)):
            return process_atom(f)
        if isinstance(f, And):
            return conj(*[process(op) for op in f.operands])
        if isinstance(f, Or):
            return disj(*[process(op) for op in f.operands])
        if isinstance(f, Not):
            return neg(process(f.operand))
        if isinstance(f, Implies):
            return Implies(process(f.antecedent), process(f.consequent))
        if isinstance(f, Iff):
            return Iff(process(f.left), process(f.right))
        if isinstance(f, Exists):
            return Exists(f.symbol, process(f.body))
        if isinstance(f, Forall):
            return Forall(f.symbol, process(f.body))
        raise TypeError(f"unknown formula {f!r}")

    def process_atom(atom: Formula) -> Formula:
        offender: Optional[Term] = None
        for term in _atom_terms(atom):
            offender = _find_compound(term)
            if offender is not None:
                break
        if offender is None:
            return atom
        if isinstance(offender, Min):
            condition = Atom(Rel.LE, offender.left, offender.right)
            replacement: Term = Ite(condition, offender.left, offender.right)
            return process_atom(_rebuild_atom(atom, offender, replacement))
        if isinstance(offender, Max):
            condition = Atom(Rel.GE, offender.left, offender.right)
            replacement = Ite(condition, offender.left, offender.right)
            return process_atom(_rebuild_atom(atom, offender, replacement))
        if isinstance(offender, Ite):
            condition = process(offender.condition)
            then_atom = process_atom(_rebuild_atom(atom, offender, offender.then_term))
            else_atom = process_atom(_rebuild_atom(atom, offender, offender.else_term))
            return disj(conj(condition, then_atom), conj(neg(condition), else_atom))
        if isinstance(offender, (Div, Mod)):
            divisor = offender.right
            if not isinstance(divisor, Const) or divisor.value == 0:
                raise UnsupportedFormulaError(
                    f"division/modulo by non-constant or zero divisor in {offender}"
                )
            d = divisor.value
            quotient = fresh.fresh("q")
            q_term = SymTerm(quotient)
            numerator = offender.left
            if d > 0:
                definition = conj(
                    Atom(Rel.LE, Mul(Const(d), q_term), numerator),
                    Atom(Rel.LT, numerator, Add(Mul(Const(d), q_term), Const(d))),
                )
            else:
                definition = conj(
                    Atom(Rel.GE, Mul(Const(d), q_term), numerator),
                    Atom(Rel.GT, numerator, Add(Mul(Const(d), q_term), Const(d))),
                )
            if isinstance(offender, Div):
                replacement = q_term
            else:
                replacement = Sub(numerator, Mul(Const(d), q_term))
            rebuilt = process_atom(_rebuild_atom(atom, offender, replacement))
            return Exists(quotient, conj(definition, rebuilt))
        raise AssertionError(f"unexpected compound term {offender!r}")

    return process(formula)


# ---------------------------------------------------------------------------
# Ackermann reduction of array selects
# ---------------------------------------------------------------------------


def _collect_selects(formula: Formula) -> List[Select]:
    """Collect distinct Select terms appearing in the formula, in a stable order.

    The sharing-aware post-order of :func:`~repro.logic.traverse.iter_nodes`
    visits children before parents (so a select's index selects come first)
    and each interned node once, which is exactly the historical
    first-occurrence ordering.
    """
    return [node for node in iter_nodes(formula) if isinstance(node, Select)]


@dataclass(frozen=True)
class AckermannResult:
    """The outcome of Ackermannising a satisfiability query."""

    formula: Formula
    constraints: Formula
    select_map: Tuple[Tuple[Select, Symbol], ...]

    def combined(self) -> Formula:
        return conj(self.constraints, self.formula)


def ackermannize(formula: Formula, fresh: Optional[FreshSymbols] = None) -> AckermannResult:
    """Apply Ackermann's reduction to the array selects of a SAT query.

    Every select ``A[i]`` is replaced by a fresh integer symbol, and for each
    pair of selects over the same array the functional-consistency constraint
    ``i == j  ==>  a_i == a_j`` is added.  The reduction is equisatisfiable
    with the original formula provided selects do not occur under quantifiers
    that bind their index variables; the caller checks that restriction.
    """
    selects = _collect_selects(formula)
    if not selects:
        return AckermannResult(formula, TRUE, ())
    bound = _bound_symbols(formula)
    if fresh is None:
        fresh = FreshSymbols([s.name for s in free_symbols(formula)] + [s.name for s in bound])
    select_map: Dict[Select, Symbol] = {}
    for select in selects:
        from ..logic.formula import term_symbols

        if term_symbols(select.index) & bound:
            raise UnsupportedFormulaError(
                f"array read {select} indexes a quantified variable; "
                "the Ackermann reduction does not apply"
            )
        tag = select.array.tag
        select_map[select] = fresh.fresh(f"{select.array.name}_at", tag)

    # Replace selects (innermost first is unnecessary: indices contain no selects
    # after replacement ordering below; handle nested indices by replacing longest first).
    ordered = sorted(select_map.items(), key=lambda kv: -_term_depth(kv[0]))
    rewritten = formula
    for select, symbol in ordered:
        rewritten = _replace_select(rewritten, select, SymTerm(symbol))

    constraints: List[Formula] = []
    by_array: Dict[Symbol, List[Select]] = {}
    for select in selects:
        by_array.setdefault(select.array, []).append(select)
    for array, group in by_array.items():
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                left, right = group[i], group[j]
                index_eq = Atom(Rel.EQ, left.index, right.index)
                value_eq = Atom(Rel.EQ, SymTerm(select_map[left]), SymTerm(select_map[right]))
                constraints.append(Implies(index_eq, value_eq))
    constraint_formula = conj(*constraints) if constraints else TRUE
    # Constraint indices may themselves contain selects over other arrays; in our
    # fragment indices are scalar expressions, so no recursion is needed.
    return AckermannResult(rewritten, constraint_formula, tuple(select_map.items()))


def _term_depth(term: Term) -> int:
    if isinstance(term, (Const, SymTerm)):
        return 1
    if isinstance(term, Select):
        return 1 + _term_depth(term.index)
    if isinstance(term, (Add, Sub, Mul, Div, Mod, Min, Max)):
        return 1 + max(_term_depth(term.left), _term_depth(term.right))
    if isinstance(term, Ite):
        return 1 + max(_term_depth(term.then_term), _term_depth(term.else_term))
    if isinstance(term, Store):
        return 1 + max(_term_depth(term.index), _term_depth(term.value))
    raise TypeError(f"unknown term {term!r}")


def _replace_select(formula: Formula, target: Select, replacement: Term) -> Formula:
    """Replace one collected select across the formula's atoms.

    Deterministic, so the traversal memoises across shared subformulas;
    untouched subtrees come back as the same interned node.
    """
    return map_atom_terms(
        formula, lambda term: _replace_term(term, target, replacement)
    )


def _bound_symbols(formula: Formula) -> Set[Symbol]:
    bound: Set[Symbol] = set()

    def visit(f: Formula) -> None:
        if isinstance(f, (Exists, Forall)):
            bound.add(f.symbol)
            visit(f.body)
        elif isinstance(f, (And, Or)):
            for op in f.operands:
                visit(op)
        elif isinstance(f, Not):
            visit(f.operand)
        elif isinstance(f, Implies):
            visit(f.antecedent)
            visit(f.consequent)
        elif isinstance(f, Iff):
            visit(f.left)
            visit(f.right)

    visit(formula)
    return bound


# ---------------------------------------------------------------------------
# Negation normal form
# ---------------------------------------------------------------------------


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed to atoms, ``==>``/``<=>`` expanded.

    The pass is deterministic, so it memoises per ``(interned node,
    polarity)``: a subformula shared by many conjuncts (or revisited in both
    polarities by an ``<=>`` expansion) is normalised once per polarity.
    """
    return _nnf(formula, False, {})


def _nnf(formula: Formula, negated: bool, memo: Dict[Tuple[int, bool], Formula]) -> Formula:
    key = (id(formula), negated)
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _nnf_uncached(formula, negated, memo)
    memo[key] = result
    return result


def _nnf_uncached(
    formula: Formula, negated: bool, memo: Dict[Tuple[int, bool], Formula]
) -> Formula:
    if isinstance(formula, TrueF):
        return FALSE if negated else TRUE
    if isinstance(formula, FalseF):
        return TRUE if negated else FALSE
    if isinstance(formula, Atom):
        if negated:
            return Atom(formula.rel.negate(), formula.left, formula.right)
        return formula
    if isinstance(formula, Divides):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negated, memo)
    if isinstance(formula, And):
        parts = tuple(_nnf(op, negated, memo) for op in formula.operands)
        return disj(*parts) if negated else conj(*parts)
    if isinstance(formula, Or):
        parts = tuple(_nnf(op, negated, memo) for op in formula.operands)
        return conj(*parts) if negated else disj(*parts)
    if isinstance(formula, Implies):
        if negated:
            return conj(_nnf(formula.antecedent, False, memo), _nnf(formula.consequent, True, memo))
        return disj(_nnf(formula.antecedent, True, memo), _nnf(formula.consequent, False, memo))
    if isinstance(formula, Iff):
        left_pos = _nnf(formula.left, False, memo)
        left_neg = _nnf(formula.left, True, memo)
        right_pos = _nnf(formula.right, False, memo)
        right_neg = _nnf(formula.right, True, memo)
        if negated:
            return disj(conj(left_pos, right_neg), conj(left_neg, right_pos))
        return disj(conj(left_pos, right_pos), conj(left_neg, right_neg))
    if isinstance(formula, Exists):
        if negated:
            return Forall(formula.symbol, _nnf(formula.body, True, memo))
        return Exists(formula.symbol, _nnf(formula.body, False, memo))
    if isinstance(formula, Forall):
        if negated:
            return Exists(formula.symbol, _nnf(formula.body, True, memo))
        return Forall(formula.symbol, _nnf(formula.body, False, memo))
    raise TypeError(f"unknown formula {formula!r}")


# ---------------------------------------------------------------------------
# Skolemisation of positive existentials
# ---------------------------------------------------------------------------


def strip_positive_existentials(formula: Formula, fresh: Optional[FreshSymbols] = None) -> Formula:
    """Remove existential quantifiers in positive positions of an NNF formula.

    For a satisfiability query, an existential quantifier in positive
    position can be replaced by a fresh free symbol (constant skolemisation).
    Universal quantifiers are left in place (the caller decides how to handle
    them — Cooper elimination or bounded fallback).
    """
    if fresh is None:
        fresh = FreshSymbols([s.name for s in free_symbols(formula)])

    def process(f: Formula) -> Formula:
        if isinstance(f, Exists):
            replacement = fresh.fresh(f.symbol.name, f.symbol.tag)
            body = substitute(f.body, {f.symbol: SymTerm(replacement)})
            return process(body)
        if isinstance(f, And):
            return conj(*[process(op) for op in f.operands])
        if isinstance(f, Or):
            return disj(*[process(op) for op in f.operands])
        if isinstance(f, Forall):
            return Forall(f.symbol, process(f.body))
        return f

    return process(formula)


def has_universal(formula: Formula) -> bool:
    """Return True iff an NNF formula still contains a universal quantifier."""
    if isinstance(formula, Forall):
        return True
    if isinstance(formula, Exists):
        return has_universal(formula.body)
    if isinstance(formula, (And, Or)):
        return any(has_universal(op) for op in formula.operands)
    if isinstance(formula, Not):
        return has_universal(formula.operand)
    if isinstance(formula, (Implies, Iff)):
        raise AssertionError("formula is not in NNF")
    return False


# ---------------------------------------------------------------------------
# Disjunctive normal form
# ---------------------------------------------------------------------------

Cube = Tuple[Formula, ...]


def to_dnf(formula: Formula, max_cubes: int = 4096) -> List[Cube]:
    """Convert an NNF, quantifier-free formula into a list of cubes.

    Each cube is a tuple of literals (atoms, divisibility atoms or negated
    divisibility atoms).  Raises :class:`FormulaTooLargeError` if the result
    would exceed ``max_cubes`` cubes.
    """
    if isinstance(formula, TrueF):
        return [()]
    if isinstance(formula, FalseF):
        return []
    if isinstance(formula, (Atom, Divides)):
        return [(formula,)]
    if isinstance(formula, Not):
        if isinstance(formula.operand, Divides):
            return [(formula,)]
        raise AssertionError("formula is not in NNF")
    if isinstance(formula, Or):
        cubes: List[Cube] = []
        for operand in formula.operands:
            cubes.extend(to_dnf(operand, max_cubes))
            if len(cubes) > max_cubes:
                raise FormulaTooLargeError(
                    f"DNF expansion exceeded {max_cubes} cubes"
                )
        return cubes
    if isinstance(formula, And):
        result: List[Cube] = [()]
        for operand in formula.operands:
            operand_cubes = to_dnf(operand, max_cubes)
            new_result: List[Cube] = []
            for existing in result:
                for cube in operand_cubes:
                    new_result.append(existing + cube)
                    if len(new_result) > max_cubes:
                        raise FormulaTooLargeError(
                            f"DNF expansion exceeded {max_cubes} cubes"
                        )
            result = new_result
        return result
    if isinstance(formula, (Exists, Forall)):
        raise AssertionError("quantifiers must be eliminated before DNF conversion")
    raise TypeError(f"unknown formula {formula!r}")
