"""Evaluation-backend selection for the solver's batch-oriented hot paths.

The bounded model search, the DNF cube loop and the Monte Carlo scorer can
each run on one of three interchangeable evaluation backends:

``tree``
    The recursive tree walker (:func:`repro.logic.evaluate.evaluate`),
    checking one assignment at a time.  The slowest path, kept as the
    semantic reference for differential testing.

``compiled``
    The closure compiler (:mod:`repro.logic.compile`) with unit-atom
    pruning and cheap-conjunct-first checking — the default whenever
    numpy is unavailable.

``vector``
    The columnar batch evaluator (:mod:`repro.solver.vector`): candidate
    assignments become an array (one row per assignment, one column per
    symbol) and every linear atom of a formula is decided for the whole
    batch with a handful of numpy operations.  Non-linear/array residue
    falls back to the compiled closures per surviving row.

numpy is an *optional* extra (``pip install .[vec]``); the package's
mandatory dependency list stays empty.  ``auto`` — the default — resolves
to ``vector`` exactly when numpy imports, and to ``compiled`` otherwise,
so installing the extra is the only switch most users ever touch.  The
CLI's ``--backend`` flag calls :func:`set_backend`; worker processes
receive the requested backend on their
:class:`~repro.engine.scheduler.DischargeTask` and apply it themselves,
so the selection survives process-pool fan-out.

The backend changes *how fast* queries are decided, not *what* they
decide: every conclusive answer is produced (or confirmed) by the same
compiled/tree semantics, under the sound-divergence contract documented
in :mod:`repro.solver.models` and :mod:`repro.solver.vector`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

#: Every accepted ``--backend`` value; ``auto`` resolves at query time.
BACKENDS = ("auto", "tree", "compiled", "vector")

#: The backends ``auto`` can resolve to (what reports may carry).
RESOLVED_BACKENDS = ("tree", "compiled", "vector")

_requested: str = "auto"

# numpy availability is probed once and cached: the hot paths ask on
# every query, and a failed import is expensive.
_numpy_module = None
_numpy_probed = False


class BackendUnavailableError(RuntimeError):
    """Requested a backend whose dependencies are not installed."""


def numpy_available() -> bool:
    """True when numpy imports (probed once per process)."""
    return _numpy() is not None


def _numpy():
    """The numpy module, or ``None`` when the optional extra is absent."""
    global _numpy_module, _numpy_probed
    if not _numpy_probed:
        try:
            import numpy  # noqa: F401 - optional extra, probed lazily

            _numpy_module = numpy
        except ImportError:
            _numpy_module = None
        _numpy_probed = True
    return _numpy_module


def set_backend(name: str) -> None:
    """Select the evaluation backend for this process.

    ``vector`` requires numpy; requesting it without the extra installed
    raises :class:`BackendUnavailableError` immediately (rather than
    surfacing an import error deep inside a solver query).  ``auto``
    never fails — it degrades to ``compiled`` at resolution time.
    """
    global _requested
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r} (choose from {', '.join(BACKENDS)})")
    if name == "vector" and not numpy_available():
        raise BackendUnavailableError(
            "the vector backend requires numpy (pip install .[vec]); "
            "use --backend auto to fall back to compiled automatically"
        )
    _requested = name


def requested_backend() -> str:
    """The backend as requested (possibly the unresolved ``auto``)."""
    return _requested


def active_backend() -> str:
    """The backend queries actually run on (``auto`` resolved)."""
    if _requested == "auto":
        return "vector" if numpy_available() else "compiled"
    return _requested


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[None]:
    """Temporarily select a backend (tests and benchmarks); ``None`` is a no-op."""
    global _requested
    if name is None:
        yield
        return
    previous = _requested
    set_backend(name)
    try:
        yield
    finally:
        _requested = previous
