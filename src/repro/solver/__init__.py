"""Decision procedures for linear integer arithmetic (the z3py substitute).

The original paper discharges proof obligations interactively in Coq (with
an automated theorem prover assisting for arithmetic entailments).  This
reproduction replaces that with an automated solver for the fragment the
obligations live in — quantified linear integer arithmetic with array reads:

* :class:`~repro.solver.interface.Solver` — the facade (``check_sat`` /
  ``check_valid`` / ``find_model``),
* :mod:`~repro.solver.normalize` — term elimination, Ackermann reduction,
  NNF/DNF, skolemisation,
* :mod:`~repro.solver.lia` — Fourier–Motzkin + branch-and-bound cube solver,
* :mod:`~repro.solver.cooper` — Cooper's quantifier elimination (complete
  backend and testing oracle),
* :mod:`~repro.solver.models` — bounded model search fallback.
"""

from . import cooper, interface, lia, linear, models, normalize
from .cooper import QuantifierEliminationError, decide_closed, eliminate_quantifiers
from .interface import Solver, SolverResult, SolverStatistics, default_solver
from .lia import CubeSolver, CubeResult, Status
from .linear import LinearTerm, NonLinearError, is_linear, linearize
from .models import bounded_model_search, enumerate_models
from .normalize import (
    FormulaTooLargeError,
    UnsupportedFormulaError,
    ackermannize,
    eliminate_compound_terms,
    strip_positive_existentials,
    to_dnf,
    to_nnf,
)

__all__ = [
    "cooper",
    "interface",
    "lia",
    "linear",
    "models",
    "normalize",
    "QuantifierEliminationError",
    "decide_closed",
    "eliminate_quantifiers",
    "Solver",
    "SolverResult",
    "SolverStatistics",
    "default_solver",
    "CubeSolver",
    "CubeResult",
    "Status",
    "LinearTerm",
    "NonLinearError",
    "is_linear",
    "linearize",
    "bounded_model_search",
    "enumerate_models",
    "FormulaTooLargeError",
    "UnsupportedFormulaError",
    "ackermannize",
    "eliminate_compound_terms",
    "strip_positive_existentials",
    "to_dnf",
    "to_nnf",
]
