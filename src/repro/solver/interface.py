"""The solver facade: satisfiability and validity of assertion-logic formulas.

:class:`Solver` is the single entry point the proof rules use to discharge
side conditions.  It combines the passes of this package:

* compound-term elimination and Ackermann reduction of array reads,
* NNF conversion and skolemisation of positive existentials,
* DNF expansion and the Fourier–Motzkin / branch-and-bound cube solver,
* Cooper's quantifier elimination for formulas that retain universal
  quantifiers after skolemisation,
* a bounded model search fallback for non-linear obligations.

Answers are conservative: ``VALID`` / ``UNSAT`` are only reported when the
complete procedures establish them; budget exhaustion reports ``UNKNOWN``,
which the verification layer treats as "obligation not discharged".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..logic.formula import (
    FALSE,
    FalseF,
    Formula,
    FreshSymbols,
    Symbol,
    TRUE,
    TrueF,
    conj,
    free_symbols,
    neg,
)
from .backend import active_backend
from .cooper import QuantifierEliminationError, eliminate_quantifiers
from .lia import CubeSolver, Status
from .linear import NonLinearError
from .models import bounded_model_search
from .vector import PREFILTER_MIN_CUBES, prefilter_unsat_cubes, vector_stats
from .normalize import (
    FormulaTooLargeError,
    UnsupportedFormulaError,
    ackermannize,
    eliminate_compound_terms,
    has_universal,
    strip_positive_existentials,
    to_dnf,
    to_nnf,
)


@dataclass
class SolverResult:
    """The outcome of a satisfiability or validity query."""

    status: Status
    model: Optional[Dict[Symbol, int]] = None
    reason: str = ""
    elapsed_seconds: float = 0.0

    @property
    def is_sat(self) -> bool:
        return self.status is Status.SAT

    @property
    def is_unsat(self) -> bool:
        return self.status is Status.UNSAT

    @property
    def is_valid(self) -> bool:
        return self.status is Status.VALID

    @property
    def is_unknown(self) -> bool:
        return self.status is Status.UNKNOWN


#: Key prefix under which per-strategy wall-clock rides in the flat
#: ``as_dict`` counter format (kept flat so wave-delta subtraction and
#: worker round-trips stay purely numeric).
STRATEGY_SECONDS_PREFIX = "strategy_seconds."


@dataclass
class SolverStatistics:
    """Aggregate statistics over the lifetime of a solver instance."""

    sat_queries: int = 0
    validity_queries: int = 0
    cube_count: int = 0
    cooper_eliminations: int = 0
    bounded_fallbacks: int = 0
    unknown_results: int = 0
    total_seconds: float = 0.0
    #: Vector-backend counters (all zero on the scalar backends): rows and
    #: batches the columnar sweeps evaluated, searches that ran columnar,
    #: searches that wanted the vector path but fell back to scalar, and
    #: DNF cubes the wave prefilter discharged as UNSAT without entering
    #: the cube solver.
    vector_rows: int = 0
    vector_batches: int = 0
    vector_searches: int = 0
    vector_fallbacks: int = 0
    prefiltered_cubes: int = 0
    #: Wall-clock seconds attributed to each portfolio strategy (the
    #: serial engine path books under ``"serial"``).  ``total_seconds``
    #: stays the whole-solver total; this is its per-strategy breakdown,
    #: so the portfolio win table has matching timing columns.
    strategy_seconds: Dict[str, float] = field(default_factory=dict)

    def add_strategy_seconds(self, name: str, seconds: float) -> None:
        self.strategy_seconds[name] = self.strategy_seconds.get(name, 0.0) + seconds

    def as_dict(self) -> Dict[str, float]:
        counters = {
            "sat_queries": self.sat_queries,
            "validity_queries": self.validity_queries,
            "cube_count": self.cube_count,
            "cooper_eliminations": self.cooper_eliminations,
            "bounded_fallbacks": self.bounded_fallbacks,
            "unknown_results": self.unknown_results,
            "total_seconds": self.total_seconds,
            "vector_rows": self.vector_rows,
            "vector_batches": self.vector_batches,
            "vector_searches": self.vector_searches,
            "vector_fallbacks": self.vector_fallbacks,
            "prefiltered_cubes": self.prefiltered_cubes,
        }
        for name, seconds in self.strategy_seconds.items():
            counters[STRATEGY_SECONDS_PREFIX + name] = seconds
        return counters

    def merge(self, counters: Dict[str, float]) -> None:
        """Add another statistics dict (e.g. from a worker's solver) into this one.

        Unknown keys are ignored, so the format can grow without breaking
        older counters shipped back from worker processes.  Per-strategy
        seconds travel as flat ``strategy_seconds.<name>`` keys.
        """
        self.sat_queries += int(counters.get("sat_queries", 0))
        self.validity_queries += int(counters.get("validity_queries", 0))
        self.cube_count += int(counters.get("cube_count", 0))
        self.cooper_eliminations += int(counters.get("cooper_eliminations", 0))
        self.bounded_fallbacks += int(counters.get("bounded_fallbacks", 0))
        self.unknown_results += int(counters.get("unknown_results", 0))
        self.total_seconds += float(counters.get("total_seconds", 0.0))
        self.vector_rows += int(counters.get("vector_rows", 0))
        self.vector_batches += int(counters.get("vector_batches", 0))
        self.vector_searches += int(counters.get("vector_searches", 0))
        self.vector_fallbacks += int(counters.get("vector_fallbacks", 0))
        self.prefiltered_cubes += int(counters.get("prefiltered_cubes", 0))
        for key, value in counters.items():
            if key.startswith(STRATEGY_SECONDS_PREFIX):
                self.add_strategy_seconds(
                    key[len(STRATEGY_SECONDS_PREFIX):], float(value)
                )


class Solver:
    """Decision procedures for the assertion logic (the z3py substitute)."""

    def __init__(
        self,
        max_cubes: int = 4096,
        branch_depth: int = 40,
        bounded_radius: int = 4,
        enable_cooper: bool = True,
        enable_bounded_fallback: bool = True,
        fallback_seconds: Optional[float] = 2.0,
    ) -> None:
        self._max_cubes = max_cubes
        self._branch_depth = branch_depth
        self._bounded_radius = bounded_radius
        self._enable_cooper = enable_cooper
        self._enable_bounded_fallback = enable_bounded_fallback
        self._fallback_seconds = fallback_seconds
        self.statistics = SolverStatistics()

    # -- public API -------------------------------------------------------------

    def check_sat(self, formula: Formula) -> SolverResult:
        """Decide satisfiability of ``formula`` over the integers."""
        start = time.perf_counter()
        self.statistics.sat_queries += 1
        result = self._check_sat_inner(formula)
        result.elapsed_seconds = time.perf_counter() - start
        self.statistics.total_seconds += result.elapsed_seconds
        if result.status is Status.UNKNOWN:
            self.statistics.unknown_results += 1
        return result

    def check_valid(self, formula: Formula) -> SolverResult:
        """Decide validity of ``formula`` (true for every integer valuation)."""
        start = time.perf_counter()
        self.statistics.validity_queries += 1
        negated = self.check_sat(neg(formula))
        elapsed = time.perf_counter() - start
        if negated.status is Status.UNSAT:
            result = SolverResult(Status.VALID, reason=negated.reason)
        elif negated.status is Status.SAT:
            result = SolverResult(
                Status.INVALID, model=negated.model, reason="counterexample found"
            )
        else:
            result = SolverResult(Status.UNKNOWN, reason=negated.reason)
            self.statistics.unknown_results += 1
        result.elapsed_seconds = elapsed
        return result

    def is_valid(self, formula: Formula) -> bool:
        """Convenience wrapper: True only when validity is established."""
        return self.check_valid(formula).is_valid

    def is_sat(self, formula: Formula) -> bool:
        """Convenience wrapper: True only when satisfiability is established."""
        return self.check_sat(formula).is_sat

    def find_model(self, formula: Formula) -> Optional[Dict[Symbol, int]]:
        """Return a model of ``formula`` if satisfiability is established."""
        result = self.check_sat(formula)
        if result.is_sat:
            return result.model or {}
        return None

    # -- pipeline ----------------------------------------------------------------

    def _check_sat_inner(self, formula: Formula) -> SolverResult:
        if isinstance(formula, TrueF):
            return SolverResult(Status.SAT, model={})
        if isinstance(formula, FalseF):
            return SolverResult(Status.UNSAT)
        try:
            prepared = eliminate_compound_terms(formula)
        except UnsupportedFormulaError as error:
            return self._fallback(formula, f"unsupported construct: {error}")

        # Skolemise positive existentials *before* the Ackermann reduction so
        # that array reads indexed by (formerly) bound variables become reads
        # at free symbols, which the reduction handles.
        nnf = to_nnf(prepared)
        stripped = strip_positive_existentials(nnf)
        try:
            ackermann = ackermannize(stripped)
            stripped = to_nnf(ackermann.combined())
            stripped = strip_positive_existentials(stripped)
        except UnsupportedFormulaError as error:
            return self._fallback(formula, f"unsupported construct: {error}")

        if has_universal(stripped):
            if not self._enable_cooper:
                return self._fallback(formula, "universal quantifier (Cooper disabled)")
            try:
                self.statistics.cooper_eliminations += 1
                telemetry.count("solver.cooper_eliminations")
                stripped = to_nnf(eliminate_quantifiers(stripped))
                stripped = strip_positive_existentials(stripped)
            except (QuantifierEliminationError, NonLinearError) as error:
                return self._fallback(formula, f"quantifier elimination failed: {error}")

        try:
            cubes = to_dnf(stripped, max_cubes=self._max_cubes)
        except FormulaTooLargeError as error:
            return self._fallback(formula, str(error))

        # Vector backend: decide the whole cube wave's linear content as one
        # stacked coefficient matrix first.  Prefiltered entries are *proofs*
        # of integer infeasibility, so skipping their cube-solver runs can
        # never change a SAT answer (the first SAT cube and its model are
        # untouched) — it can only turn a budget-exhausted UNKNOWN on an
        # infeasible cube into the UNSAT it really is.
        prefiltered = None
        if len(cubes) >= PREFILTER_MIN_CUBES and active_backend() == "vector":
            with telemetry.span("solver.vector.prefilter", cubes=len(cubes)):
                prefiltered = prefilter_unsat_cubes(cubes)
            if prefiltered is not None:
                self.statistics.prefiltered_cubes += sum(prefiltered)

        cube_solver = CubeSolver(branch_depth=self._branch_depth)
        saw_unknown = False
        unknown_reason = ""
        cubes_solved = 0
        try:
            for cube_index, cube in enumerate(cubes):
                self.statistics.cube_count += 1
                cubes_solved += 1
                if prefiltered is not None and prefiltered[cube_index]:
                    continue  # provably UNSAT, settled by the wave prefilter
                try:
                    result = cube_solver.solve(cube)
                except NonLinearError as error:
                    saw_unknown = True
                    unknown_reason = f"non-linear cube: {error}"
                    continue
                if result.status is Status.SAT:
                    model = self._project_model(result.model or {}, formula)
                    return SolverResult(Status.SAT, model=model)
                if result.status is Status.UNKNOWN:
                    saw_unknown = True
                    unknown_reason = "branch-and-bound budget exhausted"
            if saw_unknown:
                return self._fallback(formula, unknown_reason)
            return SolverResult(Status.UNSAT)
        finally:
            telemetry.observe("solver.cubes_per_query", cubes_solved)

    def _fallback(self, formula: Formula, reason: str) -> SolverResult:
        if not self._enable_bounded_fallback:
            return SolverResult(Status.UNKNOWN, reason=reason)
        self.statistics.bounded_fallbacks += 1
        telemetry.count("solver.bounded_fallbacks")
        before = vector_stats()
        model = bounded_model_search(
            formula, radius=self._bounded_radius, max_seconds=self._fallback_seconds
        )
        after = vector_stats()
        self.statistics.vector_rows += after["rows_evaluated"] - before["rows_evaluated"]
        self.statistics.vector_batches += after["batches"] - before["batches"]
        self.statistics.vector_searches += after["searches"] - before["searches"]
        self.statistics.vector_fallbacks += after["scalar_fallbacks"] - before["scalar_fallbacks"]
        if model is not None:
            return SolverResult(Status.SAT, model=model, reason=f"bounded search ({reason})")
        return SolverResult(Status.UNKNOWN, reason=reason)

    @staticmethod
    def _project_model(model: Dict[Symbol, int], formula: Formula) -> Dict[Symbol, int]:
        """Keep only the original free symbols of the query in the model, and
        fill in defaults for symbols the cube solver never constrained."""
        original = free_symbols(formula)
        projected = {s: v for s, v in model.items() if s in original}
        for symbol in original:
            projected.setdefault(symbol, 0)
        return projected


_DEFAULT_SOLVER: Optional[Solver] = None


def default_solver() -> Solver:
    """A process-wide shared solver instance (convenient for scripts/tests)."""
    global _DEFAULT_SOLVER
    if _DEFAULT_SOLVER is None:
        _DEFAULT_SOLVER = Solver()
    return _DEFAULT_SOLVER
