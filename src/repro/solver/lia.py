"""Integer feasibility of conjunctions of linear literals (the cube solver).

Given a cube — a conjunction of linear-arithmetic literals — this module
decides whether it has an integer solution and, if so, produces one.  The
procedure is:

1. translate literals into linear constraints over
   :class:`~repro.solver.linear.LinearTerm`: inequalities ``t <= 0``,
   equalities ``t == 0``, disequalities ``t != 0`` and (possibly negated)
   divisibility constraints ``d | t``;
2. split disequalities into strict inequalities (case split);
3. eliminate divisibility constraints by residue enumeration: substitute
   ``x = L*x' + r`` for the lcm ``L`` of the relevant divisors and each
   residue ``r``, which makes the constraints ground one variable at a time;
4. eliminate equalities that contain a unit-coefficient variable by
   substitution (recording the eliminations for model reconstruction), and
   apply the GCD test to the rest;
5. tighten each inequality by dividing through by the gcd of its
   coefficients (integer rounding), run Fourier–Motzkin elimination (with
   the same tightening applied to derived constraints) to decide
   feasibility, and extract a sample point by back-substitution;
6. if the sample point is fractional, branch and bound on a fractional
   variable up to a configurable depth.

Steps 5–6 with integer tightening constitute a sound and, up to the
configured budgets, complete decision procedure for quantifier-free linear
integer arithmetic cubes; when a budget is exhausted the result is
``UNKNOWN`` (never a wrong answer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor, gcd
from typing import Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..logic.formula import Atom, Divides, Formula, Not, Rel, Symbol
from .linear import LinearTerm, NonLinearError, linearize


class Status(enum.Enum):
    """Result status of a satisfiability or validity query."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"
    VALID = "valid"
    INVALID = "invalid"


@dataclass
class CubeResult:
    """Result of deciding a single cube."""

    status: Status
    model: Optional[Dict[Symbol, int]] = None


@dataclass(frozen=True)
class Inequality:
    """The constraint ``term <= 0``."""

    term: LinearTerm

    def tighten(self) -> "Inequality":
        """Divide by the coefficient gcd, rounding the constant soundly."""
        content = self.term.content()
        if content <= 1:
            return self
        coeffs = {s: c // content for s, c in self.term.coeffs}
        # sum(c_i x_i) + k <= 0  <=>  sum(c_i/g x_i) <= -k/g
        # integer left side  =>  sum <= floor(-k/g)  <=>  sum + ceil(k/g) <= 0
        constant = ceil(Fraction(self.term.constant, content))
        return Inequality(LinearTerm.of(coeffs, int(constant)))


@dataclass(frozen=True)
class Equality:
    """The constraint ``term == 0``."""

    term: LinearTerm


@dataclass(frozen=True)
class Divisibility:
    """The constraint ``divisor | term`` (or its negation when not positive)."""

    divisor: int
    term: LinearTerm
    positive: bool = True

    def holds_for_constant(self) -> bool:
        assert self.term.is_constant()
        divides = self.term.constant % self.divisor == 0
        return divides if self.positive else not divides


_MAX_DISEQUALITY_SPLITS = 10
_MAX_DIV_LCM = 64
_MAX_DIV_BRANCHES = 4096
_DEFAULT_BRANCH_DEPTH = 40


def _lcm(a: int, b: int) -> int:
    return abs(a * b) // gcd(a, b) if a and b else max(abs(a), abs(b), 1)


def cube_inequality_rows(
    literals: Sequence[Formula],
) -> List[Tuple[Dict[Symbol, int], int]]:
    """The *hard* linear content of a cube, as ``term <= 0`` rows.

    Each row is ``(coefficients, constant)`` with the invariant that every
    integer model of the cube satisfies ``sum(c*x) + k <= 0`` — the same
    canonicalisation :meth:`CubeSolver._translate` applies, with
    equalities expanded into their two one-sided rows.  Literals that
    carry no such content (disequalities, divisibility constraints,
    non-linear atoms) are *skipped*, which is conservative for the
    vector backend's wave prefilter: proving the rows infeasible proves
    the cube UNSAT regardless of what was dropped, and nothing here is
    ever used to conclude SAT.  (:func:`repro.solver.vector.prefilter_unsat_cubes`
    stacks these rows across a whole DNF wave into one coefficient
    matrix.)
    """
    rows: List[Tuple[Dict[Symbol, int], int]] = []
    for literal in literals:
        if not isinstance(literal, Atom):
            continue
        try:
            lin = linearize(literal.left).subtract(linearize(literal.right))
        except NonLinearError:
            continue
        rel = literal.rel
        if rel is Rel.LT:
            rows.append((lin.as_dict(), lin.constant + 1))
        elif rel is Rel.LE:
            rows.append((lin.as_dict(), lin.constant))
        elif rel is Rel.GT:
            negated = lin.negate()
            rows.append((negated.as_dict(), negated.constant + 1))
        elif rel is Rel.GE:
            negated = lin.negate()
            rows.append((negated.as_dict(), negated.constant))
        elif rel is Rel.EQ:
            negated = lin.negate()
            rows.append((lin.as_dict(), lin.constant))
            rows.append((negated.as_dict(), negated.constant))
        # Rel.NE carries no one-sided inequality content: skipped.
    return rows


class CubeSolver:
    """Decides integer feasibility of cubes of linear literals."""

    def __init__(self, branch_depth: int = _DEFAULT_BRANCH_DEPTH) -> None:
        self._branch_depth = branch_depth
        self._aux_counter = 0
        self.statistics: Dict[str, int] = {
            "cubes": 0,
            "branch_nodes": 0,
            "fm_eliminations": 0,
            "residue_branches": 0,
        }

    # -- public API -----------------------------------------------------------

    def solve(self, literals: Sequence[Formula]) -> CubeResult:
        """Decide a cube given as a sequence of literal formulas."""
        self.statistics["cubes"] += 1
        telemetry.count("lia.cube_solves")
        inequalities, equalities, disequalities, divisibilities = self._translate(literals)
        return self._solve_split(inequalities, equalities, disequalities, divisibilities)

    # -- literal translation ----------------------------------------------------

    def _fresh_aux(self, base: str) -> Symbol:
        self._aux_counter += 1
        return Symbol(f"{base}_aux{self._aux_counter}")

    def _translate(
        self, literals: Sequence[Formula]
    ) -> Tuple[List[Inequality], List[Equality], List[LinearTerm], List[Divisibility]]:
        inequalities: List[Inequality] = []
        equalities: List[Equality] = []
        disequalities: List[LinearTerm] = []
        divisibilities: List[Divisibility] = []
        for literal in literals:
            if isinstance(literal, Atom):
                lin = linearize(literal.left).subtract(linearize(literal.right))
                rel = literal.rel
                if rel is Rel.LT:
                    inequalities.append(Inequality(lin.add(LinearTerm.constant_term(1))))
                elif rel is Rel.LE:
                    inequalities.append(Inequality(lin))
                elif rel is Rel.GT:
                    inequalities.append(Inequality(lin.negate().add(LinearTerm.constant_term(1))))
                elif rel is Rel.GE:
                    inequalities.append(Inequality(lin.negate()))
                elif rel is Rel.EQ:
                    equalities.append(Equality(lin))
                elif rel is Rel.NE:
                    disequalities.append(lin)
                else:  # pragma: no cover - exhaustive
                    raise AssertionError(f"unhandled relation {rel}")
            elif isinstance(literal, Divides):
                divisor = abs(literal.divisor)
                if divisor == 0:
                    raise NonLinearError("divisibility by zero")
                divisibilities.append(Divisibility(divisor, linearize(literal.term), True))
            elif isinstance(literal, Not) and isinstance(literal.operand, Divides):
                divides = literal.operand
                divisor = abs(divides.divisor)
                if divisor == 0:
                    raise NonLinearError("negated divisibility by zero")
                divisibilities.append(Divisibility(divisor, linearize(divides.term), False))
            else:
                raise NonLinearError(f"unsupported literal {literal}")
        return inequalities, equalities, disequalities, divisibilities

    # -- disequality splitting ----------------------------------------------------

    def _solve_split(
        self,
        inequalities: List[Inequality],
        equalities: List[Equality],
        disequalities: List[LinearTerm],
        divisibilities: List[Divisibility],
    ) -> CubeResult:
        if len(disequalities) > _MAX_DISEQUALITY_SPLITS:
            return CubeResult(Status.UNKNOWN)
        if not disequalities:
            return self._solve_divisibility(inequalities, equalities, divisibilities, _MAX_DIV_BRANCHES)
        first, rest = disequalities[0], disequalities[1:]
        saw_unknown = False
        # term != 0  <=>  term <= -1  or  -term <= -1
        for branch_term in (
            first.add(LinearTerm.constant_term(1)),
            first.negate().add(LinearTerm.constant_term(1)),
        ):
            result = self._solve_split(
                inequalities + [Inequality(branch_term)], equalities, rest, divisibilities
            )
            if result.status is Status.SAT:
                return result
            if result.status is Status.UNKNOWN:
                saw_unknown = True
        return CubeResult(Status.UNKNOWN if saw_unknown else Status.UNSAT)

    # -- divisibility elimination by residue enumeration ---------------------------

    def _solve_divisibility(
        self,
        inequalities: List[Inequality],
        equalities: List[Equality],
        divisibilities: List[Divisibility],
        branch_budget: int,
    ) -> CubeResult:
        # Evaluate constant divisibility constraints outright.
        pending: List[Divisibility] = []
        for constraint in divisibilities:
            if constraint.term.is_constant():
                if not constraint.holds_for_constant():
                    return CubeResult(Status.UNSAT)
            else:
                pending.append(constraint)
        if not pending:
            return self._solve_core(inequalities, equalities)

        # Pick a variable occurring in a divisibility constraint and enumerate
        # its residues modulo the lcm of the divisors that mention it.
        symbol = sorted(pending[0].term.symbols())[0]
        modulus = 1
        for constraint in pending:
            if constraint.term.coefficient(symbol) != 0:
                modulus = _lcm(modulus, constraint.divisor)
        if modulus > _MAX_DIV_LCM or branch_budget <= 0:
            return CubeResult(Status.UNKNOWN)

        replacement_symbol = self._fresh_aux(symbol.name)
        saw_unknown = False
        for residue in range(modulus):
            self.statistics["residue_branches"] += 1
            replacement = LinearTerm.of({replacement_symbol: modulus}, residue)
            new_inequalities = [
                Inequality(ineq.term.substitute(symbol, replacement)) for ineq in inequalities
            ]
            new_equalities = [
                Equality(eq.term.substitute(symbol, replacement)) for eq in equalities
            ]
            new_divisibilities: List[Divisibility] = []
            infeasible = False
            for constraint in pending:
                term = constraint.term.substitute(symbol, replacement)
                coefficient = term.coefficient(replacement_symbol)
                if coefficient % constraint.divisor == 0:
                    # The substituted variable contributes a multiple of the
                    # divisor; drop it from the divisibility constraint.
                    term = term.drop(replacement_symbol)
                if term.is_constant():
                    check = Divisibility(constraint.divisor, term, constraint.positive)
                    if not check.holds_for_constant():
                        infeasible = True
                        break
                else:
                    new_divisibilities.append(
                        Divisibility(constraint.divisor, term, constraint.positive)
                    )
            if infeasible:
                continue
            result = self._solve_divisibility(
                new_inequalities,
                new_equalities,
                new_divisibilities,
                branch_budget // modulus,
            )
            if result.status is Status.SAT:
                model = dict(result.model or {})
                base = model.get(replacement_symbol, 0)
                model[symbol] = modulus * base + residue
                return CubeResult(Status.SAT, model)
            if result.status is Status.UNKNOWN:
                saw_unknown = True
        return CubeResult(Status.UNKNOWN if saw_unknown else Status.UNSAT)

    # -- equality elimination -------------------------------------------------------

    def _solve_core(
        self, inequalities: List[Inequality], equalities: List[Equality]
    ) -> CubeResult:
        eliminations: List[Tuple[Symbol, LinearTerm]] = []
        inequalities = list(inequalities)
        equalities = list(equalities)

        while equalities:
            equality = equalities.pop()
            term = equality.term
            if term.is_constant():
                if term.constant != 0:
                    return CubeResult(Status.UNSAT)
                continue
            unit_symbol = None
            unit_coeff = 0
            for symbol, coeff in term.coeffs:
                if abs(coeff) == 1:
                    unit_symbol, unit_coeff = symbol, coeff
                    break
            if unit_symbol is None:
                content = term.content()
                if term.constant % content != 0:
                    return CubeResult(Status.UNSAT)
                # No unit coefficient: express as a pair of inequalities and let
                # the tightened Fourier-Motzkin / branch and bound enforce it.
                inequalities.append(Inequality(term))
                inequalities.append(Inequality(term.negate()))
                continue
            # unit_coeff * x + rest = 0  =>  x = -rest / unit_coeff
            rest = term.drop(unit_symbol)
            replacement = rest.negate() if unit_coeff == 1 else rest
            eliminations.append((unit_symbol, replacement))
            equalities = [
                Equality(eq.term.substitute(unit_symbol, replacement)) for eq in equalities
            ]
            inequalities = [
                Inequality(ineq.term.substitute(unit_symbol, replacement))
                for ineq in inequalities
            ]

        result = self._solve_inequalities([ineq.tighten() for ineq in inequalities], 0)
        if result.status is not Status.SAT or result.model is None:
            return result
        model = dict(result.model)
        for symbol, replacement in reversed(eliminations):
            missing = [s for s in replacement.symbols() if s not in model]
            for s in missing:
                model[s] = 0
            model[symbol] = replacement.evaluate(model)
        return CubeResult(Status.SAT, model)

    # -- inequalities: Fourier-Motzkin + branch and bound -----------------------------

    def _solve_inequalities(
        self, inequalities: List[Inequality], depth: int
    ) -> CubeResult:
        self.statistics["branch_nodes"] += 1
        point = self._rational_sample(inequalities)
        if point is None:
            return CubeResult(Status.UNSAT)
        fractional = [(s, v) for s, v in point.items() if v.denominator != 1]
        if not fractional:
            model = {s: int(v) for s, v in point.items()}
            return CubeResult(Status.SAT, model)
        if depth >= self._branch_depth:
            return CubeResult(Status.UNKNOWN)
        symbol, value = fractional[0]
        lower = int(floor(value))
        upper = int(ceil(value))
        saw_unknown = False
        # Branch x <= floor(v)
        left = inequalities + [Inequality(LinearTerm.of({symbol: 1}, -lower))]
        result = self._solve_inequalities(left, depth + 1)
        if result.status is Status.SAT:
            return result
        if result.status is Status.UNKNOWN:
            saw_unknown = True
        # Branch x >= ceil(v)
        right = inequalities + [Inequality(LinearTerm.of({symbol: -1}, upper))]
        result = self._solve_inequalities(right, depth + 1)
        if result.status is Status.SAT:
            return result
        if result.status is Status.UNKNOWN:
            saw_unknown = True
        return CubeResult(Status.UNKNOWN if saw_unknown else Status.UNSAT)

    def _rational_sample(
        self, inequalities: List[Inequality]
    ) -> Optional[Dict[Symbol, Fraction]]:
        """Rational feasibility via Fourier-Motzkin; returns a sample point.

        Derived constraints are tightened (integer rounding), so the sample
        point search space preserves integer solutions exactly while pruning
        rationally-feasible but integer-infeasible slabs.
        """
        constraints: List[LinearTerm] = [ineq.term for ineq in inequalities]
        for term in constraints:
            if term.is_constant() and term.constant > 0:
                return None

        order: List[Symbol] = sorted(
            {s for term in constraints for s in term.symbols()}
        )
        levels: List[Tuple[Symbol, List[LinearTerm]]] = []
        current = constraints
        for symbol in order:
            self.statistics["fm_eliminations"] += 1
            levels.append((symbol, current))
            lowers: List[Tuple[LinearTerm, int]] = []
            uppers: List[Tuple[LinearTerm, int]] = []
            others: List[LinearTerm] = []
            for term in current:
                coeff = term.coefficient(symbol)
                if coeff == 0:
                    others.append(term)
                elif coeff > 0:
                    uppers.append((term, coeff))
                else:
                    lowers.append((term, coeff))
            new_constraints = list(others)
            for upper_term, upper_coeff in uppers:
                for lower_term, lower_coeff in lowers:
                    # upper: a*x + t1 <= 0 (a > 0), lower: b*x + t2 <= 0 (b < 0)
                    # imply a*t2 + (-b)*t1 <= 0.
                    combined = lower_term.drop(symbol).scale(upper_coeff).add(
                        upper_term.drop(symbol).scale(-lower_coeff)
                    )
                    # Integer tightening preserves all integer solutions and lets
                    # the elimination detect "thin" rationally-feasible but
                    # integer-infeasible systems such as 2a <= 2b - 1 <= 2a.
                    combined = Inequality(combined).tighten().term
                    if combined.is_constant():
                        if combined.constant > 0:
                            return None
                    else:
                        new_constraints.append(combined)
            current = new_constraints
        for term in current:
            if term.is_constant() and term.constant > 0:
                return None
        # Back-substitute to build a sample point (prefer integral values).
        assignment: Dict[Symbol, Fraction] = {}
        for symbol, constraints_at_level in reversed(levels):
            lower_bound: Optional[Fraction] = None
            upper_bound: Optional[Fraction] = None
            for term in constraints_at_level:
                coeff = term.coefficient(symbol)
                if coeff == 0:
                    continue
                rest_value = Fraction(term.constant)
                for other_symbol, other_coeff in term.coeffs:
                    if other_symbol == symbol:
                        continue
                    rest_value += other_coeff * assignment.get(other_symbol, Fraction(0))
                bound = Fraction(-rest_value, coeff)
                if coeff > 0:
                    if upper_bound is None or bound < upper_bound:
                        upper_bound = bound
                else:
                    if lower_bound is None or bound > lower_bound:
                        lower_bound = bound
            assignment[symbol] = self._pick_value(lower_bound, upper_bound)
        return assignment

    @staticmethod
    def _pick_value(lower: Optional[Fraction], upper: Optional[Fraction]) -> Fraction:
        """Pick a value in [lower, upper], preferring small integers."""
        if lower is None and upper is None:
            return Fraction(0)
        if lower is None:
            assert upper is not None
            if upper >= 0:
                return Fraction(0)
            candidate = Fraction(floor(upper))
            return candidate if candidate <= upper else upper
        if upper is None:
            if lower <= 0:
                return Fraction(0)
            candidate = Fraction(ceil(lower))
            return candidate if candidate >= lower else lower
        if lower > upper:
            # Should not happen for feasible systems; return midpoint defensively.
            return (lower + upper) / 2
        if lower <= 0 <= upper:
            return Fraction(0)
        integer_candidate = Fraction(ceil(lower))
        if lower <= integer_candidate <= upper:
            return integer_candidate
        return lower
