"""Columnar batch evaluation: the numpy-backed ``vector`` solver backend.

The scalar hot paths decide one candidate assignment at a time — a Python
dict per assignment, a closure call per conjunct.  This module turns that
inside out: a *batch* of assignments becomes a table (one int64 column per
symbol, one row per assignment) and every **linear** conjunct of a formula
is decided for the whole batch with a handful of numpy operations
(coefficient × column products, elementwise comparisons, boolean folds).

Three consumers:

* :mod:`repro.solver.models` — the bounded model search sweeps the
  post-prune cartesian space in row chunks (:func:`candidate_columns`
  materialises a chunk in ``itertools.product`` order via mixed-radix
  index arithmetic) and uses a :class:`ConjunctPlan` to reject most rows
  in bulk before any per-row closure runs;
* :mod:`repro.solver.interface` — :func:`prefilter_unsat_cubes` stacks
  the linear literals of a whole DNF cube wave into one coefficient
  matrix and discharges provably-infeasible cubes without entering the
  Fourier–Motzkin solver;
* :mod:`repro.explore.scoring` — :func:`columnar_sum` /
  :func:`columnar_max` aggregate Monte Carlo sample columns with
  *sequential* numpy reductions (``cumsum``), which perform the same
  IEEE-754 operations in the same order as Python's ``sum`` — so scores
  stay byte-identical across backends.

**Soundness.**  The vectorisable fragment — atoms whose sides linearise,
divisibility by a non-zero constant, their boolean combinations, and
quantifiers over that fragment with an explicit domain — is *total*: with
every symbol bound, no formula in it can raise
:class:`~repro.logic.evaluate.EvaluationError` (no division, no arrays,
no unbound symbols).  int64 arithmetic is exact under the magnitude guard
(:func:`values_vectorizable` bounds candidate values, the compiler bounds
coefficient weight, and their product stays far below ``2**63``).  Batch
evaluation of the fragment therefore agrees with the tree walker on every
row, bit for bit.  The vector path only ever uses the batch verdict to
*reject* rows; every accepted model is confirmed by the same scalar
checker the compiled backend uses (or lies in the total fragment, where
confirmation is a tautology).  The one observable divergence is the
direction PR 4 documented for pruning: a row rejected in bulk is never
evaluated scalarly, so an :class:`EvaluationError` the compiled sweep
would have aborted on (reporting ``UNKNOWN``) can be skipped — an
error-abort may become a conclusive ``SAT``, never the reverse.  The cube
prefilter is similarly one-sided: it only declares a cube ``UNSAT`` when
its linear inequality rows are infeasible over the cube's own unit-bound
box, a proof that holds regardless of the literals it ignored.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..logic.formula import (
    And,
    Atom,
    Divides,
    Exists,
    Forall,
    FalseF,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Rel,
    Symbol,
    TrueF,
)
from .backend import _numpy
from .linear import NonLinearError, linearize

#: Candidate values admitted into int64 columns: |value| <= 2**20 combined
#: with the compiler's coefficient-weight cap (2**40) keeps every linear
#: atom's row values below 2**61 — no int64 overflow, exact arithmetic.
MAX_COLUMN_MAGNITUDE = 2 ** 20
_MAX_ATOM_WEIGHT = 2 ** 40

#: Rows per batch in the chunked cartesian sweep.
BATCH_ROWS = 4096

#: Minimum cube-wave size worth stacking into a prefilter matrix.
PREFILTER_MIN_CUBES = 8


class VectorUnsupported(Exception):
    """The formula falls outside the vectorisable (total, linear) fragment."""


# ---------------------------------------------------------------------------
# Backend statistics (benchmarks, telemetry, the --json solver section)
# ---------------------------------------------------------------------------


class _VectorStats:
    """Process-wide counters for the vector backend's work."""

    __slots__ = (
        "rows_evaluated",
        "batches",
        "searches",
        "scalar_fallbacks",
        "prefilter_cubes",
        "prefilter_unsat",
    )

    def __init__(self) -> None:
        self.rows_evaluated = 0
        self.batches = 0
        self.searches = 0
        self.scalar_fallbacks = 0
        self.prefilter_cubes = 0
        self.prefilter_unsat = 0


_VECTOR_STATS = _VectorStats()


def vector_stats() -> Dict[str, int]:
    """Counters for the vector backend's batched work in this process."""
    return {
        "rows_evaluated": _VECTOR_STATS.rows_evaluated,
        "batches": _VECTOR_STATS.batches,
        "searches": _VECTOR_STATS.searches,
        "scalar_fallbacks": _VECTOR_STATS.scalar_fallbacks,
        "prefilter_cubes": _VECTOR_STATS.prefilter_cubes,
        "prefilter_unsat": _VECTOR_STATS.prefilter_unsat,
    }


def note_search() -> None:
    """Record that a model search ran on the vector path."""
    _VECTOR_STATS.searches += 1


def note_scalar_fallback() -> None:
    """Record a search that wanted the vector path but fell back to scalar."""
    _VECTOR_STATS.scalar_fallbacks += 1


def reset_vector_stats() -> None:
    """Zero the vector-backend counters."""
    _VECTOR_STATS.rows_evaluated = 0
    _VECTOR_STATS.batches = 0
    _VECTOR_STATS.searches = 0
    _VECTOR_STATS.scalar_fallbacks = 0
    _VECTOR_STATS.prefilter_cubes = 0
    _VECTOR_STATS.prefilter_unsat = 0


# ---------------------------------------------------------------------------
# The vector compiler: formula -> batch closure
# ---------------------------------------------------------------------------

#: A compiled batch evaluator: (columns, row_count, quantifier_domain) ->
#: bool array of row verdicts.  Total on the vectorisable fragment.
VectorClosure = Callable[[Dict[Symbol, object], int, Sequence[int]], object]

#: Memoised closures per interned node (equality is identity, so a plain
#: dict keyed on the node is a perfect cache); failures are cached too.
_COMPILED: Dict[Formula, object] = {}
_UNSUPPORTED = object()


def vector_compile(formula: Formula) -> VectorClosure:
    """Compile ``formula`` into a batch closure, or raise :class:`VectorUnsupported`.

    The supported fragment: atoms over linearisable terms, ``Divides`` by a
    non-zero constant, ``And``/``Or``/``Not``/``Implies``/``Iff``/
    ``TrueF``/``FalseF``, and ``Exists``/``Forall`` whose bodies are in the
    fragment.  Everything in it is total once every symbol has a column and
    a quantifier domain is supplied, so the closures return plain verdicts
    with no error channel.
    """
    cached = _COMPILED.get(formula)
    if cached is _UNSUPPORTED:
        raise VectorUnsupported(f"not vectorizable: {formula}")
    if cached is not None:
        return cached  # type: ignore[return-value]
    try:
        closure = _compile(formula)
    except VectorUnsupported:
        _COMPILED[formula] = _UNSUPPORTED
        raise
    _COMPILED[formula] = closure
    return closure


def _compile(formula: Formula) -> VectorClosure:
    np = _numpy()
    if np is None:
        raise VectorUnsupported("numpy is not installed")

    if isinstance(formula, TrueF):
        return lambda cols, n, domain: np.ones(n, dtype=bool)
    if isinstance(formula, FalseF):
        return lambda cols, n, domain: np.zeros(n, dtype=bool)

    if isinstance(formula, Atom):
        value_of = _atom_value_closure(formula.left, formula.right, np)
        compare = _REL_COMPARE[formula.rel]

        def atom_closure(cols, n, domain, _value=value_of, _cmp=compare):
            verdict = _cmp(_value(cols, n, domain))
            if not isinstance(verdict, np.ndarray):  # constant-only atom
                verdict = np.full(n, bool(verdict), dtype=bool)
            return verdict

        return atom_closure

    if isinstance(formula, Divides):
        if formula.divisor == 0:
            # The scalar semantics raise for a zero divisor — outside the
            # total fragment, so leave it to the scalar residue check.
            raise VectorUnsupported("divisibility by zero")
        value_of = _atom_value_closure(formula.term, None, np)
        divisor = formula.divisor

        def divides_closure(cols, n, domain, _value=value_of, _d=divisor):
            verdict = _value(cols, n, domain) % _d == 0
            if not isinstance(verdict, np.ndarray):
                verdict = np.full(n, bool(verdict), dtype=bool)
            return verdict

        return divides_closure

    if isinstance(formula, Not):
        operand = vector_compile(formula.operand)
        return lambda cols, n, domain: ~operand(cols, n, domain)

    if isinstance(formula, (And, Or)):
        operands = [vector_compile(op) for op in formula.operands]
        if not operands:
            truth = isinstance(formula, And)
            return lambda cols, n, domain: np.full(n, truth, dtype=bool)
        if isinstance(formula, And):

            def and_closure(cols, n, domain, _ops=operands):
                result = _ops[0](cols, n, domain)
                for op in _ops[1:]:
                    result = result & op(cols, n, domain)
                return result

            return and_closure

        def or_closure(cols, n, domain, _ops=operands):
            result = _ops[0](cols, n, domain)
            for op in _ops[1:]:
                result = result | op(cols, n, domain)
            return result

        return or_closure

    if isinstance(formula, Implies):
        antecedent = vector_compile(formula.antecedent)
        consequent = vector_compile(formula.consequent)
        return lambda cols, n, domain: ~antecedent(cols, n, domain) | consequent(
            cols, n, domain
        )

    if isinstance(formula, Iff):
        left = vector_compile(formula.left)
        right = vector_compile(formula.right)
        return lambda cols, n, domain: left(cols, n, domain) == right(cols, n, domain)

    if isinstance(formula, (Exists, Forall)):
        body = vector_compile(formula.body)
        symbol = formula.symbol
        existential = isinstance(formula, Exists)
        # Broadcast columns (one constant column per domain value) are
        # read-only, so they are cached per (row count, value) across
        # batches and searches — the domain loop then allocates nothing.
        broadcast_cache: Dict[Tuple[int, int], object] = {}

        def quantifier_closure(cols, n, domain, _body=body, _sym=symbol, _ex=existential):
            if domain is None:
                # Mirrors the tree walker: quantifiers need a domain.  The
                # search paths always supply one; compile-time callers that
                # do not must stay on the scalar backends.
                raise VectorUnsupported("quantifier without a domain")
            saved = cols.get(_sym)
            result = np.zeros(n, dtype=bool) if _ex else np.ones(n, dtype=bool)
            try:
                for value in domain:
                    if abs(value) > MAX_COLUMN_MAGNITUDE:
                        raise VectorUnsupported("quantifier domain value too large")
                    column = broadcast_cache.get((n, value))
                    if column is None:
                        column = np.full(n, value, dtype=np.int64)
                        broadcast_cache[(n, value)] = column
                    cols[_sym] = column
                    verdicts = _body(cols, n, domain)
                    if _ex:
                        result |= verdicts
                        if result.all():
                            break
                    else:
                        result &= verdicts
                        if not result.any():
                            break
            finally:
                if saved is None:
                    cols.pop(_sym, None)
                else:
                    cols[_sym] = saved
            return result

        return quantifier_closure

    raise VectorUnsupported(f"not vectorizable: {formula}")


_REL_COMPARE = {
    Rel.LT: lambda total: total < 0,
    Rel.LE: lambda total: total <= 0,
    Rel.GT: lambda total: total > 0,
    Rel.GE: lambda total: total >= 0,
    Rel.EQ: lambda total: total == 0,
    Rel.NE: lambda total: total != 0,
}

#: Hard ceiling on any intermediate batch value's magnitude: symbols are
#: bounded by MAX_COLUMN_MAGNITUDE, and bound propagation through the term
#: tree refuses anything that could exceed this — so int64 never wraps.
_MAX_TERM_BOUND = 2 ** 62

#: Memoised term closures per interned term node: (closure, magnitude bound).
_TERM_COMPILED: Dict[object, object] = {}


def _compile_term(term, np):
    """Compile a term to a batch closure with a proven magnitude bound.

    Returns ``(closure, bound)`` where ``closure(cols, n, domain)`` yields
    the term's value per row (an int64 array, or a plain int for
    constant-only terms) and ``|value| <= bound`` for every admissible
    column (the :data:`MAX_COLUMN_MAGNITUDE` guard).  Supported: constants,
    symbols, ``Add``/``Sub``/``Mul``/``Min``/``Max`` and ``Ite`` over the
    vectorisable fragment — everything total and exact.  ``Div``/``Mod``
    (may divide by zero) and array reads stay scalar residue.
    """
    cached = _TERM_COMPILED.get(term)
    if cached is _UNSUPPORTED:
        raise VectorUnsupported(f"term not vectorizable: {term}")
    if cached is not None:
        return cached  # type: ignore[return-value]
    try:
        compiled = _compile_term_inner(term, np)
    except VectorUnsupported:
        _TERM_COMPILED[term] = _UNSUPPORTED
        raise
    _TERM_COMPILED[term] = compiled
    return compiled


def _compile_term_inner(term, np):
    from ..logic.formula import Add, Const, Ite, Max, Min, Mul, Sub, SymTerm

    if isinstance(term, Const):
        value = term.value
        return (lambda cols, n, domain: value), abs(value)
    if isinstance(term, SymTerm):
        symbol = term.symbol
        return (lambda cols, n, domain: cols[symbol]), MAX_COLUMN_MAGNITUDE
    if isinstance(term, (Add, Sub, Mul, Min, Max)):
        left, left_bound = _compile_term(term.left, np)
        right, right_bound = _compile_term(term.right, np)
        if isinstance(term, Add):
            bound = left_bound + right_bound
            closure = lambda cols, n, domain: left(cols, n, domain) + right(cols, n, domain)
        elif isinstance(term, Sub):
            bound = left_bound + right_bound
            closure = lambda cols, n, domain: left(cols, n, domain) - right(cols, n, domain)
        elif isinstance(term, Mul):
            bound = left_bound * right_bound
            closure = lambda cols, n, domain: left(cols, n, domain) * right(cols, n, domain)
        else:
            bound = max(left_bound, right_bound)
            fold = np.minimum if isinstance(term, Min) else np.maximum
            closure = lambda cols, n, domain, _fold=fold: _fold(
                left(cols, n, domain), right(cols, n, domain)
            )
        if bound > _MAX_TERM_BOUND:
            raise VectorUnsupported("term magnitude could exceed exact int64")
        return closure, bound
    if isinstance(term, Ite):
        condition = vector_compile(term.condition)
        then_value, then_bound = _compile_term(term.then_term, np)
        else_value, else_bound = _compile_term(term.else_term, np)

        def ite_closure(cols, n, domain):
            # Both branches are total, so evaluating them eagerly (np.where)
            # agrees with the scalar walker's lazy branch selection.
            return np.where(
                condition(cols, n, domain),
                then_value(cols, n, domain),
                else_value(cols, n, domain),
            )

        return ite_closure, max(then_bound, else_bound)
    raise VectorUnsupported(f"term not vectorizable: {term}")


def _atom_value_closure(left, right, np):
    """A batch closure for ``left - right`` (or just ``left`` when right is None).

    Prefers the linearised form — constant folding and merged coefficients
    mean fewer array operations — and falls back to the general term
    compiler for non-linear polynomial atoms (products of symbols,
    min/max, if-then-else).
    """
    try:
        lin = linearize(left) if right is None else linearize(left).subtract(linearize(right))
    except NonLinearError:
        lin = None
    if lin is not None:
        weight = sum(abs(c) for _s, c in lin.coeffs) + abs(lin.constant)
        if weight > _MAX_ATOM_WEIGHT:
            raise VectorUnsupported("atom coefficients too large for exact int64")
        coeffs, constant = lin.coeffs, lin.constant

        def linear_value(cols, n, domain, _coeffs=coeffs, _k=constant):
            total = None
            for symbol, coeff in _coeffs:
                part = cols[symbol] * coeff
                total = part if total is None else total + part
            if total is None:
                return _k
            if _k:
                total = total + _k
            return total

        return linear_value
    left_value, left_bound = _compile_term(left, np)
    if right is None:
        return left_value
    right_value, right_bound = _compile_term(right, np)
    if left_bound + right_bound > _MAX_TERM_BOUND:
        raise VectorUnsupported("atom difference could exceed exact int64")
    return lambda cols, n, domain: left_value(cols, n, domain) - right_value(cols, n, domain)


# ---------------------------------------------------------------------------
# Conjunct plan: split a conjunction into batch mask + scalar residue
# ---------------------------------------------------------------------------


class ConjunctPlan:
    """A conjunction split into a vectorised mask and a scalar residue.

    ``mask(cols, n, domain)`` is the AND of every vectorisable conjunct
    over the batch; ``residue`` lists the conjuncts it could not cover
    (non-linear atoms, arrays-free ``Div``/``Mod``/``Ite`` terms, ...).
    Rows the mask rejects are definitively non-models; rows it accepts
    still owe the residue a scalar check (the caller uses the *full*
    compiled checker there, so accepted rows reproduce the compiled
    backend's behaviour — including its error aborts — exactly).
    """

    __slots__ = ("_closures", "residue", "vector_count")

    def __init__(self, closures: List[VectorClosure], residue: List[Formula]) -> None:
        self._closures = closures
        self.residue = residue
        self.vector_count = len(closures)

    def mask(self, cols: Dict[Symbol, object], n: int, domain: Sequence[int]):
        result = self._closures[0](cols, n, domain)
        for closure in self._closures[1:]:
            if not result.any():
                break
            result = result & closure(cols, n, domain)
        return result


def plan_conjuncts(conjuncts: Sequence[Formula]) -> Optional[ConjunctPlan]:
    """Split ``conjuncts`` for batch evaluation; ``None`` when nothing vectorises."""
    if _numpy() is None:
        return None
    closures: List[VectorClosure] = []
    residue: List[Formula] = []
    for conjunct in conjuncts:
        try:
            closures.append(vector_compile(conjunct))
        except VectorUnsupported:
            residue.append(conjunct)
    if not closures:
        return None
    return ConjunctPlan(closures, residue)


# ---------------------------------------------------------------------------
# Chunked cartesian row generation (itertools.product order)
# ---------------------------------------------------------------------------


def values_vectorizable(
    per_symbol_values: Sequence[Sequence[int]], domain: Sequence[int]
) -> bool:
    """True when every candidate and domain value fits the magnitude guard."""
    for values in per_symbol_values:
        for value in values:
            if abs(value) > MAX_COLUMN_MAGNITUDE:
                return False
    for value in domain:
        if abs(value) > MAX_COLUMN_MAGNITUDE:
            return False
    return True


def candidate_columns(
    symbols: Sequence[Symbol],
    per_symbol_values: Sequence[Sequence[int]],
    start: int,
    stop: int,
) -> Tuple[Dict[Symbol, object], int]:
    """Rows ``[start, stop)`` of the cartesian product, as int64 columns.

    Row ``i`` is exactly the ``i``-th tuple ``itertools.product`` would
    yield over the same value lists (mixed-radix decoding of the row
    index), so the chunked sweep visits assignments in the same order as
    the scalar sweep — the first model found is the same model.
    """
    np = _numpy()
    indices = np.arange(start, stop, dtype=np.int64)
    n = int(stop - start)
    cols: Dict[Symbol, object] = {}
    stride = 1
    for position in range(len(symbols) - 1, -1, -1):
        values = np.asarray(per_symbol_values[position], dtype=np.int64)
        length = len(values)
        cols[symbols[position]] = values[(indices // stride) % length]
        stride *= length
    _VECTOR_STATS.batches += 1
    _VECTOR_STATS.rows_evaluated += n
    telemetry.observe("solver.vector.batch_rows", n)
    return cols, n


# ---------------------------------------------------------------------------
# DNF cube-wave prefilter
# ---------------------------------------------------------------------------


def prefilter_unsat_cubes(
    cubes: Sequence[Sequence[Formula]],
) -> Optional[Sequence[bool]]:
    """Which cubes of a DNF wave are provably UNSAT, decided columnarly.

    Every cube's *hard* linear literals (strict/non-strict inequalities
    and equalities; disequalities and divisibility constraints are soft
    and ignored — dropping constraints is conservative for an UNSAT
    proof) are stacked into one ``rows × symbols`` coefficient matrix.
    Unit rows induce integer lower/upper bounds per (cube, symbol) via
    scattered min/max; a cube is infeasible when a bound pair crosses,
    when a constant row is positive, or when a multi-symbol row's minimum
    over the cube's bound box is still positive.  All three are proofs of
    integer infeasibility, so ``True`` entries can be skipped without
    consulting the cube solver; ``False`` means "no proof", never "SAT".

    Returns ``None`` when numpy is unavailable or the wave has no linear
    rows to reason about.
    """
    np = _numpy()
    if np is None or not cubes:
        return None
    from .lia import cube_inequality_rows

    symbol_index: Dict[Symbol, int] = {}
    entries: List[Tuple[int, Dict[Symbol, int], int]] = []
    for cube_id, cube in enumerate(cubes):
        for coeffs, constant in cube_inequality_rows(cube):
            for symbol in coeffs:
                symbol_index.setdefault(symbol, len(symbol_index))
            entries.append((cube_id, coeffs, constant))
    if not entries:
        return None

    n_cubes, n_rows, n_syms = len(cubes), len(entries), len(symbol_index)
    matrix = np.zeros((n_rows, n_syms), dtype=np.int64)
    constants = np.zeros(n_rows, dtype=np.int64)
    cube_ids = np.zeros(n_rows, dtype=np.int64)
    for row, (cube_id, coeffs, constant) in enumerate(entries):
        cube_ids[row] = cube_id
        constants[row] = constant
        for symbol, coeff in coeffs.items():
            matrix[row, symbol_index[symbol]] = coeff
    _VECTOR_STATS.prefilter_cubes += n_cubes

    if (
        int(np.abs(matrix).max(initial=0)) > _MAX_ATOM_WEIGHT
        or int(np.abs(constants).max(initial=0)) > _MAX_ATOM_WEIGHT
    ):
        return None  # out of the exact-arithmetic envelope: no conclusions

    infeasible = np.zeros(n_cubes, dtype=bool)
    nonzero_counts = np.count_nonzero(matrix, axis=1)

    # Constant rows: k <= 0 must hold, so k > 0 is an immediate refutation.
    constant_rows = nonzero_counts == 0
    if constant_rows.any():
        bad = constant_rows & (constants > 0)
        infeasible[cube_ids[bad]] = True

    # Unit rows (c*x + k <= 0) become integer bounds on x per cube.
    lower = np.full((n_cubes, n_syms), -np.inf)
    upper = np.full((n_cubes, n_syms), np.inf)
    unit_rows = np.flatnonzero(nonzero_counts == 1)
    if unit_rows.size:
        unit_matrix = matrix[unit_rows]
        unit_syms = np.argmax(unit_matrix != 0, axis=1)
        unit_coeffs = unit_matrix[np.arange(unit_rows.size), unit_syms]
        unit_consts = constants[unit_rows]
        unit_cubes = cube_ids[unit_rows]
        positive = unit_coeffs > 0
        if positive.any():
            # c > 0: x <= floor(-k / c)
            bounds = np.floor_divide(-unit_consts[positive], unit_coeffs[positive])
            np.minimum.at(
                upper,
                (unit_cubes[positive], unit_syms[positive]),
                bounds.astype(np.float64),
            )
        negative = ~positive
        if negative.any():
            # c < 0: x >= ceil(-k / c) = -floor(k' / |c|) with k' = -k
            bounds = -np.floor_divide(-unit_consts[negative], -unit_coeffs[negative])
            np.maximum.at(
                lower,
                (unit_cubes[negative], unit_syms[negative]),
                bounds.astype(np.float64),
            )
        infeasible |= (lower > upper).any(axis=1)

    # Multi-symbol rows: if the row's minimum over the cube's bound box is
    # still positive, the row (hence the cube) has no integer solution.
    # Unbounded symbols contribute -inf, which simply yields "no proof".
    wide_rows = np.flatnonzero(nonzero_counts >= 2)
    if wide_rows.size:
        wide_matrix = matrix[wide_rows].astype(np.float64)
        wide_lower = lower[cube_ids[wide_rows]]
        wide_upper = upper[cube_ids[wide_rows]]
        with np.errstate(invalid="ignore"):
            minima = (
                np.where(wide_matrix > 0, wide_matrix * wide_lower, 0.0).sum(axis=1)
                + np.where(wide_matrix < 0, wide_matrix * wide_upper, 0.0).sum(axis=1)
                + constants[wide_rows]
            )
        # Row values are integers, so "min > 0" is safely "min >= 0.5"
        # (NaN from inf arithmetic compares False: no proof, as intended).
        bad = minima >= 0.5
        if bad.any():
            infeasible[cube_ids[wide_rows[bad]]] = True

    count = int(infeasible.sum())
    _VECTOR_STATS.prefilter_unsat += count
    telemetry.count("solver.vector.prefilter.calls")
    if count:
        telemetry.count("solver.vector.prefilter.unsat_cubes", count)
    return infeasible.tolist()


# ---------------------------------------------------------------------------
# Columnar aggregation (Monte Carlo scoring)
# ---------------------------------------------------------------------------


def columnar_sum(values: Sequence[float]) -> float:
    """Sum via a *sequential* numpy reduction — byte-identical to ``sum()``.

    ``np.cumsum`` accumulates left to right, performing exactly the IEEE
    additions Python's ``sum`` performs (``np.sum``'s pairwise reduction
    would not), so scores computed on the vector backend match the scalar
    backends bit for bit.
    """
    np = _numpy()
    if np is None or not values:
        return float(sum(values))
    return float(np.cumsum(np.asarray(values, dtype=np.float64))[-1])


def columnar_max(values: Sequence[float]) -> float:
    """Max over a column (exact — max has no rounding to diverge on)."""
    np = _numpy()
    if np is None or not values:
        return float(max(values)) if values else 0.0
    return float(np.asarray(values, dtype=np.float64).max())
