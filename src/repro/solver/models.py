"""Bounded model search — the solver's fallback for hard formulas.

When a proof obligation falls outside the linear fragment (non-linear
products, unsupported constructs) the main pipeline cannot decide it.  This
module provides a bounded search for satisfying assignments over a small
box of integers.  A found model is a genuine model (so ``SAT`` answers are
sound); exhausting the box proves nothing, so the caller reports ``UNKNOWN``
rather than ``UNSAT``.
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..logic.evaluate import EvaluationError, Valuation, evaluate
from ..logic.formula import Exists, Forall, Formula, Symbol, free_symbols, formula_arrays
from ..logic.traverse import formula_subformulas


def _subformulas(node: Formula) -> Sequence[Formula]:
    """Immediate formula children (And/Or keep theirs in an ``operands`` tuple)."""
    return formula_subformulas(node)


def _evaluation_blowup(formula: Formula, domain_size: int, cap: int = 10**9) -> int:
    """How much more expensive one evaluation is than the formula's size.

    Evaluating ``Forall``/``Exists`` iterates the whole quantifier domain
    (multiplicatively when nested, additively for siblings), so the true
    cost of one assignment check is the recursively weighted node count;
    the blowup is that cost relative to the plain node count, and it drives
    the assignment budget in :func:`bounded_model_search`.  Both counts are
    capped so pathological nestings cannot overflow.
    """

    def measure(node: Formula) -> Tuple[int, int]:
        cost = size = 1
        for child in _subformulas(node):
            child_cost, child_size = measure(child)
            cost = min(cap, cost + child_cost)
            size = min(cap, size + child_size)
        if isinstance(node, (Exists, Forall)):
            cost = min(cap, cost * domain_size)
        return cost, size

    cost, size = measure(formula)
    return max(1, cost // max(1, size))


def _candidate_values(radius: int) -> List[int]:
    """Values ordered by absolute magnitude: 0, 1, -1, 2, -2, ..."""
    values = [0]
    for magnitude in range(1, radius + 1):
        values.append(magnitude)
        values.append(-magnitude)
    return values


def bounded_model_search(
    formula: Formula,
    radius: int = 4,
    max_assignments: int = 200_000,
    quantifier_domain_radius: int = 6,
    max_seconds: Optional[float] = 2.0,
) -> Optional[Dict[Symbol, int]]:
    """Search for a model of ``formula`` with all symbols in ``[-radius, radius]``.

    Returns a satisfying assignment or ``None`` if the bounded search space
    is exhausted (or a budget is reached).  Two budgets apply: the
    assignment count ``max_assignments``, and the wall clock ``max_seconds``
    — each assignment of a quantified formula costs an inner evaluation per
    domain element, so the count alone does not bound work.  A found model
    is still a genuine model; cutting the search short only turns a late
    ``None`` into an early one (the caller reports ``UNKNOWN`` either way).
    Formulas mentioning arrays are not supported here and yield ``None``.
    """
    if formula_arrays(formula):
        return None
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    # Scale the assignment budget by the per-assignment evaluation cost:
    # quantified formulas evaluate their bodies once per domain element
    # (multiplicatively when nested), so expensive formulas get
    # proportionally fewer assignments — and pathological ones none at all
    # — instead of wedging the whole discharge pipeline on one obligation.
    # This guards the closed-formula path too: a fully quantified formula
    # is one "assignment" whose evaluation can still be astronomically deep.
    budget = max_assignments // _evaluation_blowup(formula, len(domain))
    if budget <= 0:
        return None
    if not symbols:
        try:
            return {} if evaluate(formula, Valuation(), domain) else None
        except EvaluationError:
            return None
    values = _candidate_values(radius)
    deadline = time.perf_counter() + max_seconds if max_seconds is not None else None
    for index, assignment in enumerate(itertools.product(values, repeat=len(symbols))):
        budget -= 1
        if budget < 0:
            return None
        if deadline is not None and index % 256 == 0 and time.perf_counter() > deadline:
            return None
        valuation = Valuation(scalars=dict(zip(symbols, assignment)))
        try:
            if evaluate(formula, valuation, domain):
                return dict(zip(symbols, assignment))
        except EvaluationError:
            return None
    return None


def enumerate_models(
    formula: Formula,
    radius: int = 4,
    limit: int = 100,
    quantifier_domain_radius: int = 6,
    candidates: Optional[Dict[Symbol, Sequence[int]]] = None,
) -> List[Dict[Symbol, int]]:
    """Enumerate up to ``limit`` models of ``formula`` within a candidate box.

    By default every free symbol ranges over ``[-radius, radius]``; the
    optional ``candidates`` mapping overrides the candidate value list per
    symbol (the dynamic-semantics enumerator uses this to centre the search
    around the values already in the program state).

    Used by the nondeterminism strategies of the dynamic semantics (to pick
    havoc / relax witnesses) and by the metatheory harness (to enumerate the
    bounded state space).
    """
    if formula_arrays(formula):
        return []
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    models: List[Dict[Symbol, int]] = []
    if not symbols:
        try:
            if evaluate(formula, Valuation(), domain):
                return [{}]
        except EvaluationError:
            return []
        return []
    default_values = _candidate_values(radius)
    per_symbol_values: List[Sequence[int]] = []
    for symbol in symbols:
        if candidates is not None and symbol in candidates:
            # Deduplicate while preserving order.
            seen: List[int] = []
            for value in candidates[symbol]:
                if value not in seen:
                    seen.append(value)
            per_symbol_values.append(seen or default_values)
        else:
            per_symbol_values.append(default_values)
    for assignment in itertools.product(*per_symbol_values):
        valuation = Valuation(scalars=dict(zip(symbols, assignment)))
        try:
            if evaluate(formula, valuation, domain):
                models.append(dict(zip(symbols, assignment)))
                if len(models) >= limit:
                    break
        except EvaluationError:
            return models
    return models
