"""Bounded model search — the solver's fallback for hard formulas.

When a proof obligation falls outside the linear fragment (non-linear
products, unsupported constructs) the main pipeline cannot decide it.  This
module provides a bounded search for satisfying assignments over a small
box of integers.  A found model is a genuine model (so ``SAT`` answers are
sound); exhausting the box proves nothing, so the caller reports ``UNKNOWN``
rather than ``UNSAT``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..logic.evaluate import EvaluationError, Valuation, evaluate
from ..logic.formula import Formula, Symbol, free_symbols, formula_arrays


def _candidate_values(radius: int) -> List[int]:
    """Values ordered by absolute magnitude: 0, 1, -1, 2, -2, ..."""
    values = [0]
    for magnitude in range(1, radius + 1):
        values.append(magnitude)
        values.append(-magnitude)
    return values


def bounded_model_search(
    formula: Formula,
    radius: int = 4,
    max_assignments: int = 200_000,
    quantifier_domain_radius: int = 6,
) -> Optional[Dict[Symbol, int]]:
    """Search for a model of ``formula`` with all symbols in ``[-radius, radius]``.

    Returns a satisfying assignment or ``None`` if the bounded search space
    is exhausted (or the budget ``max_assignments`` is reached).  Formulas
    mentioning arrays are not supported here and yield ``None``.
    """
    if formula_arrays(formula):
        return None
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    if not symbols:
        try:
            return {} if evaluate(formula, Valuation(), domain) else None
        except EvaluationError:
            return None
    values = _candidate_values(radius)
    budget = max_assignments
    for assignment in itertools.product(values, repeat=len(symbols)):
        budget -= 1
        if budget < 0:
            return None
        valuation = Valuation(scalars=dict(zip(symbols, assignment)))
        try:
            if evaluate(formula, valuation, domain):
                return dict(zip(symbols, assignment))
        except EvaluationError:
            return None
    return None


def enumerate_models(
    formula: Formula,
    radius: int = 4,
    limit: int = 100,
    quantifier_domain_radius: int = 6,
    candidates: Optional[Dict[Symbol, Sequence[int]]] = None,
) -> List[Dict[Symbol, int]]:
    """Enumerate up to ``limit`` models of ``formula`` within a candidate box.

    By default every free symbol ranges over ``[-radius, radius]``; the
    optional ``candidates`` mapping overrides the candidate value list per
    symbol (the dynamic-semantics enumerator uses this to centre the search
    around the values already in the program state).

    Used by the nondeterminism strategies of the dynamic semantics (to pick
    havoc / relax witnesses) and by the metatheory harness (to enumerate the
    bounded state space).
    """
    if formula_arrays(formula):
        return []
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    models: List[Dict[Symbol, int]] = []
    if not symbols:
        try:
            if evaluate(formula, Valuation(), domain):
                return [{}]
        except EvaluationError:
            return []
        return []
    default_values = _candidate_values(radius)
    per_symbol_values: List[Sequence[int]] = []
    for symbol in symbols:
        if candidates is not None and symbol in candidates:
            # Deduplicate while preserving order.
            seen: List[int] = []
            for value in candidates[symbol]:
                if value not in seen:
                    seen.append(value)
            per_symbol_values.append(seen or default_values)
        else:
            per_symbol_values.append(default_values)
    for assignment in itertools.product(*per_symbol_values):
        valuation = Valuation(scalars=dict(zip(symbols, assignment)))
        try:
            if evaluate(formula, valuation, domain):
                models.append(dict(zip(symbols, assignment)))
                if len(models) >= limit:
                    break
        except EvaluationError:
            return models
    return models
