"""Bounded model search — the solver's fallback for hard formulas.

When a proof obligation falls outside the linear fragment (non-linear
products, unsupported constructs) the main pipeline cannot decide it.  This
module provides a bounded search for satisfying assignments over a small
box of integers.  A found model is a genuine model (so ``SAT`` answers are
sound); exhausting the box proves nothing, so the caller reports ``UNKNOWN``
rather than ``UNSAT``.

The search is *compiled and pruned* rather than a blind ``values ** n``
interpretation sweep:

* the formula is compiled once into closures
  (:mod:`repro.logic.compile`) and each candidate assignment is checked by
  direct closure calls instead of a recursive tree walk;
* *unit atoms* among the top-level conjuncts — comparisons of one symbol
  against a constant (``x == 3``, ``x >= 1``, ``!(x < 0)``) and
  single-symbol divisibility atoms — are propagated onto each symbol's
  candidate list before the cartesian sweep, shrinking the assignment space
  (often to a single point per pinned symbol);
* conjuncts are checked cheapest-first (by quantifier depth, then node
  count) so inexpensive frequently-failing atoms reject an assignment
  before its quantified conjuncts run their domain loops.

All three are search-space optimisations that never weaken soundness:
pruning only removes assignments that falsify a conjunct (never a model),
and an assignment accepted by the reordered conjunct check satisfies the
conjunction under any order.  When a reordered conjunct raises an
:class:`~repro.logic.evaluate.EvaluationError` the assignment is
re-checked in original operand order, so any error the checker *does*
surface is exactly the tree walker's error for that assignment.

Two deliberate divergences remain at the whole-search level, both in the
same direction — the old blind sweep aborted the entire search (returning
``None``/partial models) when *any* visited evaluation raised, and the new
search can avoid some of those aborts:

* **pruned assignments are never visited** — a sweep the old code aborted
  on (say) a division by zero at ``y = 0`` under the conjunct ``y >= 1``
  runs to completion, because ``y = 0`` is pruned before evaluation;
* **a cheaper conjunct can reject first** — when a reordered cheap
  conjunct returns ``False``, the erroring conjunct the old
  original-order short-circuit would have reached is never evaluated, so
  the assignment is rejected instead of aborting the sweep (the
  original-order re-check only runs when an error actually surfaces).

Every such divergence turns an abort (``UNKNOWN`` to the caller) into a
sound conclusive answer, never the reverse: a model is only ever reported
after its accepting evaluation completed without error.  The case-study
obligation corpus is verified byte-identical (``tests``/CI), and
``TestUnitPropagation::test_pruned_error_assignments_cannot_abort`` pins
the direction.

Under the ``vector`` backend (:mod:`repro.solver.backend`, numpy
installed) the post-prune cartesian space is swept in row *batches*
instead of per-assignment checks: :mod:`repro.solver.vector` evaluates
every linear conjunct for thousands of assignments at once and only the
surviving rows see a scalar closure call.  Accepted rows run the same
compiled checker as above, so models and errors on them are identical;
rows rejected in bulk are never evaluated scalarly, which extends the
pruning divergence (an error-abort the scalar sweep would hit at a
mask-rejected row is skipped — again ``UNKNOWN`` becoming a conclusive
answer, never the reverse).  ``--backend tree`` selects the recursive
tree walker as the checker instead: the slowest path, kept as the
semantic reference for the three-way differential suite.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import telemetry
from ..logic.compile import compile_formula
from ..logic.evaluate import EvaluationError, Valuation, evaluate
from ..logic.formula import (
    And,
    Atom,
    Const,
    Divides,
    Exists,
    Forall,
    Formula,
    Not,
    Rel,
    Symbol,
    SymTerm,
    free_symbols,
    formula_arrays,
    formula_size,
    quantifier_depth,
)
from ..logic.traverse import formula_subformulas
from . import vector
from .backend import active_backend


def _subformulas(node: Formula) -> Sequence[Formula]:
    """Immediate formula children (And/Or keep theirs in an ``operands`` tuple)."""
    return formula_subformulas(node)


def _evaluation_blowup(formula: Formula, domain_size: int, cap: int = 10**9) -> int:
    """How much more expensive one evaluation is than the formula's size.

    Evaluating ``Forall``/``Exists`` iterates the whole quantifier domain
    (multiplicatively when nested, additively for siblings), so the true
    cost of one assignment check is the recursively weighted node count;
    the blowup is that cost relative to the plain node count, and it drives
    the assignment budget in :func:`bounded_model_search`.  Both counts are
    capped so pathological nestings cannot overflow.
    """

    def measure(node: Formula) -> Tuple[int, int]:
        cost = size = 1
        for child in _subformulas(node):
            child_cost, child_size = measure(child)
            cost = min(cap, cost + child_cost)
            size = min(cap, size + child_size)
        if isinstance(node, (Exists, Forall)):
            cost = min(cap, cost * domain_size)
        return cost, size

    cost, size = measure(formula)
    return max(1, cost // max(1, size))


def _candidate_values(radius: int) -> List[int]:
    """Values ordered by absolute magnitude: 0, 1, -1, 2, -2, ..."""
    values = [0]
    for magnitude in range(1, radius + 1):
        values.append(magnitude)
        values.append(-magnitude)
    return values


# ---------------------------------------------------------------------------
# Search statistics (benchmark/report instrumentation)
# ---------------------------------------------------------------------------


class _SearchStats:
    """Counters across every search in this process (prune/throughput rates)."""

    __slots__ = (
        "searches",
        "assignments_evaluated",
        "assignment_space",
        "pruned_space",
        "models_found",
    )

    def __init__(self) -> None:
        self.searches = 0
        self.assignments_evaluated = 0
        self.assignment_space = 0  # product of unpruned candidate-list sizes
        self.pruned_space = 0  # product of pruned candidate-list sizes
        self.models_found = 0


_SEARCH_STATS = _SearchStats()
_SPACE_CAP = 10**12  # keep the space products finite for reporting


def search_stats() -> Dict[str, float]:
    """Model-search counters, including the unit-propagation prune rate."""
    space, pruned = _SEARCH_STATS.assignment_space, _SEARCH_STATS.pruned_space
    return {
        "searches": _SEARCH_STATS.searches,
        "assignments_evaluated": _SEARCH_STATS.assignments_evaluated,
        "assignment_space": space,
        "pruned_space": pruned,
        "prune_rate": (1.0 - pruned / space) if space else 0.0,
        "models_found": _SEARCH_STATS.models_found,
    }


def reset_search_stats() -> None:
    """Zero the search counters."""
    _SEARCH_STATS.searches = 0
    _SEARCH_STATS.assignments_evaluated = 0
    _SEARCH_STATS.assignment_space = 0
    _SEARCH_STATS.pruned_space = 0
    _SEARCH_STATS.models_found = 0


# ---------------------------------------------------------------------------
# Unit-atom propagation
# ---------------------------------------------------------------------------


class _UnitConstraints:
    """Accumulated single-symbol constraints from the top-level conjuncts."""

    __slots__ = ("lower", "upper", "pinned", "excluded", "divisors", "unsatisfiable")

    def __init__(self) -> None:
        self.lower: Optional[int] = None
        self.upper: Optional[int] = None
        self.pinned: Optional[int] = None
        self.excluded: set = set()
        self.divisors: List[int] = []
        self.unsatisfiable = False

    def add(self, rel: Rel, bound: int) -> None:
        if rel is Rel.LT:
            rel, bound = Rel.LE, bound - 1
        elif rel is Rel.GT:
            rel, bound = Rel.GE, bound + 1
        if rel is Rel.LE:
            if self.upper is None or bound < self.upper:
                self.upper = bound
        elif rel is Rel.GE:
            if self.lower is None or bound > self.lower:
                self.lower = bound
        elif rel is Rel.EQ:
            if self.pinned is not None and self.pinned != bound:
                self.unsatisfiable = True
            self.pinned = bound
        elif rel is Rel.NE:
            self.excluded.add(bound)

    def admits(self, value: int) -> bool:
        if self.pinned is not None and value != self.pinned:
            return False
        if self.lower is not None and value < self.lower:
            return False
        if self.upper is not None and value > self.upper:
            return False
        if value in self.excluded:
            return False
        return all(value % divisor == 0 for divisor in self.divisors)


def _flatten_conjuncts(formula: Formula) -> List[Formula]:
    """The top-level conjuncts of ``formula`` (nested ``And`` flattened)."""
    if not isinstance(formula, And):
        return [formula]
    conjuncts: List[Formula] = []
    for operand in formula.operands:
        conjuncts.extend(_flatten_conjuncts(operand))
    return conjuncts


def _unit_atom(conjunct: Formula) -> Optional[Tuple[Symbol, Rel, int]]:
    """Decompose ``conjunct`` as ``symbol rel constant`` if it has that shape."""
    negated = False
    if isinstance(conjunct, Not):
        conjunct, negated = conjunct.operand, True
    if not isinstance(conjunct, Atom):
        return None
    rel = conjunct.rel.negate() if negated else conjunct.rel
    left, right = conjunct.left, conjunct.right
    if isinstance(left, SymTerm) and isinstance(right, Const):
        return left.symbol, rel, right.value
    if isinstance(left, Const) and isinstance(right, SymTerm):
        return right.symbol, _FLIPPED_REL[rel], left.value
    return None


_FLIPPED_REL = {
    Rel.LT: Rel.GT,
    Rel.LE: Rel.GE,
    Rel.GT: Rel.LT,
    Rel.GE: Rel.LE,
    Rel.EQ: Rel.EQ,
    Rel.NE: Rel.NE,
}


def _unit_constraints(conjuncts: Iterable[Formula]) -> Dict[Symbol, _UnitConstraints]:
    """Collect per-symbol unit constraints from the top-level conjuncts."""
    constraints: Dict[Symbol, _UnitConstraints] = {}
    for conjunct in conjuncts:
        unit = _unit_atom(conjunct)
        if unit is not None:
            symbol, rel, bound = unit
            constraints.setdefault(symbol, _UnitConstraints()).add(rel, bound)
            continue
        if (
            isinstance(conjunct, Divides)
            and conjunct.divisor != 0
            and isinstance(conjunct.term, SymTerm)
        ):
            constraints.setdefault(
                conjunct.term.symbol, _UnitConstraints()
            ).divisors.append(conjunct.divisor)
    return constraints


def _prune_values(
    symbols: Sequence[Symbol],
    per_symbol_values: Sequence[Sequence[int]],
    constraints: Dict[Symbol, _UnitConstraints],
) -> Optional[List[List[int]]]:
    """Filter each symbol's candidate list through its unit constraints.

    Preserves candidate order (so the first model found is the first the
    unpruned sweep would find).  Returns ``None`` when some symbol has no
    admissible candidate — the conjunction has no model in the box.
    """
    pruned: List[List[int]] = []
    full_space = kept_space = 1
    for symbol, values in zip(symbols, per_symbol_values):
        constraint = constraints.get(symbol)
        if constraint is None:
            kept = list(values)
        elif constraint.unsatisfiable:
            kept = []
        else:
            kept = [value for value in values if constraint.admits(value)]
        pruned.append(kept)
        full_space = min(_SPACE_CAP, full_space * max(1, len(values)))
        kept_space = min(_SPACE_CAP, kept_space * len(kept))
    _SEARCH_STATS.assignment_space += full_space
    _SEARCH_STATS.pruned_space += kept_space
    if any(not kept for kept in pruned):
        return None
    return pruned


# ---------------------------------------------------------------------------
# Compiled assignment checking
# ---------------------------------------------------------------------------


def _assignment_checker(
    formula: Formula, conjuncts: Sequence[Formula]
) -> Callable[[Dict[Symbol, int], Optional[Sequence[int]]], bool]:
    """A compiled cheap-conjuncts-first satisfaction check for ``formula``.

    Conjuncts run ordered by (quantifier depth, node count): constant-time
    atoms reject an assignment before quantified conjuncts loop over their
    domains.  Reordering cannot change the boolean outcome of a conjunction,
    but it changes which errors surface: a newly-surfaced
    :class:`EvaluationError` triggers a re-check of the whole formula in
    original operand order (reproducing the tree walker exactly for that
    assignment), while an error the reordering *masks* — a cheaper conjunct
    rejected the assignment before the erroring one ran — simply rejects
    the assignment, where the old sweep would have aborted the whole search
    (see the module docstring's divergence notes).

    Under the ``tree`` backend (:mod:`repro.solver.backend`) the checker is
    instead the recursive tree walker on the whole formula in original
    operand order — the semantic reference the differential suite compares
    the compiled and vector backends against.
    """
    if active_backend() == "tree":

        def tree_check(scalars: Dict[Symbol, int], domain: Optional[Sequence[int]]) -> bool:
            return evaluate(formula, Valuation(scalars=dict(scalars)), domain)

        return tree_check
    whole = compile_formula(formula)
    if len(conjuncts) <= 1:
        return lambda scalars, domain: whole(scalars, {}, domain)
    ordered = sorted(
        range(len(conjuncts)),
        key=lambda i: (quantifier_depth(conjuncts[i]), formula_size(conjuncts[i]), i),
    )
    compiled = [compile_formula(conjuncts[i]) for i in ordered]

    def check(scalars: Dict[Symbol, int], domain: Optional[Sequence[int]]) -> bool:
        try:
            for conjunct in compiled:
                if not conjunct(scalars, {}, domain):
                    return False
            return True
        except EvaluationError:
            return whole(scalars, {}, domain)

    return check


# ---------------------------------------------------------------------------
# Columnar (vector-backend) sweeps
# ---------------------------------------------------------------------------


def _vector_plan(
    conjuncts: Sequence[Formula],
    pruned: Sequence[Sequence[int]],
    domain: Sequence[int],
):
    """The batch-evaluation plan for this sweep, or ``None`` to stay scalar.

    ``None`` when the vector backend is not active, nothing in the
    conjunction vectorises, or a candidate/domain value falls outside the
    exact-int64 magnitude guard.
    """
    if active_backend() != "vector":
        return None
    if not vector.values_vectorizable(pruned, domain):
        telemetry.count("solver.backend.vector.scalar_fallbacks")
        vector.note_scalar_fallback()
        return None
    plan = vector.plan_conjuncts(conjuncts)
    if plan is None:
        telemetry.count("solver.backend.vector.scalar_fallbacks")
        vector.note_scalar_fallback()
        return None
    vector.note_search()
    telemetry.count("solver.backend.vector.searches")
    return plan


def _vector_model_search(
    plan: "vector.ConjunctPlan",
    symbols: Sequence[Symbol],
    pruned: Sequence[Sequence[int]],
    check: Callable[[Dict[Symbol, int], Optional[Sequence[int]]], bool],
    domain: Sequence[int],
    budget: int,
    deadline: Optional[float],
) -> Optional[Dict[Symbol, int]]:
    """The chunked columnar sweep behind :func:`bounded_model_search`.

    Row chunks are generated in ``itertools.product`` order; the batch
    mask rejects rows in bulk, and every surviving row is confirmed with
    the *full* scalar checker (so accepted rows — and any errors they
    surface — reproduce the compiled backend exactly).  When the plan has
    no residue the mask is the whole conjunction and is total, so the
    first surviving row is accepted directly.  The budget counts rows
    exactly as the scalar sweep counts assignments; the deadline is
    checked per chunk instead of every 256 rows (both cuts only ever turn
    a late ``None`` into an early one).
    """
    total = 1
    for values in pruned:
        total *= len(values)
    start = 0
    while start < total:
        if budget <= 0:
            return None
        if deadline is not None and time.perf_counter() > deadline:
            return None
        stop = min(total, start + min(vector.BATCH_ROWS, budget))
        cols, rows = vector.candidate_columns(symbols, pruned, start, stop)
        budget -= rows
        _SEARCH_STATS.assignments_evaluated += rows
        mask = plan.mask(cols, rows, domain)
        if mask.any():
            for row in (int(index) for index in mask.nonzero()[0]):
                assignment = {symbol: int(cols[symbol][row]) for symbol in symbols}
                if not plan.residue:
                    _SEARCH_STATS.models_found += 1
                    return assignment
                try:
                    if check(assignment, domain):
                        _SEARCH_STATS.models_found += 1
                        return assignment
                except EvaluationError:
                    return None
        start = stop
    return None


def _vector_enumerate_models(
    plan: "vector.ConjunctPlan",
    symbols: Sequence[Symbol],
    pruned: Sequence[Sequence[int]],
    check: Callable[[Dict[Symbol, int], Optional[Sequence[int]]], bool],
    domain: Sequence[int],
    limit: int,
) -> List[Dict[Symbol, int]]:
    """The columnar sweep behind :func:`enumerate_models` (same contract)."""
    total = 1
    for values in pruned:
        total *= len(values)
    models: List[Dict[Symbol, int]] = []
    start = 0
    while start < total:
        stop = min(total, start + vector.BATCH_ROWS)
        cols, rows = vector.candidate_columns(symbols, pruned, start, stop)
        _SEARCH_STATS.assignments_evaluated += rows
        mask = plan.mask(cols, rows, domain)
        if mask.any():
            for row in (int(index) for index in mask.nonzero()[0]):
                assignment = {symbol: int(cols[symbol][row]) for symbol in symbols}
                if plan.residue:
                    try:
                        if not check(assignment, domain):
                            continue
                    except EvaluationError:
                        return models
                _SEARCH_STATS.models_found += 1
                models.append(assignment)
                if len(models) >= limit:
                    return models
        start = stop
    return models


def bounded_model_search(
    formula: Formula,
    radius: int = 4,
    max_assignments: int = 200_000,
    quantifier_domain_radius: int = 6,
    max_seconds: Optional[float] = 2.0,
) -> Optional[Dict[Symbol, int]]:
    """Search for a model of ``formula`` with all symbols in ``[-radius, radius]``.

    Returns a satisfying assignment or ``None`` if the bounded search space
    is exhausted (or a budget is reached).  Two budgets apply: the
    assignment count ``max_assignments``, and the wall clock ``max_seconds``
    — each assignment of a quantified formula costs an inner evaluation per
    domain element, so the count alone does not bound work.  A found model
    is still a genuine model; cutting the search short only turns a late
    ``None`` into an early one (the caller reports ``UNKNOWN`` either way).
    Formulas mentioning arrays are not supported here and yield ``None``.
    """
    with telemetry.span("solver.bounded_search", radius=radius) as search_span:
        model = _bounded_model_search(
            formula, radius, max_assignments, quantifier_domain_radius, max_seconds
        )
        search_span.set_attribute("found", model is not None)
        return model


def _bounded_model_search(
    formula: Formula,
    radius: int,
    max_assignments: int,
    quantifier_domain_radius: int,
    max_seconds: Optional[float],
) -> Optional[Dict[Symbol, int]]:
    if formula_arrays(formula):
        return None
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    # Scale the assignment budget by the per-assignment evaluation cost:
    # quantified formulas evaluate their bodies once per domain element
    # (multiplicatively when nested), so expensive formulas get
    # proportionally fewer assignments — and pathological ones none at all
    # — instead of wedging the whole discharge pipeline on one obligation.
    # This guards the closed-formula path too: a fully quantified formula
    # is one "assignment" whose evaluation can still be astronomically deep.
    budget = max_assignments // _evaluation_blowup(formula, len(domain))
    telemetry.observe("solver.bounded_search.budget", budget)
    if budget <= 0:
        telemetry.count("solver.bounded_search.starved")
        return None
    _SEARCH_STATS.searches += 1
    telemetry.count("solver.bounded_search.searches")
    conjuncts = _flatten_conjuncts(formula)
    check = _assignment_checker(formula, conjuncts)
    if not symbols:
        try:
            _SEARCH_STATS.assignments_evaluated += 1
            if check({}, domain):
                _SEARCH_STATS.models_found += 1
                return {}
            return None
        except EvaluationError:
            return None
    values = _candidate_values(radius)
    pruned = _prune_values(symbols, [values] * len(symbols), _unit_constraints(conjuncts))
    if pruned is None:
        return None
    deadline = time.perf_counter() + max_seconds if max_seconds is not None else None
    plan = _vector_plan(conjuncts, pruned, domain)
    if plan is not None:
        return _vector_model_search(plan, symbols, pruned, check, domain, budget, deadline)
    scalars: Dict[Symbol, int] = {}
    for index, assignment in enumerate(itertools.product(*pruned)):
        budget -= 1
        if budget < 0:
            return None
        if deadline is not None and index % 256 == 0 and time.perf_counter() > deadline:
            return None
        for symbol, value in zip(symbols, assignment):
            scalars[symbol] = value
        try:
            _SEARCH_STATS.assignments_evaluated += 1
            if check(scalars, domain):
                _SEARCH_STATS.models_found += 1
                return dict(zip(symbols, assignment))
        except EvaluationError:
            return None
    return None


def enumerate_models(
    formula: Formula,
    radius: int = 4,
    limit: int = 100,
    quantifier_domain_radius: int = 6,
    candidates: Optional[Dict[Symbol, Sequence[int]]] = None,
) -> List[Dict[Symbol, int]]:
    """Enumerate up to ``limit`` models of ``formula`` within a candidate box.

    By default every free symbol ranges over ``[-radius, radius]``; the
    optional ``candidates`` mapping overrides the candidate value list per
    symbol (the dynamic-semantics enumerator uses this to centre the search
    around the values already in the program state).  Unit atoms among the
    top-level conjuncts prune each candidate list (order-preserving, so the
    model list matches the unpruned sweep's).

    Used by the nondeterminism strategies of the dynamic semantics (to pick
    havoc / relax witnesses) and by the metatheory harness (to enumerate the
    bounded state space).
    """
    if formula_arrays(formula):
        return []
    symbols = sorted(free_symbols(formula))
    domain = range(-quantifier_domain_radius, quantifier_domain_radius + 1)
    _SEARCH_STATS.searches += 1
    telemetry.count("solver.enumerate_models.calls")
    conjuncts = _flatten_conjuncts(formula)
    check = _assignment_checker(formula, conjuncts)
    models: List[Dict[Symbol, int]] = []
    if not symbols:
        try:
            _SEARCH_STATS.assignments_evaluated += 1
            if check({}, domain):
                _SEARCH_STATS.models_found += 1
                return [{}]
        except EvaluationError:
            return []
        return []
    default_values = _candidate_values(radius)
    per_symbol_values: List[Sequence[int]] = []
    for symbol in symbols:
        if candidates is not None and symbol in candidates:
            # Deduplicate while preserving order.
            seen: List[int] = []
            for value in candidates[symbol]:
                if value not in seen:
                    seen.append(value)
            per_symbol_values.append(seen or default_values)
        else:
            per_symbol_values.append(default_values)
    pruned = _prune_values(symbols, per_symbol_values, _unit_constraints(conjuncts))
    if pruned is None:
        return []
    plan = _vector_plan(conjuncts, pruned, domain)
    if plan is not None:
        return _vector_enumerate_models(plan, symbols, pruned, check, domain, limit)
    scalars: Dict[Symbol, int] = {}
    for assignment in itertools.product(*pruned):
        for symbol, value in zip(symbols, assignment):
            scalars[symbol] = value
        try:
            _SEARCH_STATS.assignments_evaluated += 1
            if check(scalars, domain):
                _SEARCH_STATS.models_found += 1
                models.append(dict(zip(symbols, assignment)))
                if len(models) >= limit:
                    break
        except EvaluationError:
            return models
    return models
