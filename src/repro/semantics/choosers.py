"""Nondeterminism resolution strategies for ``havoc`` and ``relax`` statements.

The dynamic semantics of ``havoc (X) st (e)`` (and, in the relaxed
semantics, ``relax (X) st (e)``) nondeterministically assigns the variables
in ``X`` any values satisfying ``e``.  A concrete interpreter must resolve
that nondeterminism; a :class:`Chooser` encapsulates the policy:

* :class:`SolverChooser` — ask the decision procedure for some satisfying
  assignment (deterministic given the solver's search order),
* :class:`RandomChooser` — sample uniformly among the satisfying
  assignments within a bounded box (seeded, reproducible),
* :class:`MinimalChangeChooser` — prefer keeping the previous values when
  they already satisfy the predicate (models "the relaxed execution follows
  the original unless it chooses otherwise"),
* :class:`FixedChoiceChooser` — replay a scripted sequence of choices
  (used by tests and by the exhaustive execution enumerator),
* :class:`AdversarialChooser` — prefer extreme values within the bounded
  box (useful for stress-testing acceptability properties dynamically).

A chooser returns ``None`` when it cannot find any satisfying assignment;
the interpreter then produces the ``wr`` outcome as required by the
``havoc-f`` rule of Figure 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..lang.ast import BoolExpr, Havoc, Relax, Stmt
from ..lang.analysis import bool_vars
from ..logic.evaluate import EvaluationError, Valuation
from ..logic.evaluate import evaluate as evaluate_formula
from ..logic.formula import Const, Formula, Symbol, SymTerm, conj, eq
from ..logic.translate import formula_of_bool
from ..solver.interface import Solver
from ..solver.models import enumerate_models
from .state import State


ChoiceUpdate = Dict[str, int]


class ChooserError(Exception):
    """Raised when a chooser cannot handle a havoc/relax statement (e.g. an
    array target with a predicate that constrains the array contents)."""


def _predicate_formula(statement, state: State) -> Tuple[Formula, List[Symbol]]:
    """Build the satisfiability query for a havoc/relax statement.

    Returns the predicate formula with non-target variables fixed to their
    current values, together with the target symbols (the unknowns).
    """
    predicate: BoolExpr = statement.predicate
    targets = set(statement.targets)
    formula = formula_of_bool(predicate)
    fixes: List[Formula] = []
    for name in sorted(bool_vars(predicate)):
        if name in targets:
            continue
        if state.has_scalar(name):
            fixes.append(eq(SymTerm(Symbol(name)), Const(state.scalar(name))))
        elif state.has_array(name):
            raise ChooserError(
                f"predicate of {statement} reads array {name!r}; array-valued "
                "havoc/relax predicates must not constrain array contents"
            )
    unknowns = [Symbol(name) for name in statement.targets if not state.has_array(name)]
    return conj(formula, *fixes), unknowns


def _candidate_values_map(
    statement, state: State, radius: int, max_candidates: int = 200
) -> Dict[Symbol, List[int]]:
    """Candidate values per free symbol of a havoc/relax predicate query.

    Non-target variables are pinned to their current value.  Target variables
    get a candidate list centred around every scalar value currently in the
    state (plus zero), widened by ``radius`` in each direction — so a
    predicate such as ``y - e <= x <= y + e`` finds witnesses near ``y`` even
    when ``y`` is far from zero.
    """
    targets = set(statement.targets)
    centres = sorted(set(list(state.scalar_map().values()) + [0]))
    spread: List[int] = []
    for centre in centres:
        for delta in range(-radius, radius + 1):
            value = centre + delta
            if value not in spread:
                spread.append(value)
            if len(spread) >= max_candidates:
                break
        if len(spread) >= max_candidates:
            break
    spread.sort(key=abs)
    candidates: Dict[Symbol, List[int]] = {}
    for name in sorted(bool_vars(statement.predicate) | targets):
        if state.has_array(name):
            continue
        if name in targets:
            candidates[Symbol(name)] = list(spread)
        elif state.has_scalar(name):
            candidates[Symbol(name)] = [state.scalar(name)]
    return candidates


def _scalar_targets(statement, state: State) -> List[str]:
    return [name for name in statement.targets if not state.has_array(name)]


def _array_targets(statement, state: State) -> List[str]:
    return [name for name in statement.targets if state.has_array(name)]


def _check_array_targets_unconstrained(statement, state: State) -> None:
    """Array targets are only supported with predicates that do not read them."""
    predicate_vars = bool_vars(statement.predicate)
    for name in _array_targets(statement, state):
        if name in predicate_vars:
            raise ChooserError(
                f"array {name!r} is a havoc/relax target but the predicate "
                "constrains its contents; this fragment is not supported"
            )


class Chooser:
    """Base class of nondeterminism resolution strategies."""

    def choose(self, statement, state: State) -> Optional[State]:
        """Return a new state satisfying the statement's predicate, or None."""
        raise NotImplementedError

    # Array contents for unconstrained array targets: default keeps them.
    def _apply_array_targets(self, statement, state: State) -> State:
        return state


class SolverChooser(Chooser):
    """Resolve nondeterminism by asking the decision procedure for a model."""

    def __init__(self, solver: Optional[Solver] = None) -> None:
        self._solver = solver or Solver()

    def choose(self, statement, state: State) -> Optional[State]:
        _check_array_targets_unconstrained(statement, state)
        formula, unknowns = _predicate_formula(statement, state)
        result = self._solver.check_sat(formula)
        if not result.is_sat:
            return None
        model = result.model or {}
        updates: ChoiceUpdate = {}
        for name in _scalar_targets(statement, state):
            updates[name] = model.get(Symbol(name), 0)
        new_state = state.set_scalars(updates)
        return self._apply_array_targets(statement, new_state)


class MinimalChangeChooser(Chooser):
    """Keep the current values whenever they already satisfy the predicate.

    This chooser makes the relaxed execution coincide with the original
    execution whenever possible; it falls back to a delegate chooser when
    the current values violate the predicate (or targets are undefined).
    """

    def __init__(self, fallback: Optional[Chooser] = None) -> None:
        self._fallback = fallback or SolverChooser()

    def choose(self, statement, state: State) -> Optional[State]:
        _check_array_targets_unconstrained(statement, state)
        try:
            targets = _scalar_targets(statement, state)
            if all(state.has_scalar(name) for name in targets):
                valuation = Valuation(
                    scalars={Symbol(k): v for k, v in state.scalar_map().items()}
                )
                formula = formula_of_bool(statement.predicate)
                if evaluate_formula(formula, valuation, domain=None):
                    return state
        except EvaluationError:
            pass
        return self._fallback.choose(statement, state)


class RandomChooser(Chooser):
    """Sample uniformly among satisfying assignments within a bounded box."""

    def __init__(self, seed: int = 0, radius: int = 8, limit: int = 256) -> None:
        self._rng = random.Random(seed)
        self._radius = radius
        self._limit = limit
        self._fallback = SolverChooser()

    def choose(self, statement, state: State) -> Optional[State]:
        _check_array_targets_unconstrained(statement, state)
        formula, unknowns = _predicate_formula(statement, state)
        candidates = _candidate_values_map(statement, state, self._radius)
        models = enumerate_models(
            formula, radius=self._radius, limit=self._limit, candidates=candidates
        )
        if not models:
            return self._fallback.choose(statement, state)
        model = self._rng.choice(models)
        updates: ChoiceUpdate = {}
        for name in _scalar_targets(statement, state):
            updates[name] = model.get(Symbol(name), 0)
        new_state = state.set_scalars(updates)
        # Array targets with unconstrained predicates: randomly perturb contents.
        for name in _array_targets(statement, state):
            values = state.array(name)
            perturbed = {
                index: self._rng.randint(-self._radius, self._radius)
                for index in values
            }
            new_state = new_state.set_array(name, perturbed)
        return new_state


class AdversarialChooser(Chooser):
    """Prefer extreme satisfying assignments (stress-tests acceptability).

    ``seed`` controls the tie-break among equally extreme assignments, so
    adversarial simulation runs are reproducible end to end: the same seed
    replays the same choices, different seeds explore different corners of
    the satisfying set.
    """

    def __init__(
        self,
        radius: int = 8,
        limit: int = 512,
        maximize: bool = True,
        seed: int = 0,
    ) -> None:
        self._radius = radius
        self._limit = limit
        self._maximize = maximize
        self._rng = random.Random(seed)
        self._fallback = SolverChooser()

    def choose(self, statement, state: State) -> Optional[State]:
        _check_array_targets_unconstrained(statement, state)
        formula, _unknowns = _predicate_formula(statement, state)
        candidates = _candidate_values_map(statement, state, self._radius)
        models = enumerate_models(
            formula, radius=self._radius, limit=self._limit, candidates=candidates
        )
        if not models:
            return self._fallback.choose(statement, state)
        targets = _scalar_targets(statement, state)

        def score(model: Dict[Symbol, int]) -> int:
            return sum(abs(model.get(Symbol(name), 0)) for name in targets)

        scores = [score(model) for model in models]
        best = max(scores) if self._maximize else min(scores)
        extremes = [
            model for model, value in zip(models, scores) if value == best
        ]
        chosen = self._rng.choice(extremes)
        updates = {name: chosen.get(Symbol(name), 0) for name in targets}
        return state.set_scalars(updates)


class FixedChoiceChooser(Chooser):
    """Replay an explicit sequence of choices (one update dict per havoc/relax).

    Each entry maps target variable names to values (and optionally array
    names to full ``{index: value}`` dictionaries).  When the script is
    exhausted, the fallback chooser takes over.
    """

    def __init__(
        self,
        script: Sequence[Mapping[str, object]],
        fallback: Optional[Chooser] = None,
        strict: bool = False,
    ) -> None:
        self._script = list(script)
        self._position = 0
        self._fallback = fallback or MinimalChangeChooser()
        self._strict = strict

    def choose(self, statement, state: State) -> Optional[State]:
        if self._position >= len(self._script):
            if self._strict:
                raise ChooserError("fixed-choice script exhausted")
            return self._fallback.choose(statement, state)
        entry = self._script[self._position]
        self._position += 1
        new_state = state
        for name, value in entry.items():
            if isinstance(value, Mapping):
                new_state = new_state.set_array(name, dict(value))  # type: ignore[arg-type]
            else:
                new_state = new_state.set_scalar(name, int(value))  # type: ignore[arg-type]
        # Validate the scripted choice against the predicate where possible.
        try:
            valuation = Valuation(
                scalars={Symbol(k): v for k, v in new_state.scalar_map().items()},
                arrays={Symbol(k): dict(v) for k, v in new_state.array_map().items()},
            )
            formula = formula_of_bool(statement.predicate)
            if not evaluate_formula(formula, valuation, domain=None):
                if self._strict:
                    raise ChooserError(
                        f"scripted choice {entry} violates the predicate of {statement}"
                    )
                return self._fallback.choose(statement, state)
        except EvaluationError:
            pass
        return new_state


# ---------------------------------------------------------------------------
# Chooser registry
# ---------------------------------------------------------------------------

#: Policy names accepted by :func:`make_chooser` (and the CLI's ``--chooser``).
CHOOSER_POLICIES = ("random", "adversarial", "minimal", "solver")


def make_chooser(policy: str, seed: int = 0, radius: int = 8) -> Chooser:
    """Construct a chooser by policy name with an explicit seed.

    This is the single point through which the CLI and the explorer build
    nondeterminism strategies, so every simulation run is reproducible from
    ``(policy, seed)`` alone.
    """
    if policy == "random":
        return RandomChooser(seed=seed, radius=radius)
    if policy == "adversarial":
        return AdversarialChooser(radius=radius, seed=seed)
    if policy == "minimal":
        return MinimalChangeChooser()
    if policy == "solver":
        return SolverChooser()
    raise ValueError(
        f"unknown chooser policy {policy!r}; expected one of {CHOOSER_POLICIES}"
    )
