"""Big-step dynamic semantics: the original (⇓o) and relaxed (⇓r) evaluators.

The two semantics (Figures 3 and 4 of the paper) differ in exactly one rule:

* in the **original** semantics, ``relax (X) st (e)`` behaves like
  ``assert e`` — it does not modify the state, but the relaxation predicate
  must hold for the current values (the original execution is required to be
  one of the relaxed executions);
* in the **relaxed** semantics, ``relax (X) st (e)`` behaves like
  ``havoc (X) st (e)`` — it nondeterministically assigns the targets any
  values satisfying ``e``.

Nondeterminism (``havoc`` and, in the relaxed semantics, ``relax``) is
resolved by a :class:`~repro.semantics.choosers.Chooser`.  Failed assertions
and unsatisfiable havocs produce the ``wr`` outcome; failed assumptions
produce ``ba``; both propagate through compound statements.

The interpreter enforces a *fuel* bound on loop iterations so that
executions of non-terminating programs raise :class:`NonTerminationError`
(the paper's metatheory is stated for terminating executions only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..lang.ast import (
    ArrayAssign,
    ArrayRead,
    Assert,
    Assign,
    Assume,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    Compare,
    Expr,
    Havoc,
    If,
    IntLit,
    Not,
    Program,
    Relate,
    Relax,
    Seq,
    Skip,
    Stmt,
    Var,
    While,
)
from .choosers import Chooser, ChooserError, MinimalChangeChooser, SolverChooser
from .state import (
    Observation,
    Outcome,
    State,
    Terminated,
    bad_assume,
    is_error,
    wrong,
)


class NonTerminationError(Exception):
    """Raised when an execution exceeds its loop-iteration fuel."""


class ExpressionError(Exception):
    """Raised internally when expression evaluation fails (undefined variable,
    division by zero, missing array element); converted to ``wr``."""


DEFAULT_FUEL = 100_000


def eval_expr(expr: Expr, state: State) -> int:
    """Evaluate an integer expression in a state (the ⇓E relation)."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, Var):
        try:
            return state.scalar(expr.name)
        except KeyError as error:
            raise ExpressionError(str(error)) from error
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, state)
        right = eval_expr(expr.right, state)
        try:
            return expr.op.apply(left, right)
        except ZeroDivisionError as error:
            raise ExpressionError("division by zero") from error
    if isinstance(expr, ArrayRead):
        index = eval_expr(expr.index, state)
        try:
            return state.array_element(expr.array, index)
        except KeyError as error:
            raise ExpressionError(str(error)) from error
    raise TypeError(f"unknown expression node {expr!r}")


def eval_bool(expr: BoolExpr, state: State) -> bool:
    """Evaluate a boolean expression in a state (the ⇓B relation)."""
    if isinstance(expr, BoolLit):
        return expr.value
    if isinstance(expr, Compare):
        return expr.op.apply(eval_expr(expr.left, state), eval_expr(expr.right, state))
    if isinstance(expr, BoolBin):
        return expr.op.apply(eval_bool(expr.left, state), eval_bool(expr.right, state))
    if isinstance(expr, Not):
        return not eval_bool(expr.operand, state)
    raise TypeError(f"unknown boolean expression node {expr!r}")


@dataclass
class Interpreter:
    """A big-step evaluator for one of the two dynamic semantics.

    ``relaxed=False`` gives the original semantics ⇓o; ``relaxed=True``
    gives the relaxed semantics ⇓r.
    """

    relaxed: bool = False
    chooser: Optional[Chooser] = None
    fuel: int = DEFAULT_FUEL
    #: Statements evaluated by the most recent :meth:`run` — a portable cost
    #: proxy used by the relaxation-space explorer to estimate the work a
    #: relaxed execution saves (e.g. perforated loop iterations).
    steps_executed: int = 0
    #: Total absolute deviation the relaxed semantics introduced at ``relax``
    #: statements (scalar targets only) during the most recent :meth:`run` —
    #: how much nondeterministic freedom the execution exercised, the
    #: explorer's proxy for how aggressive a substrate the candidate admits.
    relax_deviation: int = 0

    def __post_init__(self) -> None:
        if self.chooser is None:
            self.chooser = MinimalChangeChooser() if not self.relaxed else SolverChooser()

    # -- public API -------------------------------------------------------------

    def run(self, program_or_stmt: Union[Program, Stmt], state: State) -> Outcome:
        """Evaluate a program or statement from ``state`` to an outcome."""
        stmt = (
            program_or_stmt.body
            if isinstance(program_or_stmt, Program)
            else program_or_stmt
        )
        self._remaining_fuel = self.fuel
        self.steps_executed = 0
        self.relax_deviation = 0
        return self._eval(stmt, state)

    # -- evaluation --------------------------------------------------------------

    def _eval(self, stmt: Stmt, state: State) -> Outcome:
        self.steps_executed += 1
        if isinstance(stmt, Skip):
            return Terminated(state, ())
        if isinstance(stmt, Assign):
            try:
                value = eval_expr(stmt.value, state)
            except ExpressionError as error:
                return wrong(str(error))
            return Terminated(state.set_scalar(stmt.target, value), ())
        if isinstance(stmt, ArrayAssign):
            try:
                index = eval_expr(stmt.index, state)
                value = eval_expr(stmt.value, state)
            except ExpressionError as error:
                return wrong(str(error))
            return Terminated(state.set_array_element(stmt.array, index, value), ())
        if isinstance(stmt, Havoc):
            return self._eval_havoc(stmt, state)
        if isinstance(stmt, Relax):
            if self.relaxed:
                # Figure 4: relax executes as havoc in the relaxed semantics.
                outcome = self._eval_havoc(stmt, state)
                if isinstance(outcome, Terminated):
                    for name in stmt.targets:
                        if state.has_scalar(name) and outcome.state.has_scalar(name):
                            self.relax_deviation += abs(
                                outcome.state.scalar(name) - state.scalar(name)
                            )
                return outcome
            # Figure 3: in the original semantics relax behaves like assert e.
            return self._eval_assert(Assert(stmt.predicate), state)
        if isinstance(stmt, Assert):
            return self._eval_assert(stmt, state)
        if isinstance(stmt, Assume):
            try:
                holds = eval_bool(stmt.condition, state)
            except ExpressionError as error:
                return wrong(str(error))
            if holds:
                return Terminated(state, ())
            return bad_assume(f"assumption failed: {stmt.condition}")
        if isinstance(stmt, Relate):
            return Terminated(state, (Observation(stmt.label, state),))
        if isinstance(stmt, If):
            try:
                branch_taken = eval_bool(stmt.condition, state)
            except ExpressionError as error:
                return wrong(str(error))
            branch = stmt.then_branch if branch_taken else stmt.else_branch
            return self._eval(branch, state)
        if isinstance(stmt, While):
            return self._eval_while(stmt, state)
        if isinstance(stmt, Seq):
            first = self._eval(stmt.first, state)
            if is_error(first):
                return first
            assert isinstance(first, Terminated)
            second = self._eval(stmt.second, first.state)
            if is_error(second):
                return second
            assert isinstance(second, Terminated)
            return Terminated(second.state, first.observations + second.observations)
        raise TypeError(f"unknown statement node {stmt!r}")

    def _eval_assert(self, stmt: Assert, state: State) -> Outcome:
        try:
            holds = eval_bool(stmt.condition, state)
        except ExpressionError as error:
            return wrong(str(error))
        if holds:
            return Terminated(state, ())
        return wrong(f"assertion failed: {stmt.condition}")

    def _eval_havoc(self, stmt, state: State) -> Outcome:
        assert self.chooser is not None
        try:
            new_state = self.chooser.choose(stmt, state)
        except ChooserError as error:
            return wrong(str(error))
        if new_state is None:
            return wrong(f"no assignment satisfies the predicate of {stmt}")
        try:
            if not eval_bool(stmt.predicate, new_state):
                return wrong(
                    f"chooser produced a state violating the predicate of {stmt}"
                )
        except ExpressionError:
            # Predicates over array contents cannot always be re-checked here;
            # the chooser is trusted for those.
            pass
        return Terminated(new_state, ())

    def _eval_while(self, stmt: While, state: State) -> Outcome:
        observations: Tuple[Observation, ...] = ()
        current = state
        while True:
            if self._remaining_fuel <= 0:
                raise NonTerminationError(
                    f"loop exceeded the fuel bound of {self.fuel} iterations"
                )
            self._remaining_fuel -= 1
            try:
                continue_loop = eval_bool(stmt.condition, current)
            except ExpressionError as error:
                return wrong(str(error))
            if not continue_loop:
                return Terminated(current, observations)
            body_outcome = self._eval(stmt.body, current)
            if is_error(body_outcome):
                return body_outcome
            assert isinstance(body_outcome, Terminated)
            observations = observations + body_outcome.observations
            current = body_outcome.state


def run_original(
    program_or_stmt: Union[Program, Stmt],
    state: State,
    chooser: Optional[Chooser] = None,
    fuel: int = DEFAULT_FUEL,
) -> Outcome:
    """Evaluate under the dynamic original semantics ⇓o."""
    return Interpreter(relaxed=False, chooser=chooser, fuel=fuel).run(program_or_stmt, state)


def run_relaxed(
    program_or_stmt: Union[Program, Stmt],
    state: State,
    chooser: Optional[Chooser] = None,
    fuel: int = DEFAULT_FUEL,
) -> Outcome:
    """Evaluate under the dynamic relaxed semantics ⇓r."""
    return Interpreter(relaxed=True, chooser=chooser, fuel=fuel).run(program_or_stmt, state)
