"""Big-step dynamic semantics: the original (⇓o) and relaxed (⇓r) evaluators.

The two semantics (Figures 3 and 4 of the paper) differ in exactly one rule:

* in the **original** semantics, ``relax (X) st (e)`` behaves like
  ``assert e`` — it does not modify the state, but the relaxation predicate
  must hold for the current values (the original execution is required to be
  one of the relaxed executions);
* in the **relaxed** semantics, ``relax (X) st (e)`` behaves like
  ``havoc (X) st (e)`` — it nondeterministically assigns the targets any
  values satisfying ``e``.

Nondeterminism (``havoc`` and, in the relaxed semantics, ``relax``) is
resolved by a :class:`~repro.semantics.choosers.Chooser`.  Failed assertions
and unsatisfiable havocs produce the ``wr`` outcome; failed assumptions
produce ``ba``; both propagate through compound statements.

The interpreter enforces a *fuel* bound on loop iterations so that
executions of non-terminating programs raise :class:`NonTerminationError`
(the paper's metatheory is stated for terminating executions only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from ..lang.ast import (
    ArrayAssign,
    ArrayRead,
    Assert,
    Assign,
    Assume,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    Compare,
    Expr,
    Havoc,
    If,
    IntLit,
    Not,
    Program,
    Relate,
    Relax,
    Seq,
    Skip,
    Stmt,
    Var,
    While,
)
from .choosers import Chooser, ChooserError, MinimalChangeChooser, SolverChooser
from .state import (
    Observation,
    Outcome,
    State,
    Terminated,
    bad_assume,
    is_error,
    wrong,
)


class NonTerminationError(Exception):
    """Raised when an execution exceeds its loop-iteration fuel."""


class ExpressionError(Exception):
    """Raised internally when expression evaluation fails (undefined variable,
    division by zero, missing array element); converted to ``wr``."""


DEFAULT_FUEL = 100_000


# ---------------------------------------------------------------------------
# Compiled expressions
#
# ``eval_expr``/``eval_bool`` are the innermost operations of every dynamic
# hot path — the interpreter, the exhaustive execution enumerator and the
# Monte Carlo scoring loops all evaluate the *same* expression nodes under
# thousands of different states.  Each distinct node is therefore compiled
# once into a closure ``state -> value`` and reused.  Program AST nodes are
# plain frozen dataclasses (not hash-consed like the logic IR), so the cache
# is keyed by object identity; the cached entry keeps a strong reference to
# the node, which both pins the id (no reuse while cached) and matches the
# lifetime of programs under test/exploration.
# ---------------------------------------------------------------------------

_EXPR_CACHE: Dict[int, Tuple[Expr, Callable[[State], int]]] = {}
_BOOL_CACHE: Dict[int, Tuple[BoolExpr, Callable[[State], bool]]] = {}

#: Flush threshold: the strong references would otherwise pin every AST node
#: ever evaluated (a long explorer run scores thousands of candidate
#: programs).  Recompilation is cheap, so overflowing simply clears the
#: cache — a crude but safe bound; the common working set (one candidate's
#: expressions across all its samples/policies) is far below it.
_CACHE_LIMIT = 65_536


def expr_cache_stats() -> Dict[str, int]:
    """Sizes of the compiled-expression caches (tests/benchmarks)."""
    return {"exprs": len(_EXPR_CACHE), "bools": len(_BOOL_CACHE)}


def clear_expr_cache() -> None:
    """Drop every compiled expression (releases the cached AST references)."""
    _EXPR_CACHE.clear()
    _BOOL_CACHE.clear()


def _build_expr(expr: Expr) -> Callable[[State], int]:
    if isinstance(expr, IntLit):
        value = expr.value
        return lambda state: value
    if isinstance(expr, Var):
        name = expr.name

        def run_var(state: State) -> int:
            try:
                return state.scalar(name)
            except KeyError as error:
                raise ExpressionError(str(error)) from error

        return run_var
    if isinstance(expr, BinOp):
        left = _compiled_expr(expr.left)
        right = _compiled_expr(expr.right)
        apply = expr.op.apply

        def run_binop(state: State) -> int:
            try:
                return apply(left(state), right(state))
            except ZeroDivisionError as error:
                raise ExpressionError("division by zero") from error

        return run_binop
    if isinstance(expr, ArrayRead):
        array = expr.array
        index_fn = _compiled_expr(expr.index)

        def run_read(state: State) -> int:
            index = index_fn(state)
            try:
                return state.array_element(array, index)
            except KeyError as error:
                raise ExpressionError(str(error)) from error

        return run_read
    raise TypeError(f"unknown expression node {expr!r}")


def _build_bool(expr: BoolExpr) -> Callable[[State], bool]:
    if isinstance(expr, BoolLit):
        value = expr.value
        return lambda state: value
    if isinstance(expr, Compare):
        left = _compiled_expr(expr.left)
        right = _compiled_expr(expr.right)
        apply = expr.op.apply
        return lambda state: apply(left(state), right(state))
    if isinstance(expr, BoolBin):
        # Both operands are evaluated (no short-circuit), matching the
        # paper's total ⇓B relation: an error in the right operand surfaces
        # even when the left already decides the connective.
        left = _compiled_bool(expr.left)
        right = _compiled_bool(expr.right)
        apply = expr.op.apply
        return lambda state: apply(left(state), right(state))
    if isinstance(expr, Not):
        operand = _compiled_bool(expr.operand)
        return lambda state: not operand(state)
    raise TypeError(f"unknown boolean expression node {expr!r}")


def _compiled_expr(expr: Expr) -> Callable[[State], int]:
    entry = _EXPR_CACHE.get(id(expr))
    if entry is not None:
        return entry[1]
    fn = _build_expr(expr)
    if len(_EXPR_CACHE) >= _CACHE_LIMIT:
        _EXPR_CACHE.clear()
    _EXPR_CACHE[id(expr)] = (expr, fn)
    return fn


def _compiled_bool(expr: BoolExpr) -> Callable[[State], bool]:
    entry = _BOOL_CACHE.get(id(expr))
    if entry is not None:
        return entry[1]
    fn = _build_bool(expr)
    if len(_BOOL_CACHE) >= _CACHE_LIMIT:
        _BOOL_CACHE.clear()
    _BOOL_CACHE[id(expr)] = (expr, fn)
    return fn


def eval_expr(expr: Expr, state: State) -> int:
    """Evaluate an integer expression in a state (the ⇓E relation)."""
    return _compiled_expr(expr)(state)


def eval_bool(expr: BoolExpr, state: State) -> bool:
    """Evaluate a boolean expression in a state (the ⇓B relation)."""
    return _compiled_bool(expr)(state)


def precompile_program(program_or_stmt: Union[Program, Stmt]) -> int:
    """Compile every expression of a program into the closure caches.

    Walks the statement tree and compiles each integer/boolean expression,
    so subsequent executions (all samples, all policies of a scoring run)
    pay zero compilation cost inside their loops.  Returns the number of
    statements visited.  Idempotent and cheap when already compiled.
    """
    stmt = (
        program_or_stmt.body
        if isinstance(program_or_stmt, Program)
        else program_or_stmt
    )
    visited = 0
    worklist = [stmt]
    while worklist:
        node = worklist.pop()
        visited += 1
        if isinstance(node, Assign):
            _compiled_expr(node.value)
        elif isinstance(node, ArrayAssign):
            _compiled_expr(node.index)
            _compiled_expr(node.value)
        elif isinstance(node, (Assert, Assume)):
            _compiled_bool(node.condition)
        elif isinstance(node, (Havoc, Relax)):
            _compiled_bool(node.predicate)
        elif isinstance(node, If):
            _compiled_bool(node.condition)
            worklist.append(node.then_branch)
            worklist.append(node.else_branch)
        elif isinstance(node, While):
            _compiled_bool(node.condition)
            worklist.append(node.body)
        elif isinstance(node, Seq):
            worklist.append(node.first)
            worklist.append(node.second)
        # Skip and Relate evaluate no unary expressions (a Relate predicate
        # is relational and checked by the observation layer, not here).
    return visited


@dataclass
class Interpreter:
    """A big-step evaluator for one of the two dynamic semantics.

    ``relaxed=False`` gives the original semantics ⇓o; ``relaxed=True``
    gives the relaxed semantics ⇓r.
    """

    relaxed: bool = False
    chooser: Optional[Chooser] = None
    fuel: int = DEFAULT_FUEL
    #: Statements evaluated by the most recent :meth:`run` — a portable cost
    #: proxy used by the relaxation-space explorer to estimate the work a
    #: relaxed execution saves (e.g. perforated loop iterations).
    steps_executed: int = 0
    #: Total absolute deviation the relaxed semantics introduced at ``relax``
    #: statements (scalar targets only) during the most recent :meth:`run` —
    #: how much nondeterministic freedom the execution exercised, the
    #: explorer's proxy for how aggressive a substrate the candidate admits.
    relax_deviation: int = 0

    def __post_init__(self) -> None:
        if self.chooser is None:
            self.chooser = MinimalChangeChooser() if not self.relaxed else SolverChooser()

    # -- public API -------------------------------------------------------------

    def run(self, program_or_stmt: Union[Program, Stmt], state: State) -> Outcome:
        """Evaluate a program or statement from ``state`` to an outcome."""
        stmt = (
            program_or_stmt.body
            if isinstance(program_or_stmt, Program)
            else program_or_stmt
        )
        self._remaining_fuel = self.fuel
        self.steps_executed = 0
        self.relax_deviation = 0
        return self._eval(stmt, state)

    # -- evaluation --------------------------------------------------------------

    def _eval(self, stmt: Stmt, state: State) -> Outcome:
        self.steps_executed += 1
        if isinstance(stmt, Skip):
            return Terminated(state, ())
        if isinstance(stmt, Assign):
            try:
                value = eval_expr(stmt.value, state)
            except ExpressionError as error:
                return wrong(str(error))
            return Terminated(state.set_scalar(stmt.target, value), ())
        if isinstance(stmt, ArrayAssign):
            try:
                index = eval_expr(stmt.index, state)
                value = eval_expr(stmt.value, state)
            except ExpressionError as error:
                return wrong(str(error))
            return Terminated(state.set_array_element(stmt.array, index, value), ())
        if isinstance(stmt, Havoc):
            return self._eval_havoc(stmt, state)
        if isinstance(stmt, Relax):
            if self.relaxed:
                # Figure 4: relax executes as havoc in the relaxed semantics.
                outcome = self._eval_havoc(stmt, state)
                if isinstance(outcome, Terminated):
                    for name in stmt.targets:
                        if state.has_scalar(name) and outcome.state.has_scalar(name):
                            self.relax_deviation += abs(
                                outcome.state.scalar(name) - state.scalar(name)
                            )
                return outcome
            # Figure 3: in the original semantics relax behaves like assert e.
            return self._eval_assert(Assert(stmt.predicate), state)
        if isinstance(stmt, Assert):
            return self._eval_assert(stmt, state)
        if isinstance(stmt, Assume):
            try:
                holds = eval_bool(stmt.condition, state)
            except ExpressionError as error:
                return wrong(str(error))
            if holds:
                return Terminated(state, ())
            return bad_assume(f"assumption failed: {stmt.condition}")
        if isinstance(stmt, Relate):
            return Terminated(state, (Observation(stmt.label, state),))
        if isinstance(stmt, If):
            try:
                branch_taken = eval_bool(stmt.condition, state)
            except ExpressionError as error:
                return wrong(str(error))
            branch = stmt.then_branch if branch_taken else stmt.else_branch
            return self._eval(branch, state)
        if isinstance(stmt, While):
            return self._eval_while(stmt, state)
        if isinstance(stmt, Seq):
            first = self._eval(stmt.first, state)
            if is_error(first):
                return first
            assert isinstance(first, Terminated)
            second = self._eval(stmt.second, first.state)
            if is_error(second):
                return second
            assert isinstance(second, Terminated)
            return Terminated(second.state, first.observations + second.observations)
        raise TypeError(f"unknown statement node {stmt!r}")

    def _eval_assert(self, stmt: Assert, state: State) -> Outcome:
        try:
            holds = eval_bool(stmt.condition, state)
        except ExpressionError as error:
            return wrong(str(error))
        if holds:
            return Terminated(state, ())
        return wrong(f"assertion failed: {stmt.condition}")

    def _eval_havoc(self, stmt, state: State) -> Outcome:
        assert self.chooser is not None
        try:
            new_state = self.chooser.choose(stmt, state)
        except ChooserError as error:
            return wrong(str(error))
        if new_state is None:
            return wrong(f"no assignment satisfies the predicate of {stmt}")
        try:
            if not eval_bool(stmt.predicate, new_state):
                return wrong(
                    f"chooser produced a state violating the predicate of {stmt}"
                )
        except ExpressionError:
            # Predicates over array contents cannot always be re-checked here;
            # the chooser is trusted for those.
            pass
        return Terminated(new_state, ())

    def _eval_while(self, stmt: While, state: State) -> Outcome:
        observations: Tuple[Observation, ...] = ()
        current = state
        while True:
            if self._remaining_fuel <= 0:
                raise NonTerminationError(
                    f"loop exceeded the fuel bound of {self.fuel} iterations"
                )
            self._remaining_fuel -= 1
            try:
                continue_loop = eval_bool(stmt.condition, current)
            except ExpressionError as error:
                return wrong(str(error))
            if not continue_loop:
                return Terminated(current, observations)
            body_outcome = self._eval(stmt.body, current)
            if is_error(body_outcome):
                return body_outcome
            assert isinstance(body_outcome, Terminated)
            observations = observations + body_outcome.observations
            current = body_outcome.state


def run_original(
    program_or_stmt: Union[Program, Stmt],
    state: State,
    chooser: Optional[Chooser] = None,
    fuel: int = DEFAULT_FUEL,
) -> Outcome:
    """Evaluate under the dynamic original semantics ⇓o."""
    return Interpreter(relaxed=False, chooser=chooser, fuel=fuel).run(program_or_stmt, state)


def run_relaxed(
    program_or_stmt: Union[Program, Stmt],
    state: State,
    chooser: Optional[Chooser] = None,
    fuel: int = DEFAULT_FUEL,
) -> Outcome:
    """Evaluate under the dynamic relaxed semantics ⇓r."""
    return Interpreter(relaxed=True, chooser=chooser, fuel=fuel).run(program_or_stmt, state)
