"""Observational compatibility of original and relaxed executions (Theorem 6).

Executing a ``relate l : e*`` statement emits the observation ``(l, σ)``.
Two observation lists ``ψ1`` (from an original execution) and ``ψ2`` (from a
relaxed execution) are *observationally compatible* with respect to the
label map ``Γ`` — written ``Γ ⊢ ψ1 ∼ ψ2`` — when they have the same length,
corresponding observations carry the same label, and the label's relational
boolean expression evaluates to true over the pair of recorded states.

Theorem 6 of the paper states that a program verified under the axiomatic
relaxed semantics only produces compatible observation lists; the
metatheory harness checks this dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..lang.analysis import gamma as build_gamma
from ..lang.ast import Program, RelBoolExpr
from ..logic.evaluate import EvaluationError, Valuation, evaluate
from ..logic.formula import Symbol, Tag
from ..logic.translate import formula_of_rel_bool
from .state import Observation, ObservationList, State


@dataclass(frozen=True)
class CompatibilityResult:
    """The outcome of checking ``Γ ⊢ ψ1 ∼ ψ2``."""

    compatible: bool
    reason: str = ""
    failing_index: Optional[int] = None

    def __bool__(self) -> bool:
        return self.compatible


def pair_valuation(original: State, relaxed: State) -> Valuation:
    """Build the logic valuation for a pair of states (σo, σr)."""
    scalars: Dict[Symbol, int] = {}
    arrays: Dict[Symbol, Dict[int, int]] = {}
    for name, value in original.scalars:
        scalars[Symbol(name, Tag.ORIGINAL)] = value
    for name, value in relaxed.scalars:
        scalars[Symbol(name, Tag.RELAXED)] = value
    for name, values in original.arrays:
        arrays[Symbol(name, Tag.ORIGINAL)] = dict(values)
    for name, values in relaxed.arrays:
        arrays[Symbol(name, Tag.RELAXED)] = dict(values)
    return Valuation(scalars=scalars, arrays=arrays)


def relational_holds(condition: RelBoolExpr, original: State, relaxed: State) -> bool:
    """Evaluate a relational boolean expression over a pair of states."""
    formula = formula_of_rel_bool(condition)
    valuation = pair_valuation(original, relaxed)
    try:
        return evaluate(formula, valuation)
    except EvaluationError:
        return False


def check_compatibility(
    gamma: Mapping[str, RelBoolExpr],
    original_observations: ObservationList,
    relaxed_observations: ObservationList,
) -> CompatibilityResult:
    """Check the observational compatibility relation ``Γ ⊢ ψ1 ∼ ψ2``."""
    if len(original_observations) != len(relaxed_observations):
        return CompatibilityResult(
            False,
            reason=(
                "observation lists have different lengths: "
                f"{len(original_observations)} vs {len(relaxed_observations)}"
            ),
        )
    for index, (obs_o, obs_r) in enumerate(
        zip(original_observations, relaxed_observations)
    ):
        if obs_o.label != obs_r.label:
            return CompatibilityResult(
                False,
                reason=f"labels differ at position {index}: {obs_o.label} vs {obs_r.label}",
                failing_index=index,
            )
        condition = gamma.get(obs_o.label)
        if condition is None:
            return CompatibilityResult(
                False,
                reason=f"label {obs_o.label!r} has no relate statement in the program",
                failing_index=index,
            )
        if not relational_holds(condition, obs_o.state, obs_r.state):
            return CompatibilityResult(
                False,
                reason=(
                    f"relate {obs_o.label!r} violated: condition {condition} does not "
                    f"hold for states {obs_o.state} / {obs_r.state}"
                ),
                failing_index=index,
            )
    return CompatibilityResult(True)


def check_program_compatibility(
    program: Program,
    original_observations: ObservationList,
    relaxed_observations: ObservationList,
) -> CompatibilityResult:
    """Convenience wrapper building ``Γ`` from the program."""
    return check_compatibility(
        build_gamma(program), original_observations, relaxed_observations
    )
