"""Dynamic semantics: original (⇓o) and relaxed (⇓r) big-step evaluation.

Implements Figures 3 and 4 of the paper: program states, the error outcomes
``ba`` / ``wr``, observation lists emitted by ``relate`` statements, the two
interpreters (differing only in the treatment of ``relax``), nondeterminism
resolution strategies, exhaustive bounded execution enumeration, and the
observational compatibility relation of Theorem 6.
"""

from . import choosers, enumerate, interpreter, observation, state
from .choosers import (
    CHOOSER_POLICIES,
    AdversarialChooser,
    Chooser,
    ChooserError,
    FixedChoiceChooser,
    MinimalChangeChooser,
    RandomChooser,
    SolverChooser,
    make_chooser,
)
from .enumerate import EnumerationBudgetError, EnumerationConfig, enumerate_executions
from .interpreter import (
    DEFAULT_FUEL,
    Interpreter,
    NonTerminationError,
    eval_bool,
    eval_expr,
    run_original,
    run_relaxed,
)
from .observation import (
    CompatibilityResult,
    check_compatibility,
    check_program_compatibility,
    pair_valuation,
    relational_holds,
)
from .state import (
    BAD_ASSUME,
    ErrorKind,
    ErrorOutcome,
    Observation,
    ObservationList,
    Outcome,
    State,
    Terminated,
    WRONG,
    bad_assume,
    is_bad_assume,
    is_error,
    is_wrong,
    wrong,
)

__all__ = [
    "choosers",
    "enumerate",
    "interpreter",
    "observation",
    "state",
    "AdversarialChooser",
    "CHOOSER_POLICIES",
    "Chooser",
    "ChooserError",
    "FixedChoiceChooser",
    "MinimalChangeChooser",
    "RandomChooser",
    "SolverChooser",
    "make_chooser",
    "EnumerationBudgetError",
    "EnumerationConfig",
    "enumerate_executions",
    "DEFAULT_FUEL",
    "Interpreter",
    "NonTerminationError",
    "eval_bool",
    "eval_expr",
    "run_original",
    "run_relaxed",
    "CompatibilityResult",
    "check_compatibility",
    "check_program_compatibility",
    "pair_valuation",
    "relational_holds",
    "BAD_ASSUME",
    "ErrorKind",
    "ErrorOutcome",
    "Observation",
    "ObservationList",
    "Outcome",
    "State",
    "Terminated",
    "WRONG",
    "bad_assume",
    "is_bad_assume",
    "is_error",
    "is_wrong",
    "wrong",
]
