"""Program states, observations and output configurations (Section 2.2).

A state ``σ`` is a finite map from variables to integers (extended here
with named integer arrays, the array extension of Section 5).  An output
configuration ``φ`` is one of

* ``ba`` — the execution failed at an ``assume`` statement,
* ``wr`` — the execution failed at an ``assert``/``havoc`` statement or on a
  runtime error (division by zero, out-of-domain array read),
* ``(σ, ψ)`` — normal termination in state ``σ`` with observation list ``ψ``.

Each executed ``relate l : e*`` statement emits the observation ``(l, σ)``.
The paper's ``seq`` rule concatenates observation lists as ``ψ2.ψ1``; we
store observations in chronological order, which is an isomorphic
presentation (both executions use the same order, so the observational
compatibility relation of Theorem 6 is unchanged).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union


@dataclass(frozen=True)
class State:
    """An immutable program state: scalars and integer arrays."""

    scalars: Tuple[Tuple[str, int], ...] = ()
    arrays: Tuple[Tuple[str, Tuple[Tuple[int, int], ...]], ...] = ()

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def of(
        scalars: Optional[Mapping[str, int]] = None,
        arrays: Optional[Mapping[str, Mapping[int, int]]] = None,
    ) -> "State":
        scalar_items = tuple(sorted((scalars or {}).items()))
        array_items = tuple(
            sorted(
                (name, tuple(sorted(values.items())))
                for name, values in (arrays or {}).items()
            )
        )
        return State(scalar_items, array_items)

    # -- reads ----------------------------------------------------------------

    def scalar_map(self) -> Dict[str, int]:
        return dict(self.scalars)

    def array_map(self) -> Dict[str, Dict[int, int]]:
        return {name: dict(values) for name, values in self.arrays}

    def has_scalar(self, name: str) -> bool:
        return any(key == name for key, _ in self.scalars)

    def scalar(self, name: str) -> int:
        for key, value in self.scalars:
            if key == name:
                return value
        raise KeyError(f"variable {name!r} is not defined in this state")

    def has_array(self, name: str) -> bool:
        return any(key == name for key, _ in self.arrays)

    def array(self, name: str) -> Dict[int, int]:
        for key, values in self.arrays:
            if key == name:
                return dict(values)
        raise KeyError(f"array {name!r} is not defined in this state")

    def array_element(self, name: str, index: int) -> int:
        values = self.array(name)
        if index not in values:
            raise KeyError(f"array {name!r} has no element at index {index}")
        return values[index]

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.scalars)

    def array_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.arrays)

    # -- writes (functional updates) --------------------------------------------

    def set_scalar(self, name: str, value: int) -> "State":
        scalars = self.scalar_map()
        scalars[name] = value
        return State.of(scalars, self.array_map())

    def set_scalars(self, updates: Mapping[str, int]) -> "State":
        scalars = self.scalar_map()
        scalars.update(updates)
        return State.of(scalars, self.array_map())

    def set_array(self, name: str, values: Mapping[int, int]) -> "State":
        arrays = self.array_map()
        arrays[name] = dict(values)
        return State.of(self.scalar_map(), arrays)

    def set_array_element(self, name: str, index: int, value: int) -> "State":
        arrays = self.array_map()
        if name not in arrays:
            arrays[name] = {}
        arrays[name][index] = value
        return State.of(self.scalar_map(), arrays)

    def __str__(self) -> str:
        scalar_text = ", ".join(f"{k}={v}" for k, v in self.scalars)
        array_text = ", ".join(
            f"{name}=[{', '.join(f'{i}:{v}' for i, v in values)}]"
            for name, values in self.arrays
        )
        parts = [p for p in (scalar_text, array_text) if p]
        return "{" + "; ".join(parts) + "}"


@dataclass(frozen=True)
class Observation:
    """An observation ``(l, σ)`` emitted by a ``relate`` statement."""

    label: str
    state: State


ObservationList = Tuple[Observation, ...]


class ErrorKind(enum.Enum):
    """The two error outcomes of the dynamic semantics."""

    BAD_ASSUME = "ba"
    WRONG = "wr"


@dataclass(frozen=True)
class ErrorOutcome:
    """An error configuration (``ba`` or ``wr``)."""

    kind: ErrorKind
    message: str = ""

    @property
    def is_bad_assume(self) -> bool:
        return self.kind is ErrorKind.BAD_ASSUME

    @property
    def is_wrong(self) -> bool:
        return self.kind is ErrorKind.WRONG

    def __str__(self) -> str:
        suffix = f" ({self.message})" if self.message else ""
        return f"{self.kind.value}{suffix}"


@dataclass(frozen=True)
class Terminated:
    """Normal termination ``(σ, ψ)``."""

    state: State
    observations: ObservationList = ()

    def __str__(self) -> str:
        return f"<{self.state}, {len(self.observations)} observations>"


Outcome = Union[ErrorOutcome, Terminated]

BAD_ASSUME = ErrorOutcome(ErrorKind.BAD_ASSUME)
WRONG = ErrorOutcome(ErrorKind.WRONG)


def bad_assume(message: str = "") -> ErrorOutcome:
    return ErrorOutcome(ErrorKind.BAD_ASSUME, message)


def wrong(message: str = "") -> ErrorOutcome:
    return ErrorOutcome(ErrorKind.WRONG, message)


def is_error(outcome: Outcome) -> bool:
    """The paper's ``err(φ)`` predicate: φ = wr or φ = ba."""
    return isinstance(outcome, ErrorOutcome)


def is_wrong(outcome: Outcome) -> bool:
    return isinstance(outcome, ErrorOutcome) and outcome.is_wrong


def is_bad_assume(outcome: Outcome) -> bool:
    return isinstance(outcome, ErrorOutcome) and outcome.is_bad_assume
