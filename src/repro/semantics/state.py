"""Program states, observations and output configurations (Section 2.2).

A state ``σ`` is a finite map from variables to integers (extended here
with named integer arrays, the array extension of Section 5).  An output
configuration ``φ`` is one of

* ``ba`` — the execution failed at an ``assume`` statement,
* ``wr`` — the execution failed at an ``assert``/``havoc`` statement or on a
  runtime error (division by zero, out-of-domain array read),
* ``(σ, ψ)`` — normal termination in state ``σ`` with observation list ``ψ``.

Each executed ``relate l : e*`` statement emits the observation ``(l, σ)``.
The paper's ``seq`` rule concatenates observation lists as ``ψ2.ψ1``; we
store observations in chronological order, which is an isomorphic
presentation (both executions use the same order, so the observational
compatibility relation of Theorem 6 is unchanged).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union


class State:
    """An immutable program state: scalars and integer arrays.

    Storage is hash-based: scalars live in a plain ``dict`` and arrays in a
    ``dict`` of ``dict``s, so ``scalar``/``has_scalar``/``array_element``
    are O(1) lookups rather than linear scans — these are the innermost
    operations of the interpreter, the execution enumerator and the Monte
    Carlo scoring loops.  The dicts are *never mutated* after construction;
    functional updates copy the one mapping they change and share the rest
    structurally (``set_scalar`` shares the whole array store with its
    parent).  Every read that hands out an array therefore returns a fresh
    copy — leaking an internal dict would let one derived state's caller
    mutate all of its siblings.

    States remain hashable and structurally comparable (insertion order of
    the internal dicts is irrelevant); the hash is computed once on demand.
    The legacy ``scalars`` / ``arrays`` sorted tuple-of-pairs views are kept
    for iteration and display call sites.
    """

    __slots__ = ("_scalars", "_arrays", "_hash")

    def __init__(
        self,
        scalars: Union[Mapping[str, int], Iterable[Tuple[str, int]]] = (),
        arrays: Union[
            Mapping[str, Mapping[int, int]],
            Iterable[Tuple[str, Iterable[Tuple[int, int]]]],
        ] = (),
    ) -> None:
        self._scalars: Dict[str, int] = dict(scalars)
        array_items = arrays.items() if isinstance(arrays, Mapping) else arrays
        self._arrays: Dict[str, Dict[int, int]] = {
            name: dict(values) for name, values in array_items
        }
        self._hash: Optional[int] = None

    # -- constructors ---------------------------------------------------------

    @staticmethod
    def of(
        scalars: Optional[Mapping[str, int]] = None,
        arrays: Optional[Mapping[str, Mapping[int, int]]] = None,
    ) -> "State":
        return State(scalars or {}, arrays or {})

    @staticmethod
    def _adopt(scalars: Dict[str, int], arrays: Dict[str, Dict[int, int]]) -> "State":
        """Build a state that takes ownership of ``scalars``/``arrays`` as-is.

        Internal fast path for the functional updates: the caller guarantees
        the dicts are fresh (or shared immutably) and will not be mutated.
        """
        state = State.__new__(State)
        state._scalars = scalars
        state._arrays = arrays
        state._hash = None
        return state

    # -- reads ----------------------------------------------------------------

    @property
    def scalars(self) -> Tuple[Tuple[str, int], ...]:
        """The scalar bindings as a sorted tuple of pairs (legacy view)."""
        return tuple(sorted(self._scalars.items()))

    @property
    def arrays(self) -> Tuple[Tuple[str, Tuple[Tuple[int, int], ...]], ...]:
        """The array bindings as sorted tuples of pairs (legacy view)."""
        return tuple(
            sorted(
                (name, tuple(sorted(values.items())))
                for name, values in self._arrays.items()
            )
        )

    def scalar_map(self) -> Dict[str, int]:
        return dict(self._scalars)

    def array_map(self) -> Dict[str, Dict[int, int]]:
        return {name: dict(values) for name, values in self._arrays.items()}

    def has_scalar(self, name: str) -> bool:
        return name in self._scalars

    def scalar(self, name: str) -> int:
        try:
            return self._scalars[name]
        except KeyError:
            raise KeyError(f"variable {name!r} is not defined in this state") from None

    def has_array(self, name: str) -> bool:
        return name in self._arrays

    def array(self, name: str) -> Dict[int, int]:
        try:
            return dict(self._arrays[name])
        except KeyError:
            raise KeyError(f"array {name!r} is not defined in this state") from None

    def array_element(self, name: str, index: int) -> int:
        values = self._arrays.get(name)
        if values is None:
            raise KeyError(f"array {name!r} is not defined in this state")
        try:
            return values[index]
        except KeyError:
            raise KeyError(
                f"array {name!r} has no element at index {index}"
            ) from None

    def variables(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in sorted(self._scalars.items()))

    def array_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._arrays))

    # -- writes (functional updates) --------------------------------------------

    def set_scalar(self, name: str, value: int) -> "State":
        scalars = dict(self._scalars)
        scalars[name] = value
        return State._adopt(scalars, self._arrays)

    def set_scalars(self, updates: Mapping[str, int]) -> "State":
        if not updates:
            return self
        scalars = dict(self._scalars)
        scalars.update(updates)
        return State._adopt(scalars, self._arrays)

    def set_array(self, name: str, values: Mapping[int, int]) -> "State":
        arrays = dict(self._arrays)
        arrays[name] = dict(values)
        return State._adopt(self._scalars, arrays)

    def set_array_element(self, name: str, index: int, value: int) -> "State":
        arrays = dict(self._arrays)
        cells = dict(arrays.get(name, ()))
        cells[index] = value
        arrays[name] = cells
        return State._adopt(self._scalars, arrays)

    # -- identity ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._scalars == other._scalars and self._arrays == other._arrays

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(
                (
                    frozenset(self._scalars.items()),
                    frozenset(
                        (name, frozenset(values.items()))
                        for name, values in self._arrays.items()
                    ),
                )
            )
            self._hash = cached
        return cached

    def __reduce__(self):
        return (State, (dict(self._scalars), self.array_map()))

    def __repr__(self) -> str:
        return f"State(scalars={self.scalars!r}, arrays={self.arrays!r})"

    def __str__(self) -> str:
        scalar_text = ", ".join(f"{k}={v}" for k, v in self.scalars)
        array_text = ", ".join(
            f"{name}=[{', '.join(f'{i}:{v}' for i, v in values)}]"
            for name, values in self.arrays
        )
        parts = [p for p in (scalar_text, array_text) if p]
        return "{" + "; ".join(parts) + "}"


@dataclass(frozen=True)
class Observation:
    """An observation ``(l, σ)`` emitted by a ``relate`` statement."""

    label: str
    state: State


ObservationList = Tuple[Observation, ...]


class ErrorKind(enum.Enum):
    """The two error outcomes of the dynamic semantics."""

    BAD_ASSUME = "ba"
    WRONG = "wr"


@dataclass(frozen=True)
class ErrorOutcome:
    """An error configuration (``ba`` or ``wr``)."""

    kind: ErrorKind
    message: str = ""

    @property
    def is_bad_assume(self) -> bool:
        return self.kind is ErrorKind.BAD_ASSUME

    @property
    def is_wrong(self) -> bool:
        return self.kind is ErrorKind.WRONG

    def __str__(self) -> str:
        suffix = f" ({self.message})" if self.message else ""
        return f"{self.kind.value}{suffix}"


@dataclass(frozen=True)
class Terminated:
    """Normal termination ``(σ, ψ)``."""

    state: State
    observations: ObservationList = ()

    def __str__(self) -> str:
        return f"<{self.state}, {len(self.observations)} observations>"


Outcome = Union[ErrorOutcome, Terminated]

BAD_ASSUME = ErrorOutcome(ErrorKind.BAD_ASSUME)
WRONG = ErrorOutcome(ErrorKind.WRONG)


def bad_assume(message: str = "") -> ErrorOutcome:
    return ErrorOutcome(ErrorKind.BAD_ASSUME, message)


def wrong(message: str = "") -> ErrorOutcome:
    return ErrorOutcome(ErrorKind.WRONG, message)


def is_error(outcome: Outcome) -> bool:
    """The paper's ``err(φ)`` predicate: φ = wr or φ = ba."""
    return isinstance(outcome, ErrorOutcome)


def is_wrong(outcome: Outcome) -> bool:
    return isinstance(outcome, ErrorOutcome) and outcome.is_wrong


def is_bad_assume(outcome: Outcome) -> bool:
    return isinstance(outcome, ErrorOutcome) and outcome.is_bad_assume
