"""Bounded exhaustive enumeration of all nondeterministic executions.

The dynamic relaxed semantics is nondeterministic: every ``havoc`` and (in
the relaxed semantics) every ``relax`` may pick any satisfying assignment.
For the metatheory harness we need the *set* of reachable outcomes — e.g.
Theorem 7 quantifies over all relaxed executions.  This module explores the
choice tree exhaustively, restricting each nondeterministic choice to the
satisfying assignments found inside a bounded box of integers.

The enumeration is sound for refutation (every enumerated execution is a
real execution) and complete relative to the box: executions whose
nondeterministic choices fall outside the box are not enumerated, which is
the usual bounded-model-checking compromise.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..lang.analysis import bool_vars
from ..lang.ast import (
    ArrayAssign,
    Assert,
    Assign,
    Assume,
    Havoc,
    If,
    Program,
    Relate,
    Relax,
    Seq,
    Skip,
    Stmt,
    While,
)
from ..logic.formula import Symbol
from ..logic.traverse import TypeDispatcher
from ..solver.models import enumerate_models
from .choosers import _candidate_values_map, _predicate_formula
from .interpreter import ExpressionError, eval_bool, eval_expr
from .state import (
    Observation,
    Outcome,
    State,
    Terminated,
    bad_assume,
    is_error,
    wrong,
)


class EnumerationBudgetError(Exception):
    """Raised when the execution tree exceeds the configured budget."""


@dataclass
class EnumerationConfig:
    """Budgets for exhaustive execution enumeration."""

    value_radius: int = 4
    max_choices_per_statement: int = 16
    max_executions: int = 4096
    max_loop_iterations: int = 256
    array_choice_values: Tuple[int, ...] = (-1, 0, 1)
    max_array_cells_for_choice: int = 3


@dataclass
class _Execution:
    state: State
    observations: Tuple[Observation, ...] = ()


def enumerate_executions(
    program_or_stmt: Union[Program, Stmt],
    initial_state: State,
    relaxed: bool,
    config: Optional[EnumerationConfig] = None,
) -> List[Outcome]:
    """Enumerate the outcomes of all (box-bounded) executions.

    ``relaxed`` selects the dynamic relaxed semantics (``relax`` statements
    havoc their targets) or the original semantics (``relax`` behaves like
    ``assert``).
    """
    config = config or EnumerationConfig()
    stmt = program_or_stmt.body if isinstance(program_or_stmt, Program) else program_or_stmt
    outcomes: List[Outcome] = []
    for outcome in _run(stmt, _Execution(initial_state), relaxed, config, [0]):
        outcomes.append(outcome)
        if len(outcomes) > config.max_executions:
            raise EnumerationBudgetError(
                f"more than {config.max_executions} executions enumerated"
            )
    return outcomes


def _run(
    stmt: Stmt,
    execution: _Execution,
    relaxed: bool,
    config: EnumerationConfig,
    fuel_cell: List[int],
) -> Iterator[Outcome]:
    """Yield the outcome of every execution of ``stmt`` from ``execution``.

    Statement dispatch goes through the shared
    :class:`~repro.logic.traverse.TypeDispatcher`; each handler is a
    generator over outcomes.
    """
    return _ENUM(stmt, execution, relaxed, config, fuel_cell)


_ENUM = TypeDispatcher("statement")


@_ENUM.register(Skip)
def _enum_skip(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    yield Terminated(execution.state, execution.observations)


@_ENUM.register(Assign)
def _enum_assign(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    try:
        value = eval_expr(stmt.value, execution.state)
    except ExpressionError as error:
        yield wrong(str(error))
        return
    yield Terminated(
        execution.state.set_scalar(stmt.target, value), execution.observations
    )


@_ENUM.register(ArrayAssign)
def _enum_array_assign(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    try:
        index = eval_expr(stmt.index, execution.state)
        value = eval_expr(stmt.value, execution.state)
    except ExpressionError as error:
        yield wrong(str(error))
        return
    yield Terminated(
        execution.state.set_array_element(stmt.array, index, value),
        execution.observations,
    )


@_ENUM.register(Assert)
def _enum_assert(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    try:
        holds = eval_bool(stmt.condition, execution.state)
    except ExpressionError as error:
        yield wrong(str(error))
        return
    if holds:
        yield Terminated(execution.state, execution.observations)
    else:
        yield wrong(f"assertion failed: {stmt.condition}")


@_ENUM.register(Assume)
def _enum_assume(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    try:
        holds = eval_bool(stmt.condition, execution.state)
    except ExpressionError as error:
        yield wrong(str(error))
        return
    if holds:
        yield Terminated(execution.state, execution.observations)
    else:
        yield bad_assume(f"assumption failed: {stmt.condition}")


@_ENUM.register(Relate)
def _enum_relate(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    yield Terminated(
        execution.state,
        execution.observations + (Observation(stmt.label, execution.state),),
    )


@_ENUM.register(Relax)
def _enum_relax(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    if not relaxed:
        # Original semantics: relax behaves as assert of its predicate.
        yield from _run(Assert(stmt.predicate), execution, relaxed, config, fuel_cell)
        return
    yield from _run_havoc(stmt, execution, config)


@_ENUM.register(Havoc)
def _enum_havoc(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    yield from _run_havoc(stmt, execution, config)


@_ENUM.register(If)
def _enum_if(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    try:
        branch_taken = eval_bool(stmt.condition, execution.state)
    except ExpressionError as error:
        yield wrong(str(error))
        return
    branch = stmt.then_branch if branch_taken else stmt.else_branch
    yield from _run(branch, execution, relaxed, config, fuel_cell)


@_ENUM.register(While)
def _enum_while(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    yield from _run_while(stmt, execution, relaxed, config, fuel_cell)


@_ENUM.register(Seq)
def _enum_seq(stmt, execution, relaxed, config, fuel_cell) -> Iterator[Outcome]:
    for first in _run(stmt.first, execution, relaxed, config, fuel_cell):
        if is_error(first):
            yield first
            continue
        assert isinstance(first, Terminated)
        yield from _run(
            stmt.second,
            _Execution(first.state, first.observations),
            relaxed,
            config,
            fuel_cell,
        )


def _run_havoc(
    stmt: Union[Havoc, Relax], execution: _Execution, config: EnumerationConfig
) -> Iterator[Outcome]:
    state = execution.state
    scalar_targets = [name for name in stmt.targets if not state.has_array(name)]
    array_targets = [name for name in stmt.targets if state.has_array(name)]
    predicate_reads = bool_vars(stmt.predicate)

    scalar_choices: List[Dict[str, int]]
    if scalar_targets:
        formula, _unknowns = _predicate_formula(stmt, state)
        candidates = _candidate_values_map(stmt, state, config.value_radius)
        models = enumerate_models(
            formula,
            radius=config.value_radius,
            limit=config.max_choices_per_statement,
            candidates=candidates,
        )
        if not models:
            yield wrong(f"no assignment satisfies the predicate of {stmt}")
            return
        scalar_choices = [
            {name: model.get(Symbol(name), 0) for name in scalar_targets}
            for model in models
        ]
    else:
        try:
            if not eval_bool(stmt.predicate, state):
                yield wrong(f"no assignment satisfies the predicate of {stmt}")
                return
        except ExpressionError:
            pass
        scalar_choices = [{}]

    array_choice_sets: List[Dict[str, Dict[int, int]]] = [{}]
    for name in array_targets:
        if name in predicate_reads:
            yield wrong(
                f"array {name!r} is constrained by the predicate of {stmt}; "
                "enumeration does not support this fragment"
            )
            return
        cells = sorted(state.array(name).keys())[: config.max_array_cells_for_choice]
        new_sets: List[Dict[str, Dict[int, int]]] = []
        for existing in array_choice_sets:
            new_sets.extend(
                {**existing, name: dict(zip(cells, values))}
                for values in _cartesian(config.array_choice_values, len(cells))
            )
        array_choice_sets = new_sets

    for scalars in scalar_choices:
        for arrays in array_choice_sets:
            new_state = state.set_scalars(scalars)
            for name, values in arrays.items():
                # state.array() returns a fresh copy (State never hands out
                # its internal storage), so updating it here cannot leak one
                # sibling choice's writes into another — pinned by
                # test_sibling_array_choices_do_not_alias.
                contents = state.array(name)
                contents.update(values)
                new_state = new_state.set_array(name, contents)
            yield Terminated(new_state, execution.observations)


def _cartesian(values: Sequence[int], length: int) -> Iterator[Tuple[int, ...]]:
    """All value tuples of the given length, first position varying fastest.

    ``itertools.product`` builds the tuples (no per-level tuple rebuilding
    or per-cell recursion) but varies the *last* position fastest; reversing
    each tuple restores the historical first-fastest order the enumeration
    tests pin.
    """
    return (combo[::-1] for combo in itertools.product(values, repeat=length))


def _run_while(
    stmt: While,
    execution: _Execution,
    relaxed: bool,
    config: EnumerationConfig,
    fuel_cell: List[int],
) -> Iterator[Outcome]:
    fuel_cell[0] += 1
    if fuel_cell[0] > config.max_loop_iterations * max(1, config.max_executions):
        raise EnumerationBudgetError("loop exploration budget exceeded")
    try:
        continue_loop = eval_bool(stmt.condition, execution.state)
    except ExpressionError as error:
        yield wrong(str(error))
        return
    if not continue_loop:
        yield Terminated(execution.state, execution.observations)
        return
    iterations = 0
    pending = [execution]
    # Unroll the loop breadth-first over the nondeterministic choice tree.
    while pending:
        iterations += 1
        if iterations > config.max_loop_iterations:
            raise EnumerationBudgetError(
                f"loop exceeded {config.max_loop_iterations} unrollings during enumeration"
            )
        next_pending: List[_Execution] = []
        for current in pending:
            for body_outcome in _run(stmt.body, current, relaxed, config, fuel_cell):
                if is_error(body_outcome):
                    yield body_outcome
                    continue
                assert isinstance(body_outcome, Terminated)
                continuation = _Execution(body_outcome.state, body_outcome.observations)
                try:
                    still_looping = eval_bool(stmt.condition, continuation.state)
                except ExpressionError as error:
                    yield wrong(str(error))
                    continue
                if still_looping:
                    next_pending.append(continuation)
                else:
                    yield Terminated(continuation.state, continuation.observations)
        pending = next_pending
