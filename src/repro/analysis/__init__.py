"""Analysis utilities: accuracy metrics, parameter sweeps, proof-effort reports."""

from . import metrics
from .metrics import (
    BatchRow,
    EffortRow,
    ExploreRow,
    MetricSeries,
    SweepPoint,
    SweepResult,
    absolute_deviation,
    effort_rows,
    format_batch_table,
    format_effort_table,
    format_explore_table,
    fraction_within,
    relative_deviation,
    sweep,
)

__all__ = [
    "metrics",
    "BatchRow",
    "EffortRow",
    "ExploreRow",
    "MetricSeries",
    "SweepPoint",
    "SweepResult",
    "absolute_deviation",
    "effort_rows",
    "format_batch_table",
    "format_effort_table",
    "format_explore_table",
    "fraction_within",
    "relative_deviation",
    "sweep",
]
