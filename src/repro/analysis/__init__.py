"""Analysis utilities: accuracy metrics, parameter sweeps, proof-effort reports."""

from . import metrics
from .metrics import (
    EffortRow,
    MetricSeries,
    SweepPoint,
    SweepResult,
    absolute_deviation,
    effort_rows,
    format_effort_table,
    fraction_within,
    relative_deviation,
    sweep,
)

__all__ = [
    "metrics",
    "EffortRow",
    "MetricSeries",
    "SweepPoint",
    "SweepResult",
    "absolute_deviation",
    "effort_rows",
    "format_effort_table",
    "fraction_within",
    "relative_deviation",
    "sweep",
]
