"""Accuracy metrics, parameter sweeps and proof-effort reports.

The experiments (EXPERIMENTS.md / benchmarks) need three kinds of analysis:

* **accuracy metrics** for differential executions — absolute/relative
  deviation of results between the original and relaxed executions and the
  fraction of runs inside a bound (the accuracy-envelope figures),
* **parameter sweeps** — run a case-study simulation across a grid of
  parameters (error bound, matrix size, load level) and tabulate a metric,
* **proof-effort reports** — aggregate rule applications, obligations and
  solver statistics per proof layer, the analogue of the paper's
  lines-of-Coq artifact statistics (Section 1.6).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..hoare.obligations import ProofSystem, VerificationReport
from ..hoare.verifier import AcceptabilityReport


# ---------------------------------------------------------------------------
# Accuracy metrics
# ---------------------------------------------------------------------------


def absolute_deviation(original: float, relaxed: float) -> float:
    """The absolute difference between original and relaxed results."""
    return abs(original - relaxed)


def relative_deviation(original: float, relaxed: float) -> float:
    """The paper's accuracy notion: |original - relaxed| / |original|
    (0 when the original result is 0 and the relaxed result matches)."""
    if original == 0:
        return 0.0 if relaxed == 0 else float("inf")
    return abs(original - relaxed) / abs(original)


def fraction_within(values: Sequence[float], bound: float) -> float:
    """Fraction of values that are at most ``bound``."""
    if not values:
        return 1.0
    return sum(1 for value in values if value <= bound) / len(values)


@dataclass
class MetricSeries:
    """A named series of metric observations with summary statistics."""

    name: str
    values: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def stdev(self) -> float:
        return statistics.pstdev(self.values) if len(self.values) > 1 else 0.0

    def percentile(self, fraction: float) -> float:
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        index = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
        }


# ---------------------------------------------------------------------------
# Parameter sweeps
# ---------------------------------------------------------------------------


@dataclass
class SweepPoint:
    """One point of a parameter sweep."""

    parameters: Dict[str, float]
    metrics: Dict[str, float]


@dataclass
class SweepResult:
    """A parameter sweep: a list of points plus tabulation helpers."""

    name: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, parameters: Mapping[str, float], metrics: Mapping[str, float]) -> None:
        self.points.append(SweepPoint(dict(parameters), dict(metrics)))

    def series(self, parameter: str, metric: str) -> List[Tuple[float, float]]:
        """Return (parameter value, metric value) pairs sorted by parameter."""
        pairs = [
            (point.parameters[parameter], point.metrics[metric])
            for point in self.points
            if parameter in point.parameters and metric in point.metrics
        ]
        return sorted(pairs)

    def table(self, columns: Sequence[str]) -> List[List[float]]:
        rows = []
        for point in self.points:
            merged = {**point.parameters, **point.metrics}
            rows.append([merged.get(column, float("nan")) for column in columns])
        return rows

    def format_table(self, columns: Sequence[str], width: int = 14) -> str:
        header = "".join(column.ljust(width) for column in columns)
        lines = [header, "-" * len(header)]
        for row in self.table(columns):
            lines.append("".join(f"{value:<{width}.4g}" for value in row))
        return "\n".join(lines)


def sweep(
    name: str,
    parameter_grid: Iterable[Mapping[str, float]],
    run: Callable[[Mapping[str, float]], Mapping[str, float]],
) -> SweepResult:
    """Run ``run`` for every parameter combination and collect the metrics."""
    result = SweepResult(name=name)
    for parameters in parameter_grid:
        metrics = run(parameters)
        result.add(parameters, metrics)
    return result


# ---------------------------------------------------------------------------
# Proof-effort reports (the Section 1.6 artifact-statistics analogue)
# ---------------------------------------------------------------------------


@dataclass
class EffortRow:
    """Proof effort for one layer of one case study."""

    case_study: str
    layer: str
    rule_applications: int
    obligations: int
    obligations_discharged: int
    obligation_size: int
    solver_seconds: float
    paper_proof_lines: Optional[int] = None


def effort_rows(
    case_study_name: str,
    report: AcceptabilityReport,
    paper_proof_lines: Optional[int] = None,
) -> List[EffortRow]:
    """Build the per-layer effort rows for one acceptability verification."""
    rows = []
    for layer, verification in (("original", report.original), ("relaxed", report.relaxed)):
        rows.append(
            EffortRow(
                case_study=case_study_name,
                layer=layer,
                rule_applications=verification.total_rule_applications(),
                obligations=len(verification.results),
                obligations_discharged=sum(
                    1 for result in verification.results if result.discharged
                ),
                obligation_size=verification.total_obligation_size(),
                solver_seconds=verification.elapsed_seconds,
                paper_proof_lines=paper_proof_lines if layer == "relaxed" else None,
            )
        )
    return rows


def format_effort_table(rows: Sequence[EffortRow]) -> str:
    """Render effort rows as a fixed-width table."""
    header = (
        f"{'case study':28}{'layer':12}{'rules':8}{'obls':7}{'ok':5}"
        f"{'size':8}{'time(s)':9}{'paper(loc)':10}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        paper = str(row.paper_proof_lines) if row.paper_proof_lines else "-"
        lines.append(
            f"{row.case_study:28}{row.layer:12}{row.rule_applications:<8}"
            f"{row.obligations:<7}{row.obligations_discharged:<5}"
            f"{row.obligation_size:<8}{row.solver_seconds:<9.3f}{paper:10}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Batch verification reports
# ---------------------------------------------------------------------------


@dataclass
class BatchRow:
    """One line of the ``repro verify-batch`` summary table."""

    program: str
    verified: bool
    obligations: int
    discharged: int
    elapsed_seconds: float
    error: str = ""


def format_batch_table(rows: Sequence[BatchRow]) -> str:
    """Render batch verification rows as a fixed-width table."""
    header = f"{'program':28}{'verdict':14}{'obls':7}{'ok':7}{'time(s)':9}"
    lines = [header, "-" * len(header)]
    for row in rows:
        verdict = "VERIFIED" if row.verified else ("ERROR" if row.error else "NOT VERIFIED")
        lines.append(
            f"{row.program:28}{verdict:14}{row.obligations:<7}"
            f"{row.discharged:<7}{row.elapsed_seconds:<9.3f}"
        )
        if row.error:
            lines.append(f"    {row.error}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Relaxation-space exploration reports
# ---------------------------------------------------------------------------


@dataclass
class ExploreRow:
    """One line of the ``repro explore`` candidate table."""

    candidate: str
    depth: int
    verified: bool
    pareto: bool
    distortion: Optional[float] = None
    savings: Optional[float] = None
    error: str = ""


def format_explore_table(rows: Sequence[ExploreRow]) -> str:
    """Render explorer candidate rows as a fixed-width table.

    Candidate names embed their applied-site chains and can get long, so
    the name column goes last and is left unpadded.
    """
    header = (
        f"{'d':3}{'verdict':10}{'distortion':12}{'savings':9}{'front':7}candidate"
    )
    lines = [header, "-" * 72]
    for row in rows:
        verdict = "VERIFIED" if row.verified else "rejected"
        distortion = f"{row.distortion:.4g}" if row.distortion is not None else "-"
        savings = f"{row.savings:.3f}" if row.savings is not None else "-"
        frontier = "*" if row.pareto else ""
        lines.append(
            f"{row.depth:<3}{verdict:10}{distortion:12}{savings:9}"
            f"{frontier:7}{row.candidate}"
        )
        if row.error:
            lines.append(f"      {row.error}")
    return "\n".join(lines)
