"""Simulated substrates the case studies and benchmarks run against.

The paper's evaluation targets real systems (Swish++ under load, a racy
parallelisation of Water, approximate memory for SciMark2 LU).  None of
those substrates are available offline, so this package provides faithful
simulations of the *relevant behaviour* each one contributes:

* :mod:`repro.substrates.search` — ranked search results, a server load
  model and the dynamic-knob controller (Swish++),
* :mod:`repro.substrates.parallel` — a lock-free parallel reduction with a
  seeded racy scheduler producing lost updates (Water),
* :mod:`repro.substrates.approxmem` — an approximate memory with bounded
  additive error / bit-flip models (LU),
* :mod:`repro.substrates.workloads` — synthetic workload generators.
"""

from . import approxmem, parallel, search, workloads
from .approxmem import ApproxMemoryChooser, ApproximateMemory, ErrorModel
from .parallel import (
    RacyArrayChooser,
    RacyReductionSimulator,
    Update,
    generate_reduction_workload,
)
from .search import (
    DynamicKnobChooser,
    DynamicKnobController,
    LoadModel,
    QueryResult,
    generate_query_results,
    result_quality,
)
from .workloads import (
    LUWorkload,
    SwishWorkload,
    WaterWorkload,
    generate_lu_workloads,
    generate_matrix,
    generate_swish_workloads,
    generate_water_workloads,
)

__all__ = [
    "approxmem",
    "parallel",
    "search",
    "workloads",
    "ApproxMemoryChooser",
    "ApproximateMemory",
    "ErrorModel",
    "RacyArrayChooser",
    "RacyReductionSimulator",
    "Update",
    "generate_reduction_workload",
    "DynamicKnobChooser",
    "DynamicKnobController",
    "LoadModel",
    "QueryResult",
    "generate_query_results",
    "result_quality",
    "LUWorkload",
    "SwishWorkload",
    "WaterWorkload",
    "generate_lu_workloads",
    "generate_matrix",
    "generate_swish_workloads",
    "generate_water_workloads",
]
