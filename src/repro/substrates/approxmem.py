"""Approximate-memory substrate (Section 5.3's hardware model).

The paper's LU case study assumes data stored in low-power approximate
memory (Flikker / EnerJ style): reads may return a value that differs from
the stored value, with the error magnitude bounded (the paper models the
read error as an additive error ``e``).  This module provides that
substrate as a simulation:

* :class:`ApproximateMemory` — a word-addressable memory with a configurable
  error model (additive bounded error, or low-order bit flips with a
  per-bit upset probability, following the characterisation in the
  phase-change-memory literature the paper cites),
* :class:`ApproxMemoryChooser` — a nondeterminism strategy for the dynamic
  relaxed semantics that resolves ``relax (a) st (orig - e <= a <= orig + e)``
  by sampling the memory error model (so differential simulations exercise
  exactly the hardware behaviour the relax statement abstracts).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..semantics.choosers import Chooser, MinimalChangeChooser
from ..semantics.state import State


@dataclass
class ErrorModel:
    """Configuration of the approximate-read error model."""

    max_magnitude: int = 0          # additive error bound (uniform in [-b, +b])
    bit_flip_probability: float = 0.0  # probability of flipping each low-order bit
    flippable_bits: int = 4            # how many low-order bits may flip

    def perturb(self, value: int, rng: random.Random) -> int:
        """Apply the error model to a read of ``value``."""
        result = value
        if self.max_magnitude > 0:
            result += rng.randint(-self.max_magnitude, self.max_magnitude)
        if self.bit_flip_probability > 0.0:
            for bit in range(self.flippable_bits):
                if rng.random() < self.bit_flip_probability:
                    result ^= 1 << bit
        return result


@dataclass
class ApproximateMemory:
    """A word-addressable approximate memory.

    Writes are exact (critical data paths in the cited systems write
    precisely); reads pass through the error model.  Reads and the errors
    they experienced are logged so experiments can report observed error
    distributions.
    """

    error_model: ErrorModel = field(default_factory=ErrorModel)
    seed: int = 0

    def __post_init__(self) -> None:
        self._cells: Dict[int, int] = {}
        self._rng = random.Random(self.seed)
        self.read_log: List[Dict[str, int]] = []

    def write(self, address: int, value: int) -> None:
        self._cells[address] = value

    def load(self, values: Sequence[int], base_address: int = 0) -> None:
        for offset, value in enumerate(values):
            self.write(base_address + offset, value)

    def read_exact(self, address: int) -> int:
        return self._cells[address]

    def read(self, address: int) -> int:
        exact = self._cells[address]
        observed = self.error_model.perturb(exact, self._rng)
        self.read_log.append(
            {"address": address, "exact": exact, "observed": observed, "error": observed - exact}
        )
        return observed

    def max_observed_error(self) -> int:
        if not self.read_log:
            return 0
        return max(abs(entry["error"]) for entry in self.read_log)


class ApproxMemoryChooser(Chooser):
    """Resolve ``relax`` statements by sampling the approximate-memory model.

    The chooser applies the error model to the *current* value of each relax
    target and clamps the result so the relaxation predicate (a bounded
    error around the original value) is respected — mirroring how the paper
    uses the relax statement to model the hardware's error envelope.
    """

    def __init__(self, error_model: ErrorModel, error_bound_var: str = "e", seed: int = 0) -> None:
        self._error_model = error_model
        self._error_bound_var = error_bound_var
        self._rng = random.Random(seed)
        self._fallback = MinimalChangeChooser()

    def choose(self, statement, state: State) -> Optional[State]:
        bound = (
            state.scalar(self._error_bound_var)
            if state.has_scalar(self._error_bound_var)
            else self._error_model.max_magnitude
        )
        updates: Dict[str, int] = {}
        for name in statement.targets:
            if state.has_array(name):
                values = state.array(name)
                perturbed = {
                    index: self._clamp(self._error_model.perturb(value, self._rng), value, bound)
                    for index, value in values.items()
                }
                state = state.set_array(name, perturbed)
                continue
            if not state.has_scalar(name):
                return self._fallback.choose(statement, state)
            current = state.scalar(name)
            updates[name] = self._clamp(
                self._error_model.perturb(current, self._rng), current, bound
            )
        return state.set_scalars(updates)

    @staticmethod
    def _clamp(value: int, reference: int, bound: int) -> int:
        low, high = reference - bound, reference + bound
        return max(low, min(high, value))
