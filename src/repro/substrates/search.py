"""Search-engine workload substrate (Section 5.1's Swish++ scenario).

The paper's dynamic-knobs case study reduces the number of search results
Swish++ formats when the server is under heavy load.  This module provides
the pieces a realistic differential experiment needs:

* :class:`QueryResult` / :func:`generate_query_results` — synthetic ranked
  result lists with Zipf-like score decay (users care about the head of the
  ranking, which is why returning the top 10 under load is acceptable),
* :class:`LoadModel` — a simple open-loop server load model (arrival bursts
  with exponential decay) driving the dynamic knob,
* :class:`DynamicKnobController` — maps the observed load to the ``max_r``
  control variable exactly as a Dynamic Knobs controller would (full results
  under low load, top-10 under high load),
* :class:`DynamicKnobChooser` — resolves ``relax (max_r) st (...)`` in the
  dynamic relaxed semantics using the controller, so simulations reproduce
  the deployed behaviour rather than arbitrary nondeterminism,
* quality metrics (:func:`result_quality`) measuring how much ranked mass
  the relaxed execution preserves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..semantics.choosers import Chooser, MinimalChangeChooser
from ..semantics.state import State


@dataclass(frozen=True)
class QueryResult:
    """One ranked search result."""

    doc_id: int
    score: float


def generate_query_results(count: int, seed: int = 0) -> List[QueryResult]:
    """Generate a ranked result list with Zipf-like score decay."""
    rng = random.Random(seed)
    results = []
    for rank in range(count):
        base = 1.0 / (1 + rank)
        noise = rng.uniform(0.0, 0.05)
        results.append(QueryResult(doc_id=rng.randrange(1 << 30), score=base + noise))
    results.sort(key=lambda result: -result.score)
    return results


@dataclass
class LoadModel:
    """An open-loop server load model: bursty arrivals with decay."""

    burst_probability: float = 0.25
    burst_height: float = 3.0
    decay: float = 0.7
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._level = 0.0

    def step(self) -> float:
        """Advance one time step and return the current load level."""
        self._level *= self.decay
        if self._rng.random() < self.burst_probability:
            self._level += self.burst_height
        return self._level


@dataclass
class DynamicKnobController:
    """Map observed load to the ``max_r`` knob (results shown to the user).

    Under low load the server formats every result (``max_r`` unchanged);
    under high load it clamps the number of formatted results, but never
    below ``minimum_results`` (10 in the paper) so the user still sees the
    head of the ranking.
    """

    high_load_threshold: float = 2.0
    minimum_results: int = 10

    def knob(self, requested_max_r: int, load: float) -> int:
        if requested_max_r <= self.minimum_results:
            # The relaxation may not drop results when few were requested.
            return requested_max_r
        if load < self.high_load_threshold:
            return requested_max_r
        # Heavy load: scale down, but never below the minimum.
        scaled = int(requested_max_r / (1.0 + load - self.high_load_threshold))
        return max(self.minimum_results, scaled)


class DynamicKnobChooser(Chooser):
    """Resolve ``relax (max_r) st (...)`` with the dynamic-knob controller."""

    def __init__(
        self,
        controller: Optional[DynamicKnobController] = None,
        load_model: Optional[LoadModel] = None,
        knob_var: str = "max_r",
        seed: int = 0,
    ) -> None:
        self._controller = controller or DynamicKnobController()
        self._load_model = load_model or LoadModel(seed=seed)
        self._knob_var = knob_var
        self._fallback = MinimalChangeChooser()

    def choose(self, statement, state: State) -> Optional[State]:
        if self._knob_var not in statement.targets or not state.has_scalar(self._knob_var):
            return self._fallback.choose(statement, state)
        load = self._load_model.step()
        requested = state.scalar(self._knob_var)
        chosen = self._controller.knob(requested, load)
        return state.set_scalar(self._knob_var, chosen)


def result_quality(results: Sequence[QueryResult], presented: int) -> float:
    """Fraction of total ranked score mass contained in the first ``presented``
    results — the quality-of-result metric for the Swish++ experiments."""
    total = sum(result.score for result in results)
    if total == 0:
        return 1.0
    shown = sum(result.score for result in results[: max(0, presented)])
    return shown / total
