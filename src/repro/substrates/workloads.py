"""Workload generators for the case studies and benchmarks.

The paper evaluates its approach on fragments of three applications:
Swish++ (search), the Water molecular-dynamics computation (Perfect
benchmarks) and the SciMark2 LU decomposition.  The real inputs are not
redistributable, so these generators produce synthetic workloads with the
same relevant structure:

* ranked search-result counts (Swish++),
* per-molecule interaction magnitudes reduced into the ``RS`` array (Water),
* dense integer matrices / column vectors for pivot selection (LU).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class SwishWorkload:
    """One Swish++ query: number of matching results and the requested cap."""

    num_results: int
    requested_max_r: int


def generate_swish_workloads(count: int, seed: int = 0, max_results: int = 60) -> List[SwishWorkload]:
    """Generate query workloads spanning the small/large result-count regimes."""
    rng = random.Random(seed)
    workloads = []
    for index in range(count):
        if index % 3 == 0:
            num_results = rng.randint(0, 9)        # fewer than the 10-result floor
        elif index % 3 == 1:
            num_results = rng.randint(10, 25)
        else:
            num_results = rng.randint(26, max_results)
        requested = rng.randint(max(1, num_results // 2), max_results)
        workloads.append(SwishWorkload(num_results=num_results, requested_max_r=requested))
    return workloads


@dataclass(frozen=True)
class WaterWorkload:
    """One Water outer-loop instance: interaction magnitudes per molecule pair."""

    interactions: Tuple[int, ...]
    cutoff: int
    array_length: int


def generate_water_workloads(
    count: int, molecules: int = 8, seed: int = 0, magnitude: int = 6
) -> List[WaterWorkload]:
    """Generate Water-style reduction workloads.

    ``interactions`` models the per-pair contributions accumulated into RS;
    ``cutoff`` models gCUT2; ``array_length`` models len_FF (always at least
    the number of molecules so in-bounds accesses are the developer's
    intended behaviour, exactly as the paper's assume states)."""
    rng = random.Random(seed)
    workloads = []
    for _ in range(count):
        interactions = tuple(rng.randint(0, magnitude) for _ in range(molecules))
        cutoff = rng.randint(1, magnitude)
        workloads.append(
            WaterWorkload(
                interactions=interactions,
                cutoff=cutoff,
                array_length=molecules + rng.randint(0, 4),
            )
        )
    return workloads


@dataclass(frozen=True)
class LUWorkload:
    """One LU pivot-selection instance: a matrix column and the error bound."""

    column: Tuple[int, ...]
    error_bound: int


def generate_lu_workloads(
    count: int, column_length: int = 8, seed: int = 0, magnitude: int = 50
) -> List[LUWorkload]:
    """Generate SciMark2-style pivot columns with varying error bounds."""
    rng = random.Random(seed)
    workloads = []
    for index in range(count):
        column = tuple(rng.randint(-magnitude, magnitude) for _ in range(column_length))
        error_bound = [0, 1, 2, 4, 8][index % 5]
        workloads.append(LUWorkload(column=column, error_bound=error_bound))
    return workloads


@dataclass(frozen=True)
class ReductionWorkload:
    """One sum-reduction instance: bounded non-negative terms."""

    terms: Tuple[int, ...]
    term_bound: int


def generate_reduction_workloads(
    count: int, length: int = 8, seed: int = 0, magnitude: int = 9
) -> List[ReductionWorkload]:
    """Generate reduction inputs whose terms respect the declared bound.

    Every term lies in ``[0, term_bound]`` — the integrity belief the
    sum-perforation kernel records with its in-loop assumes."""
    rng = random.Random(seed)
    workloads = []
    for _ in range(count):
        bound = rng.randint(1, magnitude)
        terms = tuple(rng.randint(0, bound) for _ in range(length))
        workloads.append(ReductionWorkload(terms=terms, term_bound=bound))
    return workloads


@dataclass(frozen=True)
class StencilWorkload:
    """One stencil instance: cell values plus a per-cell error envelope."""

    cells: Tuple[int, ...]
    envelopes: Tuple[int, ...]


def generate_stencil_workloads(
    count: int, length: int = 8, seed: int = 0, magnitude: int = 20, max_envelope: int = 3
) -> List[StencilWorkload]:
    """Generate stencil rows with non-negative per-cell error envelopes."""
    rng = random.Random(seed)
    workloads = []
    for index in range(count):
        cells = tuple(rng.randint(-magnitude, magnitude) for _ in range(length))
        if index % 4 == 0:
            envelopes = tuple(0 for _ in range(length))  # exact-memory rows
        else:
            envelopes = tuple(rng.randint(0, max_envelope) for _ in range(length))
        workloads.append(StencilWorkload(cells=cells, envelopes=envelopes))
    return workloads


@dataclass(frozen=True)
class SearchWorkload:
    """One branch-and-bound instance: candidate scores, bound and cutoff."""

    scores: Tuple[int, ...]
    upper_bound: int
    cutoff: int


def generate_search_workloads(
    count: int, length: int = 10, seed: int = 0, magnitude: int = 40
) -> List[SearchWorkload]:
    """Generate search instances; the cutoff spans full and truncated scans."""
    rng = random.Random(seed)
    workloads = []
    for index in range(count):
        upper_bound = rng.randint(magnitude // 2, magnitude)
        scores = tuple(rng.randint(-magnitude, upper_bound) for _ in range(length))
        cutoff = length if index % 3 == 0 else rng.randint(1, length)
        workloads.append(
            SearchWorkload(scores=scores, upper_bound=upper_bound, cutoff=cutoff)
        )
    return workloads


@dataclass(frozen=True)
class PipelineWorkload:
    """One two-stage pipeline instance: stage sizes, knobs and drop budget."""

    stage1_items: int
    stage2_items: int
    knob1: int
    knob2: int
    budget: int


def generate_pipeline_workloads(
    count: int, seed: int = 0, max_items: int = 30, knob_floor: int = 4
) -> List[PipelineWorkload]:
    """Generate pipeline instances with knobs at or above the shared floor."""
    rng = random.Random(seed)
    workloads = []
    for _ in range(count):
        workloads.append(
            PipelineWorkload(
                stage1_items=rng.randint(0, max_items),
                stage2_items=rng.randint(0, max_items),
                knob1=rng.randint(knob_floor, max_items),
                knob2=rng.randint(knob_floor, max_items),
                budget=rng.randint(0, 2 * max_items),
            )
        )
    return workloads


def generate_matrix(size: int, seed: int = 0, magnitude: int = 50) -> List[List[int]]:
    """Generate a dense integer matrix (used by the LU example application)."""
    rng = random.Random(seed)
    return [
        [rng.randint(-magnitude, magnitude) for _ in range(size)] for _ in range(size)
    ]
