"""Racy-parallel-update substrate (Section 5.2's relaxation source).

The paper's Water case study relaxes a parallelised reduction whose lock
elision lets concurrent updates race: some updates may be lost depending on
the CPU schedule, so the reduced array ``RS`` takes nondeterministic values.
The paper models this with ``relax (RS) st (true)``.

This module simulates the substrate that produces those values:

* :class:`RacyReductionSimulator` — runs a simulated parallel reduction in
  which each "thread" performs read-modify-write updates without locking;
  a seeded scheduler interleaves the operations, so updates can be lost
  exactly as in the real racy program,
* :class:`RacyArrayChooser` — a dynamic-semantics nondeterminism strategy
  that resolves ``relax (RS) st (true)`` with the simulator's output, so the
  differential executions exercise realistic lost-update patterns.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..semantics.choosers import Chooser, MinimalChangeChooser
from ..semantics.state import State


@dataclass(frozen=True)
class Update:
    """One read-modify-write contribution to a reduction cell."""

    cell: int
    delta: int
    thread: int


@dataclass
class RacyReductionSimulator:
    """Simulate a lock-free parallel reduction with lost updates.

    Each update is split into a read and a write event; the scheduler
    interleaves events from different threads uniformly at random.  When two
    threads interleave read-read-write-write on the same cell, one update is
    lost — the classic atomicity violation the paper's relaxation models.
    """

    threads: int = 4
    seed: int = 0

    def run(self, initial: Sequence[int], updates: Sequence[Update]) -> List[int]:
        rng = random.Random(self.seed)
        cells = list(initial)
        # Partition updates among threads, preserving per-thread order.
        per_thread: Dict[int, List[Update]] = {t: [] for t in range(self.threads)}
        for update in updates:
            per_thread[update.thread % self.threads].append(update)
        # Each thread's state machine: (pending update, value read so far).
        positions = {t: 0 for t in range(self.threads)}
        pending_read: Dict[int, Optional[Tuple[Update, int]]] = {t: None for t in range(self.threads)}
        lost = 0
        active = [t for t in range(self.threads) if per_thread[t]]
        while active:
            thread = rng.choice(active)
            holding = pending_read[thread]
            if holding is None:
                update = per_thread[thread][positions[thread]]
                pending_read[thread] = (update, cells[update.cell])
            else:
                update, read_value = holding
                current = cells[update.cell]
                if current != read_value:
                    lost += 1
                cells[update.cell] = read_value + update.delta
                pending_read[thread] = None
                positions[thread] += 1
                if positions[thread] >= len(per_thread[thread]):
                    active.remove(thread)
        self.lost_updates = lost
        return cells

    def exact(self, initial: Sequence[int], updates: Sequence[Update]) -> List[int]:
        """The result of the same reduction with atomic (locked) updates."""
        cells = list(initial)
        for update in updates:
            cells[update.cell] += update.delta
        return cells


def generate_reduction_workload(
    cells: int, updates_per_cell: int, seed: int = 0, magnitude: int = 4
) -> Tuple[List[int], List[Update]]:
    """Generate a reduction workload (initial cells and update stream)."""
    rng = random.Random(seed)
    initial = [rng.randint(-magnitude, magnitude) for _ in range(cells)]
    updates: List[Update] = []
    for cell in range(cells):
        for _ in range(updates_per_cell):
            updates.append(
                Update(cell=cell, delta=rng.randint(1, magnitude), thread=rng.randrange(1 << 16))
            )
    rng.shuffle(updates)
    return initial, updates


class RacyArrayChooser(Chooser):
    """Resolve ``relax (RS) st (true)`` with simulated racy reduction results."""

    def __init__(
        self,
        array_name: str = "RS",
        threads: int = 4,
        updates_per_cell: int = 3,
        seed: int = 0,
    ) -> None:
        self._array_name = array_name
        self._threads = threads
        self._updates_per_cell = updates_per_cell
        self._seed = seed
        self._fallback = MinimalChangeChooser()

    def choose(self, statement, state: State) -> Optional[State]:
        if self._array_name not in statement.targets or not state.has_array(self._array_name):
            return self._fallback.choose(statement, state)
        contents = state.array(self._array_name)
        indices = sorted(contents)
        base = [0 for _ in indices]
        updates: List[Update] = []
        rng = random.Random(self._seed)
        for position, index in enumerate(indices):
            # Decompose the current (exact) value into unit contributions so the
            # racy schedule can lose some of them.
            remaining = contents[index]
            step = 1 if remaining >= 0 else -1
            for _ in range(abs(remaining)):
                updates.append(Update(cell=position, delta=step, thread=rng.randrange(1 << 16)))
        simulator = RacyReductionSimulator(threads=self._threads, seed=self._seed)
        racy = simulator.run(base, updates)
        new_contents = {index: racy[position] for position, index in enumerate(indices)}
        new_state = state.set_array(self._array_name, new_contents)
        # Other scalar targets (if any) keep their values when the predicate allows.
        return new_state
