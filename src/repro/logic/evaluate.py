"""Evaluation of terms and formulas over concrete valuations (Figure 6).

The denotational semantics of the assertion logic maps a unary formula to
the set of states that satisfy it, and a relational formula to the set of
state pairs.  Concretely we provide an *evaluator*: given a valuation of the
free symbols (and array symbols) a formula evaluates to a boolean.

Quantifiers are evaluated over an explicit finite ``domain`` (a bounded
range of integers).  This is exactly what the metatheory test harness needs:
it checks the paper's soundness statements over bounded state spaces.  For
unbounded reasoning, use the decision procedures in :mod:`repro.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from .formula import (
    Add,
    And,
    Atom,
    Const,
    Div,
    Divides,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Ite,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Select,
    Store,
    Sub,
    SymTerm,
    Symbol,
    Term,
    TrueF,
)


class EvaluationError(Exception):
    """Raised when a term or formula cannot be evaluated (missing symbol,
    division by zero, or a quantifier with no evaluation domain)."""


@dataclass
class Valuation:
    """A concrete assignment of integers to symbols and arrays to array symbols."""

    scalars: Dict[Symbol, int] = field(default_factory=dict)
    arrays: Dict[Symbol, Dict[int, int]] = field(default_factory=dict)

    def copy(self) -> "Valuation":
        return Valuation(
            scalars=dict(self.scalars),
            arrays={name: dict(values) for name, values in self.arrays.items()},
        )

    def with_scalar(self, symbol: Symbol, value: int) -> "Valuation":
        if self.scalars.get(symbol) == value and symbol in self.scalars:
            return self
        updated = self.copy()
        updated.scalars[symbol] = value
        return updated

    def scalar(self, symbol: Symbol) -> int:
        if symbol not in self.scalars:
            raise EvaluationError(f"no value for symbol {symbol}")
        return self.scalars[symbol]

    def array_element(self, array: Symbol, index: int) -> int:
        values = self.arrays.get(array)
        if values is None:
            raise EvaluationError(f"no value for array {array}")
        if index not in values:
            raise EvaluationError(f"array {array} has no element at index {index}")
        return values[index]


def evaluate_term(term: Term, valuation: Valuation, domain: Optional[Sequence[int]] = None) -> int:
    """Evaluate a term to an integer under ``valuation``."""
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SymTerm):
        return valuation.scalar(term.symbol)
    if isinstance(term, Add):
        return evaluate_term(term.left, valuation, domain) + evaluate_term(term.right, valuation, domain)
    if isinstance(term, Sub):
        return evaluate_term(term.left, valuation, domain) - evaluate_term(term.right, valuation, domain)
    if isinstance(term, Mul):
        return evaluate_term(term.left, valuation, domain) * evaluate_term(term.right, valuation, domain)
    if isinstance(term, Div):
        divisor = evaluate_term(term.right, valuation, domain)
        if divisor == 0:
            raise EvaluationError("division by zero")
        return evaluate_term(term.left, valuation, domain) // divisor
    if isinstance(term, Mod):
        divisor = evaluate_term(term.right, valuation, domain)
        if divisor == 0:
            raise EvaluationError("modulo by zero")
        return evaluate_term(term.left, valuation, domain) % divisor
    if isinstance(term, Min):
        return min(evaluate_term(term.left, valuation, domain), evaluate_term(term.right, valuation, domain))
    if isinstance(term, Max):
        return max(evaluate_term(term.left, valuation, domain), evaluate_term(term.right, valuation, domain))
    if isinstance(term, Ite):
        if evaluate(term.condition, valuation, domain):
            return evaluate_term(term.then_term, valuation, domain)
        return evaluate_term(term.else_term, valuation, domain)
    if isinstance(term, Select):
        index = evaluate_term(term.index, valuation, domain)
        return valuation.array_element(term.array, index)
    if isinstance(term, Store):
        raise EvaluationError("store terms are array-valued and cannot be evaluated to an integer")
    raise TypeError(f"unknown term {term!r}")


def evaluate(formula: Formula, valuation: Valuation, domain: Optional[Sequence[int]] = None) -> bool:
    """Evaluate a formula to a boolean under ``valuation``.

    Quantified subformulas are evaluated over ``domain``; if ``domain`` is
    ``None`` a quantifier raises :class:`EvaluationError`.
    """
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Atom):
        left = evaluate_term(formula.left, valuation, domain)
        right = evaluate_term(formula.right, valuation, domain)
        return formula.rel.apply(left, right)
    if isinstance(formula, Divides):
        value = evaluate_term(formula.term, valuation, domain)
        if formula.divisor == 0:
            raise EvaluationError("divisibility by zero")
        return value % formula.divisor == 0
    if isinstance(formula, And):
        return all(evaluate(op, valuation, domain) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate(op, valuation, domain) for op in formula.operands)
    if isinstance(formula, Not):
        return not evaluate(formula.operand, valuation, domain)
    if isinstance(formula, Implies):
        return (not evaluate(formula.antecedent, valuation, domain)) or evaluate(
            formula.consequent, valuation, domain
        )
    if isinstance(formula, Iff):
        return evaluate(formula.left, valuation, domain) == evaluate(formula.right, valuation, domain)
    if isinstance(formula, Exists):
        if domain is None:
            raise EvaluationError("cannot evaluate an existential quantifier without a finite domain")
        return any(
            evaluate(formula.body, valuation.with_scalar(formula.symbol, value), domain)
            for value in domain
        )
    if isinstance(formula, Forall):
        if domain is None:
            raise EvaluationError("cannot evaluate a universal quantifier without a finite domain")
        return all(
            evaluate(formula.body, valuation.with_scalar(formula.symbol, value), domain)
            for value in domain
        )
    raise TypeError(f"unknown formula {formula!r}")
