"""Injections, pairing and projections between unary and relational formulas.

The paper (Section 3.1.2) defines:

* ``inj_o(P)`` / ``inj_r(P)`` — lift a unary formula ``P`` to a relational
  formula that constrains the original (resp. relaxed) component of a state
  pair.  At the formula level these are exactly the renamings that tag every
  plain symbol with ``<o>`` (resp. ``<r>``).
* ``<P1 . P2> = inj_o(P1) && inj_r(P2)`` — pair a predicate over the
  original execution with a predicate over the relaxed one.
* ``prj_o(P*)`` / ``prj_r(P*)`` — project a relational formula onto the set
  of original (resp. relaxed) states that appear in its denotation.  The
  projection of a formula is expressed here by existentially quantifying the
  other execution's variables; the judgments ``P* |=o P`` and ``P* |=r P``
  reduce to validity checks (see :func:`projection_entails`).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from .formula import (
    Formula,
    Symbol,
    SymTerm,
    Tag,
    conj,
    exists,
    formula_arrays,
    free_symbols,
    implies,
)
from .subst import rename_arrays, rename_symbols


def _retag(formula: Formula, source: Optional[Tag], target: Optional[Tag]) -> Formula:
    """Rename every free symbol and array with tag ``source`` to tag ``target``."""
    symbol_renaming = {
        s: Symbol(s.name, target) for s in free_symbols(formula) if s.tag == source
    }
    array_renaming = {
        a: Symbol(a.name, target) for a in formula_arrays(formula) if a.tag == source
    }
    result = rename_symbols(formula, symbol_renaming)
    if array_renaming:
        result = rename_arrays(result, array_renaming)
    return result


def inj_o(formula: Formula) -> Formula:
    """Lift a unary formula to constrain the original component of a pair."""
    return _retag(formula, None, Tag.ORIGINAL)


def inj_r(formula: Formula) -> Formula:
    """Lift a unary formula to constrain the relaxed component of a pair."""
    return _retag(formula, None, Tag.RELAXED)


def strip_o(formula: Formula) -> Formula:
    """Inverse of :func:`inj_o`: turn ``<o>``-tagged symbols into plain ones.

    Only meaningful when the formula does not also mention ``<r>`` symbols
    of the same names; callers (the diverge rule) use it on formulas that
    talk about a single execution.
    """
    return _retag(formula, Tag.ORIGINAL, None)


def strip_r(formula: Formula) -> Formula:
    """Inverse of :func:`inj_r` (see :func:`strip_o`)."""
    return _retag(formula, Tag.RELAXED, None)


def pair(original: Formula, relaxed: Formula) -> Formula:
    """The paper's ``<P1 . P2>`` notation: ``inj_o(P1) && inj_r(P2)``."""
    return conj(inj_o(original), inj_r(relaxed))


def tagged_symbols(formula: Formula, tag: Tag) -> FrozenSet[Symbol]:
    """Return the free symbols of ``formula`` carrying ``tag``."""
    return frozenset(s for s in free_symbols(formula) if s.tag == tag)


def projection_formula(formula: Formula, keep: Tag) -> Formula:
    """Express ``prj_keep(P*)`` as a unary formula over plain symbols.

    The projection onto the ``keep`` component existentially quantifies the
    variables of the *other* component and then strips the ``keep`` tag so
    the result is a unary formula.
    """
    drop = Tag.RELAXED if keep is Tag.ORIGINAL else Tag.ORIGINAL
    others = sorted(tagged_symbols(formula, drop))
    projected = exists(others, formula) if others else formula
    if keep is Tag.ORIGINAL:
        return strip_o(projected)
    return strip_r(projected)


def projection_entails(rel_formula: Formula, unary_formula: Formula, side: Tag) -> Formula:
    """Build the proof obligation for ``P* |=o P`` or ``P* |=r P``.

    ``prj_side(P*) ⊆ [[P]]`` holds iff the relational formula implies the
    appropriately injected unary formula for every state pair, i.e. iff the
    returned implication is valid.
    """
    injected = inj_o(unary_formula) if side is Tag.ORIGINAL else inj_r(unary_formula)
    return implies(rel_formula, injected)


def relational_frame(names: Iterable[str]) -> Formula:
    """The noninterference frame ``/\\ x<o> == x<r>`` over the given names.

    This is the "relational assertions that establish the equality of values
    of variables in the original and relaxed executions" that the paper uses
    to transfer reasoning from the original to the relaxed program.
    """
    from .formula import Atom, Rel

    clauses = [
        Atom(Rel.EQ, SymTerm(Symbol(name, Tag.ORIGINAL)), SymTerm(Symbol(name, Tag.RELAXED)))
        for name in names
    ]
    return conj(*clauses)
