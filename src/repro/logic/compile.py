"""Formula→closure compilation: evaluate interned DAGs without re-walking them.

:func:`repro.logic.evaluate.evaluate` interprets the formula tree on every
call: each node costs an ``isinstance`` ladder, attribute loads and a
recursive call — per assignment, per quantifier domain element.  The dynamic
hot paths (bounded model search, havoc/relax model enumeration, Monte Carlo
differential scoring) evaluate the *same* interned DAG under hundreds of
thousands of different valuations, so the per-node dispatch is pure
overhead after the first visit.

This module compiles each node once into a Python closure and caches the
closure **on the interned node itself** (the ``_compiled`` slot, exactly
like the ``free_symbols``/``formula_size`` caches of the hash-consed core).
Consequences:

* compilation cost is paid once per distinct node per process — shared
  subterms compile once no matter how many formulas contain them, and
  ``--jobs`` worker processes recompile once per DAG after re-interning;
* an evaluation is a chain of direct closure calls: no type dispatch, no
  attribute loads on the formula, operands pre-bound in cell variables.

Compiled semantics mirror :func:`~repro.logic.evaluate.evaluate` exactly —
operand evaluation order, short-circuiting of the connectives, and every
:class:`~repro.logic.evaluate.EvaluationError` condition (missing symbols,
division by zero, quantifiers without a domain, integer-valued ``Store``)
— which the hypothesis differential suite pins down.

Closures take ``(scalars, arrays, domain)``:

``scalars``
    a mutable ``Dict[Symbol, int]``; quantifiers bind their symbol by
    save/assign/restore on this dict (restored even on error), so a
    caller-supplied dict is unchanged after the call returns;
``arrays``
    ``Dict[Symbol, Dict[int, int]]`` (never mutated);
``domain``
    the finite quantifier domain, or ``None`` (quantifiers then raise).
"""

from __future__ import annotations

import operator
from typing import Callable, Dict, Mapping, Optional, Sequence

from .evaluate import EvaluationError, Valuation
from .formula import (
    Add,
    And,
    Atom,
    Const,
    Div,
    Divides,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Ite,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Rel,
    Select,
    Store,
    Sub,
    SymTerm,
    Symbol,
    Term,
    TrueF,
    _UNSET,
)

#: A compiled term: ``(scalars, arrays, domain) -> int``.
CompiledTerm = Callable[[Dict[Symbol, int], Mapping[Symbol, Dict[int, int]], Optional[Sequence[int]]], int]
#: A compiled formula: ``(scalars, arrays, domain) -> bool``.
CompiledFormula = Callable[[Dict[Symbol, int], Mapping[Symbol, Dict[int, int]], Optional[Sequence[int]]], bool]

_REL_OPS = {
    Rel.LT: operator.lt,
    Rel.LE: operator.le,
    Rel.GT: operator.gt,
    Rel.GE: operator.ge,
    Rel.EQ: operator.eq,
    Rel.NE: operator.ne,
}

# Sentinel distinct from any integer value a symbol could hold.
_MISSING = object()


class _CompileStats:
    """Counters for the per-node closure cache (cold vs warm compilation)."""

    __slots__ = ("requests", "hits", "nodes_compiled")

    def __init__(self) -> None:
        self.requests = 0
        self.hits = 0
        self.nodes_compiled = 0


_STATS = _CompileStats()


def compile_stats() -> Dict[str, float]:
    """Closure-cache counters: top-level requests, warm hits, nodes compiled."""
    requests, hits = _STATS.requests, _STATS.hits
    return {
        "requests": requests,
        "hits": hits,
        "nodes_compiled": _STATS.nodes_compiled,
        "hit_rate": (hits / requests) if requests else 0.0,
    }


def reset_compile_stats() -> None:
    """Zero the compile counters (cached closures are left on the nodes)."""
    _STATS.requests = 0
    _STATS.hits = 0
    _STATS.nodes_compiled = 0


# ---------------------------------------------------------------------------
# Term compilation
# ---------------------------------------------------------------------------


def _build_term(term: Term) -> CompiledTerm:
    cls = type(term)
    if cls is Const:
        value = term.value

        def run_const(scalars, arrays, domain):
            return value

        return run_const
    if cls is SymTerm:
        symbol = term.symbol

        def run_sym(scalars, arrays, domain):
            value = scalars.get(symbol, _MISSING)
            if value is _MISSING:
                raise EvaluationError(f"no value for symbol {symbol}")
            return value

        return run_sym
    if cls is Add:
        left, right = _term(term.left), _term(term.right)
        return lambda s, a, d: left(s, a, d) + right(s, a, d)
    if cls is Sub:
        left, right = _term(term.left), _term(term.right)
        return lambda s, a, d: left(s, a, d) - right(s, a, d)
    if cls is Mul:
        left, right = _term(term.left), _term(term.right)
        return lambda s, a, d: left(s, a, d) * right(s, a, d)
    if cls is Div:
        # The tree-walker evaluates the divisor first; preserve that so a
        # missing symbol on the left cannot mask a division by zero.
        left, right = _term(term.left), _term(term.right)

        def run_div(scalars, arrays, domain):
            divisor = right(scalars, arrays, domain)
            if divisor == 0:
                raise EvaluationError("division by zero")
            return left(scalars, arrays, domain) // divisor

        return run_div
    if cls is Mod:
        left, right = _term(term.left), _term(term.right)

        def run_mod(scalars, arrays, domain):
            divisor = right(scalars, arrays, domain)
            if divisor == 0:
                raise EvaluationError("modulo by zero")
            return left(scalars, arrays, domain) % divisor

        return run_mod
    if cls is Min:
        left, right = _term(term.left), _term(term.right)
        return lambda s, a, d: min(left(s, a, d), right(s, a, d))
    if cls is Max:
        left, right = _term(term.left), _term(term.right)
        return lambda s, a, d: max(left(s, a, d), right(s, a, d))
    if cls is Ite:
        condition = _formula(term.condition)
        then_term, else_term = _term(term.then_term), _term(term.else_term)

        def run_ite(scalars, arrays, domain):
            if condition(scalars, arrays, domain):
                return then_term(scalars, arrays, domain)
            return else_term(scalars, arrays, domain)

        return run_ite
    if cls is Select:
        array = term.array
        index_fn = _term(term.index)

        def run_select(scalars, arrays, domain):
            index = index_fn(scalars, arrays, domain)
            values = arrays.get(array)
            if values is None:
                raise EvaluationError(f"no value for array {array}")
            value = values.get(index, _MISSING)
            if value is _MISSING:
                raise EvaluationError(f"array {array} has no element at index {index}")
            return value

        return run_select
    if cls is Store:

        def run_store(scalars, arrays, domain):
            raise EvaluationError(
                "store terms are array-valued and cannot be evaluated to an integer"
            )

        return run_store
    raise TypeError(f"unknown term {term!r}")


# ---------------------------------------------------------------------------
# Formula compilation
# ---------------------------------------------------------------------------


def _build_formula(formula: Formula) -> CompiledFormula:
    cls = type(formula)
    if cls is TrueF:
        return lambda s, a, d: True
    if cls is FalseF:
        return lambda s, a, d: False
    if cls is Atom:
        rel_op = _REL_OPS[formula.rel]
        left, right = _term(formula.left), _term(formula.right)
        return lambda s, a, d: rel_op(left(s, a, d), right(s, a, d))
    if cls is Divides:
        divisor = formula.divisor
        term_fn = _term(formula.term)

        def run_divides(scalars, arrays, domain):
            value = term_fn(scalars, arrays, domain)
            if divisor == 0:
                raise EvaluationError("divisibility by zero")
            return value % divisor == 0

        return run_divides
    if cls is And:
        operands = tuple(_formula(op) for op in formula.operands)

        def run_and(scalars, arrays, domain):
            for operand in operands:
                if not operand(scalars, arrays, domain):
                    return False
            return True

        return run_and
    if cls is Or:
        operands = tuple(_formula(op) for op in formula.operands)

        def run_or(scalars, arrays, domain):
            for operand in operands:
                if operand(scalars, arrays, domain):
                    return True
            return False

        return run_or
    if cls is Not:
        operand = _formula(formula.operand)
        return lambda s, a, d: not operand(s, a, d)
    if cls is Implies:
        antecedent = _formula(formula.antecedent)
        consequent = _formula(formula.consequent)

        def run_implies(scalars, arrays, domain):
            if not antecedent(scalars, arrays, domain):
                return True
            return consequent(scalars, arrays, domain)

        return run_implies
    if cls is Iff:
        left, right = _formula(formula.left), _formula(formula.right)
        return lambda s, a, d: left(s, a, d) == right(s, a, d)
    if cls is Exists or cls is Forall:
        symbol = formula.symbol
        body = _formula(formula.body)
        existential = cls is Exists
        kind = "an existential" if existential else "a universal"

        def run_quantifier(scalars, arrays, domain):
            if domain is None:
                raise EvaluationError(
                    f"cannot evaluate {kind} quantifier without a finite domain"
                )
            saved = scalars.get(symbol, _MISSING)
            try:
                for value in domain:
                    scalars[symbol] = value
                    if body(scalars, arrays, domain) is existential:
                        return existential
                return not existential
            finally:
                if saved is _MISSING:
                    scalars.pop(symbol, None)
                else:
                    scalars[symbol] = saved

        return run_quantifier
    raise TypeError(f"unknown formula {formula!r}")


# ---------------------------------------------------------------------------
# Memoised entry points
# ---------------------------------------------------------------------------


def _term(term: Term) -> CompiledTerm:
    compiled = term._compiled
    if compiled is not _UNSET:
        return compiled
    compiled = _build_term(term)
    _STATS.nodes_compiled += 1
    object.__setattr__(term, "_compiled", compiled)
    return compiled


def _formula(formula: Formula) -> CompiledFormula:
    compiled = formula._compiled
    if compiled is not _UNSET:
        return compiled
    compiled = _build_formula(formula)
    _STATS.nodes_compiled += 1
    object.__setattr__(formula, "_compiled", compiled)
    return compiled


def compile_term(term: Term) -> CompiledTerm:
    """Compile a term to a closure, memoised on the interned node."""
    if not isinstance(term, Term):
        raise TypeError(f"unknown term {term!r}")
    _STATS.requests += 1
    if term._compiled is not _UNSET:
        _STATS.hits += 1
    return _term(term)


def compile_formula(formula: Formula) -> CompiledFormula:
    """Compile a formula to a closure, memoised on the interned node."""
    if not isinstance(formula, Formula):
        raise TypeError(f"unknown formula {formula!r}")
    _STATS.requests += 1
    if formula._compiled is not _UNSET:
        _STATS.hits += 1
    return _formula(formula)


def evaluate_compiled(
    formula: Formula,
    valuation: Valuation,
    domain: Optional[Sequence[int]] = None,
) -> bool:
    """Drop-in for :func:`~repro.logic.evaluate.evaluate` via compilation.

    The valuation's scalar dict is threaded straight through (quantifiers
    save/restore their binding, so it is unchanged on return, including on
    error paths).
    """
    return compile_formula(formula)(valuation.scalars, valuation.arrays, domain)


def evaluate_term_compiled(
    term: Term,
    valuation: Valuation,
    domain: Optional[Sequence[int]] = None,
) -> int:
    """Drop-in for :func:`~repro.logic.evaluate.evaluate_term` via compilation."""
    return compile_term(term)(valuation.scalars, valuation.arrays, domain)
