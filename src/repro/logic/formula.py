"""First-order assertion logic over integer terms (Figures 5 and 6).

This module defines the formula intermediate representation shared by

* the assertion logic ``P`` (unary formulas over one execution's state),
* the relational assertion logic ``P*`` (formulas over pairs of states),
* the proof-obligation generator in :mod:`repro.hoare`, and
* the decision procedures in :mod:`repro.solver`.

Representation choices
----------------------

Variables are :class:`Symbol` objects carrying a *name* and a *tag*:

* ``tag = None`` — a plain variable ``x`` of a unary formula,
* ``tag = "o"`` — an original-execution variable ``x<o>``,
* ``tag = "r"`` — a relaxed-execution variable ``x<r>``.

A unary formula uses only untagged symbols; a relational formula uses only
tagged symbols.  The injections ``inj_o`` / ``inj_r`` of the paper are the
renamings that tag every plain symbol (see :mod:`repro.logic.inject`).

Terms include integer constants, symbols, the arithmetic operators of the
programming language, ``if-then-else`` terms (used by the weakest
precondition of array stores) and array ``select`` terms.  Formulas are
built from comparisons of terms, the boolean connectives, negation, and the
quantifiers ``exists`` / ``forall`` over symbols.

Hash consing
------------

Every term and formula node is **interned**: constructing a node with the
same class and fields twice returns the *same* object.  Consequences relied
on throughout the codebase:

* structural equality coincides with identity (``a == b`` iff ``a is b``),
  so equality checks, set membership and dict lookups are O(1);
* each node carries a precomputed structural hash, and caches its free
  symbols, array symbols, node count and quantifier depth, so
  ``free_symbols`` / ``formula_size`` / friends are O(1) after the first
  query on a subterm — even when that subterm is shared by many formulas;
* nodes pickle by reconstruction (:meth:`_Interned.__reduce__`), so they
  re-intern on arrival in obligation-discharge worker processes.

The intern table holds strong references and is never cleared: clearing it
would let structurally equal nodes with distinct identities coexist,
breaking the equality-is-identity invariant.  Memory stays bounded by the
number of *distinct* nodes a process ever builds, which for the CLI
commands, the test harness and explorer rounds is small (a weak table was
measured 2.5x slower on normalisation due to dead-reference churn on
transient nodes).
"""

from __future__ import annotations

import enum
import itertools
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple, Union


class Tag(enum.Enum):
    """Which execution a symbol belongs to (``None`` means unary/plain)."""

    ORIGINAL = "o"
    RELAXED = "r"


class Symbol:
    """A logical variable, optionally tagged with an execution.

    Symbols are interned like the formula nodes: ``Symbol(n, t)`` always
    returns the same object for the same fields, equality is identity, and
    the hash and sort key are precomputed (symbols are the hottest dict
    keys in the linear-arithmetic core).
    """

    __slots__ = ("name", "tag", "_hash", "_key")
    _table: Dict[Tuple[str, Optional[Tag]], "Symbol"] = {}

    def __new__(cls, name: str, tag: Optional[Tag] = None) -> "Symbol":
        key = (name, tag)
        symbol = cls._table.get(key)
        if symbol is None:
            symbol = object.__new__(cls)
            object.__setattr__(symbol, "name", name)
            object.__setattr__(symbol, "tag", tag)
            object.__setattr__(symbol, "_hash", hash(key))
            object.__setattr__(
                symbol, "_key", (name, tag.value if tag is not None else "")
            )
            cls._table[key] = symbol
        return symbol

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Symbol is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Symbol, (self.name, self.tag))

    def __repr__(self) -> str:
        return f"Symbol(name={self.name!r}, tag={self.tag!r})"

    def __str__(self) -> str:
        if self.tag is None:
            return self.name
        return f"{self.name}<{self.tag.value}>"

    def with_tag(self, tag: Optional[Tag]) -> "Symbol":
        if tag is self.tag:
            return self
        return Symbol(self.name, tag)

    def sort_key(self) -> Tuple[str, str]:
        return self._key

    def __lt__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self._key < other._key

    def __le__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self._key <= other._key

    def __gt__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self._key > other._key

    def __ge__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self._key >= other._key


def sym(name: str) -> Symbol:
    """A plain (untagged) symbol."""
    return Symbol(name, None)


def sym_o(name: str) -> Symbol:
    """An original-execution symbol ``name<o>``."""
    return Symbol(name, Tag.ORIGINAL)


def sym_r(name: str) -> Symbol:
    """A relaxed-execution symbol ``name<r>``."""
    return Symbol(name, Tag.RELAXED)


# ---------------------------------------------------------------------------
# The intern table
# ---------------------------------------------------------------------------


class _InternStats:
    """Counters for intern-table traffic (hit rate is a sharing measure)."""

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0


_INTERN: Dict[tuple, "_Interned"] = {}
_INTERN_STATS = _InternStats()

# Lazy-cache sentinel: slots are initialised to this until first computed.
_UNSET = object()


def intern_stats() -> Dict[str, float]:
    """Intern-table counters: constructor hits/misses, live nodes, hit rate."""
    hits, misses = _INTERN_STATS.hits, _INTERN_STATS.misses
    total = hits + misses
    return {
        "hits": hits,
        "misses": misses,
        "live_nodes": len(_INTERN),
        "hit_rate": (hits / total) if total else 0.0,
    }


def reset_intern_stats() -> None:
    """Zero the hit/miss counters (the table itself is left untouched)."""
    _INTERN_STATS.hits = 0
    _INTERN_STATS.misses = 0


class _Interned:
    """Base of all hash-consed nodes (terms and formulas).

    Subclasses declare ``_fields`` (constructor argument order) and get
    interning, a precomputed structural hash, identity equality, pickling by
    reconstruction and a dataclass-style ``repr`` for free.
    """

    __slots__ = ("_hash", "_free", "_arrays", "_size", "_qdepth", "_compiled", "__weakref__")
    _fields: Tuple[str, ...] = ()

    def __hash__(self) -> int:
        return self._hash

    # Interning makes structural equality coincide with identity, so the
    # default object identity __eq__ is exactly structural equality.

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} nodes are immutable")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"{type(self).__name__} nodes are immutable")

    def __reduce__(self):
        return (type(self), tuple(getattr(self, f) for f in self._fields))

    def __repr__(self) -> str:
        parts = ", ".join(f"{f}={getattr(self, f)!r}" for f in self._fields)
        return f"{type(self).__name__}({parts})"


def _mk(cls, args: tuple) -> "_Interned":
    """Intern-or-create the node ``cls(*args)``."""
    key = (cls, *args)
    node = _INTERN.get(key)
    if node is not None:
        _INTERN_STATS.hits += 1
        return node
    _INTERN_STATS.misses += 1
    node = object.__new__(cls)
    set_ = object.__setattr__
    for name, value in zip(cls._fields, args):
        set_(node, name, value)
    set_(node, "_hash", hash(key))
    set_(node, "_free", _UNSET)
    set_(node, "_arrays", _UNSET)
    set_(node, "_size", _UNSET)
    set_(node, "_qdepth", _UNSET)
    set_(node, "_compiled", _UNSET)
    _INTERN[key] = node
    return node


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term(_Interned):
    """Base class of integer-valued terms."""

    __slots__ = ()

    def __add__(self, other: "TermLike") -> "Term":
        return Add(self, to_term(other))

    def __radd__(self, other: "TermLike") -> "Term":
        return Add(to_term(other), self)

    def __sub__(self, other: "TermLike") -> "Term":
        return Sub(self, to_term(other))

    def __rsub__(self, other: "TermLike") -> "Term":
        return Sub(to_term(other), self)

    def __mul__(self, other: "TermLike") -> "Term":
        return Mul(self, to_term(other))

    def __rmul__(self, other: "TermLike") -> "Term":
        return Mul(to_term(other), self)

    def __neg__(self) -> "Term":
        return Sub(Const(0), self)


TermLike = Union["Term", int]


class Const(Term):
    """An integer constant."""

    __slots__ = ("value",)
    _fields = ("value",)

    def __new__(cls, value: int) -> "Const":
        return _mk(cls, (value,))

    def __str__(self) -> str:
        return str(self.value)


class SymTerm(Term):
    """A variable occurrence."""

    __slots__ = ("symbol",)
    _fields = ("symbol",)

    def __new__(cls, symbol: Symbol) -> "SymTerm":
        return _mk(cls, (symbol,))

    def __str__(self) -> str:
        return str(self.symbol)


class _BinTerm(Term):
    """Shared shape of the binary arithmetic operators."""

    __slots__ = ("left", "right")
    _fields = ("left", "right")

    def __new__(cls, left: Term, right: Term):
        return _mk(cls, (left, right))


class Add(_BinTerm):
    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


class Sub(_BinTerm):
    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


class Mul(_BinTerm):
    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"


class Div(_BinTerm):
    """Integer (floor) division."""

    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} / {self.right})"


class Mod(_BinTerm):
    """Integer modulo (sign of divisor, Python semantics)."""

    __slots__ = ()

    def __str__(self) -> str:
        return f"({self.left} % {self.right})"


class Min(_BinTerm):
    __slots__ = ()

    def __str__(self) -> str:
        return f"min({self.left}, {self.right})"


class Max(_BinTerm):
    __slots__ = ()

    def __str__(self) -> str:
        return f"max({self.left}, {self.right})"


class Ite(Term):
    """An if-then-else term (condition is a formula)."""

    __slots__ = ("condition", "then_term", "else_term")
    _fields = ("condition", "then_term", "else_term")

    def __new__(cls, condition: "Formula", then_term: Term, else_term: Term) -> "Ite":
        return _mk(cls, (condition, then_term, else_term))

    def __str__(self) -> str:
        return f"ite({self.condition}, {self.then_term}, {self.else_term})"


class Select(Term):
    """An array read ``select(array, index)`` over a symbolic array."""

    __slots__ = ("array", "index")
    _fields = ("array", "index")

    def __new__(cls, array: Symbol, index: Term) -> "Select":
        return _mk(cls, (array, index))

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


class Store(Term):
    """A functional array update ``store(array, index, value)``.

    ``Store`` terms only ever appear as the array argument of ``Select``
    (they are introduced by the weakest precondition of array assignment and
    eliminated during normalisation), so they are integer-sorted only in the
    degenerate sense; the normaliser removes them before solving.
    """

    __slots__ = ("array", "index", "value")
    _fields = ("array", "index", "value")

    def __new__(cls, array: Union[Symbol, "Store"], index: Term, value: Term) -> "Store":
        return _mk(cls, (array, index, value))

    def __str__(self) -> str:
        return f"store({self.array}, {self.index}, {self.value})"


def to_term(value: TermLike) -> Term:
    """Coerce an int or term into a :class:`Term`."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not integer terms")
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot coerce {value!r} to a term")


def var(name: str, tag: Optional[Tag] = None) -> Term:
    """A variable occurrence term."""
    return SymTerm(Symbol(name, tag))


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Rel(enum.Enum):
    """Atomic comparison relations."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def apply(self, left: int, right: int) -> bool:
        if self is Rel.LT:
            return left < right
        if self is Rel.LE:
            return left <= right
        if self is Rel.GT:
            return left > right
        if self is Rel.GE:
            return left >= right
        if self is Rel.EQ:
            return left == right
        if self is Rel.NE:
            return left != right
        raise AssertionError(f"unhandled relation {self}")

    def negate(self) -> "Rel":
        return _REL_NEGATION[self]


_REL_NEGATION = {
    Rel.LT: Rel.GE,
    Rel.LE: Rel.GT,
    Rel.GT: Rel.LE,
    Rel.GE: Rel.LT,
    Rel.EQ: Rel.NE,
    Rel.NE: Rel.EQ,
}


class Formula(_Interned):
    """Base class of formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


class TrueF(Formula):
    __slots__ = ()
    _fields = ()

    def __new__(cls) -> "TrueF":
        return _mk(cls, ())

    def __str__(self) -> str:
        return "true"


class FalseF(Formula):
    __slots__ = ()
    _fields = ()

    def __new__(cls) -> "FalseF":
        return _mk(cls, ())

    def __str__(self) -> str:
        return "false"


TRUE = TrueF()
FALSE = FalseF()


class Atom(Formula):
    """A comparison of two terms."""

    __slots__ = ("rel", "left", "right")
    _fields = ("rel", "left", "right")

    def __new__(cls, rel: Rel, left: Term, right: Term) -> "Atom":
        return _mk(cls, (rel, left, right))

    def __str__(self) -> str:
        return f"({self.left} {self.rel.value} {self.right})"


class Divides(Formula):
    """A divisibility atom ``divisor | term`` (used by Cooper's algorithm)."""

    __slots__ = ("divisor", "term")
    _fields = ("divisor", "term")

    def __new__(cls, divisor: int, term: Term) -> "Divides":
        return _mk(cls, (divisor, term))

    def __str__(self) -> str:
        return f"({self.divisor} | {self.term})"


class And(Formula):
    __slots__ = ("operands",)
    _fields = ("operands",)

    def __new__(cls, operands: Tuple[Formula, ...]) -> "And":
        return _mk(cls, (tuple(operands),))

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " && ".join(str(op) for op in self.operands) + ")"


class Or(Formula):
    __slots__ = ("operands",)
    _fields = ("operands",)

    def __new__(cls, operands: Tuple[Formula, ...]) -> "Or":
        return _mk(cls, (tuple(operands),))

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " || ".join(str(op) for op in self.operands) + ")"


class Not(Formula):
    __slots__ = ("operand",)
    _fields = ("operand",)

    def __new__(cls, operand: Formula) -> "Not":
        return _mk(cls, (operand,))

    def __str__(self) -> str:
        return f"!({self.operand})"


class Implies(Formula):
    __slots__ = ("antecedent", "consequent")
    _fields = ("antecedent", "consequent")

    def __new__(cls, antecedent: Formula, consequent: Formula) -> "Implies":
        return _mk(cls, (antecedent, consequent))

    def __str__(self) -> str:
        return f"({self.antecedent} ==> {self.consequent})"


class Iff(Formula):
    __slots__ = ("left", "right")
    _fields = ("left", "right")

    def __new__(cls, left: Formula, right: Formula) -> "Iff":
        return _mk(cls, (left, right))

    def __str__(self) -> str:
        return f"({self.left} <=> {self.right})"


class Exists(Formula):
    __slots__ = ("symbol", "body")
    _fields = ("symbol", "body")

    def __new__(cls, symbol: Symbol, body: Formula) -> "Exists":
        return _mk(cls, (symbol, body))

    def __str__(self) -> str:
        return f"(exists {self.symbol} . {self.body})"


class Forall(Formula):
    __slots__ = ("symbol", "body")
    _fields = ("symbol", "body")

    def __new__(cls, symbol: Symbol, body: Formula) -> "Forall":
        return _mk(cls, (symbol, body))

    def __str__(self) -> str:
        return f"(forall {self.symbol} . {self.body})"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction with unit simplification."""
    flat = []
    for formula in formulas:
        if isinstance(formula, TrueF):
            continue
        if isinstance(formula, FalseF):
            return FALSE
        if isinstance(formula, And):
            flat.extend(formula.operands)
        else:
            flat.append(formula)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction with unit simplification."""
    flat = []
    for formula in formulas:
        if isinstance(formula, FalseF):
            continue
        if isinstance(formula, TrueF):
            return TRUE
        if isinstance(formula, Or):
            flat.extend(formula.operands)
        else:
            flat.append(formula)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(formula: Formula) -> Formula:
    """Negation with double-negation and literal simplification."""
    if isinstance(formula, TrueF):
        return FALSE
    if isinstance(formula, FalseF):
        return TRUE
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    if isinstance(antecedent, TrueF):
        return consequent
    if isinstance(antecedent, FalseF):
        return TRUE
    if isinstance(consequent, TrueF):
        return TRUE
    return Implies(antecedent, consequent)


def iff(left: Formula, right: Formula) -> Formula:
    return Iff(left, right)


def exists(symbols: Union[Symbol, Sequence[Symbol]], body: Formula) -> Formula:
    """Existentially quantify one or more symbols (innermost is last)."""
    if isinstance(symbols, Symbol):
        symbols = [symbols]
    result = body
    for symbol in reversed(list(symbols)):
        result = Exists(symbol, result)
    return result


def forall(symbols: Union[Symbol, Sequence[Symbol]], body: Formula) -> Formula:
    """Universally quantify one or more symbols (innermost is last)."""
    if isinstance(symbols, Symbol):
        symbols = [symbols]
    result = body
    for symbol in reversed(list(symbols)):
        result = Forall(symbol, result)
    return result


def lt(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.LT, to_term(left), to_term(right))


def le(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.LE, to_term(left), to_term(right))


def gt(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.GT, to_term(left), to_term(right))


def ge(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.GE, to_term(left), to_term(right))


def eq(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.EQ, to_term(left), to_term(right))


def ne(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.NE, to_term(left), to_term(right))


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def term_children(term: Term) -> Tuple[Term, ...]:
    """Return the immediate sub-terms of a term."""
    if isinstance(term, (Const, SymTerm)):
        return ()
    if isinstance(term, _BinTerm):
        return (term.left, term.right)
    if isinstance(term, Ite):
        return (term.then_term, term.else_term)
    if isinstance(term, Select):
        return (term.index,)
    if isinstance(term, Store):
        parts: Tuple[Term, ...] = (term.index, term.value)
        if isinstance(term.array, Store):
            parts = (term.array,) + parts
        return parts
    raise TypeError(f"unknown term {term!r}")


def formula_terms(formula: Formula) -> Iterator[Term]:
    """Yield the top-level terms appearing in a formula's atoms."""
    if isinstance(formula, Atom):
        yield formula.left
        yield formula.right
    elif isinstance(formula, Divides):
        yield formula.term
    elif isinstance(formula, (And, Or)):
        for operand in formula.operands:
            yield from formula_terms(operand)
    elif isinstance(formula, Not):
        yield from formula_terms(formula.operand)
    elif isinstance(formula, Implies):
        yield from formula_terms(formula.antecedent)
        yield from formula_terms(formula.consequent)
    elif isinstance(formula, Iff):
        yield from formula_terms(formula.left)
        yield from formula_terms(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        yield from formula_terms(formula.body)
    elif isinstance(formula, (TrueF, FalseF)):
        return
    else:
        raise TypeError(f"unknown formula {formula!r}")


# -- cached structural queries ----------------------------------------------
#
# Each query is computed once per interned node and cached on it; with heavy
# subterm sharing (the common case across obligations of one program, and
# across sibling candidates in the explorer) the amortised cost of a query
# on a fresh formula is proportional to its *new* nodes only.


def _free_of(node: _Interned) -> FrozenSet[Symbol]:
    cached = node._free
    if cached is not _UNSET:
        return cached
    cls = type(node)
    result: FrozenSet[Symbol]
    if cls is Const or cls is TrueF or cls is FalseF:
        result = frozenset()
    elif cls is SymTerm:
        result = frozenset((node.symbol,))
    elif cls is Ite:
        result = _free_of(node.condition) | _free_of(node.then_term) | _free_of(node.else_term)
    elif cls is Select:
        result = _free_of(node.index)
    elif cls is Store:
        result = _free_of(node.index) | _free_of(node.value)
        if isinstance(node.array, Store):
            result |= _free_of(node.array)
    elif cls is Atom:
        result = _free_of(node.left) | _free_of(node.right)
    elif cls is Divides:
        result = _free_of(node.term)
    elif cls is And or cls is Or:
        result = frozenset()
        for operand in node.operands:
            result |= _free_of(operand)
    elif cls is Not:
        result = _free_of(node.operand)
    elif cls is Implies:
        result = _free_of(node.antecedent) | _free_of(node.consequent)
    elif cls is Iff:
        result = _free_of(node.left) | _free_of(node.right)
    elif cls is Exists or cls is Forall:
        result = _free_of(node.body) - frozenset((node.symbol,))
    elif isinstance(node, _BinTerm):
        result = _free_of(node.left) | _free_of(node.right)
    else:
        raise TypeError(f"unknown formula {node!r}")
    object.__setattr__(node, "_free", result)
    return result


def _arrays_of(node: _Interned) -> FrozenSet[Symbol]:
    cached = node._arrays
    if cached is not _UNSET:
        return cached
    cls = type(node)
    result: FrozenSet[Symbol]
    if cls is Const or cls is SymTerm or cls is TrueF or cls is FalseF:
        result = frozenset()
    elif cls is Ite:
        result = _arrays_of(node.condition) | _arrays_of(node.then_term) | _arrays_of(node.else_term)
    elif cls is Select:
        result = frozenset((node.array,)) | _arrays_of(node.index)
    elif cls is Store:
        if isinstance(node.array, Symbol):
            result = frozenset((node.array,))
        else:
            result = _arrays_of(node.array)
        result |= _arrays_of(node.index) | _arrays_of(node.value)
    elif cls is Atom:
        result = _arrays_of(node.left) | _arrays_of(node.right)
    elif cls is Divides:
        result = _arrays_of(node.term)
    elif cls is And or cls is Or:
        result = frozenset()
        for operand in node.operands:
            result |= _arrays_of(operand)
    elif cls is Not:
        result = _arrays_of(node.operand)
    elif cls is Implies:
        result = _arrays_of(node.antecedent) | _arrays_of(node.consequent)
    elif cls is Iff:
        result = _arrays_of(node.left) | _arrays_of(node.right)
    elif cls is Exists or cls is Forall:
        result = _arrays_of(node.body)
    elif isinstance(node, _BinTerm):
        result = _arrays_of(node.left) | _arrays_of(node.right)
    else:
        raise TypeError(f"unknown formula {node!r}")
    object.__setattr__(node, "_arrays", result)
    return result


def _size_of(node: _Interned) -> int:
    cached = node._size
    if cached is not _UNSET:
        return cached
    cls = type(node)
    if cls is Ite:
        result = 1 + _size_of(node.condition) + _size_of(node.then_term) + _size_of(node.else_term)
    elif cls is Atom:
        result = 1 + _size_of(node.left) + _size_of(node.right)
    elif cls is Divides:
        result = 1 + _size_of(node.term)
    elif cls is And or cls is Or:
        result = 1 + sum(_size_of(op) for op in node.operands)
    elif cls is Not:
        result = 1 + _size_of(node.operand)
    elif cls is Implies:
        result = 1 + _size_of(node.antecedent) + _size_of(node.consequent)
    elif cls is Iff:
        result = 1 + _size_of(node.left) + _size_of(node.right)
    elif cls is Exists or cls is Forall:
        result = 1 + _size_of(node.body)
    elif isinstance(node, Term):
        result = 1 + sum(_size_of(child) for child in term_children(node))
    elif cls is TrueF or cls is FalseF:
        result = 1
    else:
        raise TypeError(f"unknown formula {node!r}")
    object.__setattr__(node, "_size", result)
    return result


def _qdepth_of(node: _Interned) -> int:
    cached = node._qdepth
    if cached is not _UNSET:
        return cached
    cls = type(node)
    if cls is Exists or cls is Forall:
        result = 1 + _qdepth_of(node.body)
    elif cls is Const or cls is SymTerm or cls is TrueF or cls is FalseF:
        result = 0
    elif cls is Ite:
        result = max(_qdepth_of(node.condition), _qdepth_of(node.then_term), _qdepth_of(node.else_term))
    elif cls is Select:
        result = _qdepth_of(node.index)
    elif cls is Store:
        result = max(_qdepth_of(node.index), _qdepth_of(node.value))
        if isinstance(node.array, Store):
            result = max(result, _qdepth_of(node.array))
    elif cls is Atom:
        result = max(_qdepth_of(node.left), _qdepth_of(node.right))
    elif cls is Divides:
        result = _qdepth_of(node.term)
    elif cls is And or cls is Or:
        result = max((_qdepth_of(op) for op in node.operands), default=0)
    elif cls is Not:
        result = _qdepth_of(node.operand)
    elif cls is Implies:
        result = max(_qdepth_of(node.antecedent), _qdepth_of(node.consequent))
    elif cls is Iff:
        result = max(_qdepth_of(node.left), _qdepth_of(node.right))
    elif isinstance(node, _BinTerm):
        result = max(_qdepth_of(node.left), _qdepth_of(node.right))
    else:
        raise TypeError(f"unknown formula {node!r}")
    object.__setattr__(node, "_qdepth", result)
    return result


def term_symbols(term: Term) -> FrozenSet[Symbol]:
    """Return the integer symbols occurring in a term (not array symbols)."""
    if not isinstance(term, Term):
        raise TypeError(f"unknown term {term!r}")
    return _free_of(term)


def term_arrays(term: Term) -> FrozenSet[Symbol]:
    """Return the array symbols occurring in a term."""
    if not isinstance(term, Term):
        raise TypeError(f"unknown term {term!r}")
    return _arrays_of(term)


def free_symbols(formula: Formula) -> FrozenSet[Symbol]:
    """Return the free integer symbols of a formula."""
    if not isinstance(formula, Formula):
        raise TypeError(f"unknown formula {formula!r}")
    return _free_of(formula)


def formula_arrays(formula: Formula) -> FrozenSet[Symbol]:
    """Return the array symbols occurring in a formula."""
    if not isinstance(formula, Formula):
        raise TypeError(f"unknown formula {formula!r}")
    return _arrays_of(formula)


def formula_size(formula: Formula) -> int:
    """A simple node-count size metric used in effort reports."""
    if not isinstance(formula, Formula):
        raise TypeError(f"unknown formula {formula!r}")
    return _size_of(formula)


def _term_size(term: Term) -> int:
    return _size_of(term)


def quantifier_depth(formula: Formula) -> int:
    """Maximum quantifier nesting depth (0 for quantifier-free formulas)."""
    if not isinstance(formula, (Formula, Term)):
        raise TypeError(f"unknown formula {formula!r}")
    return _qdepth_of(formula)


# ---------------------------------------------------------------------------
# Fresh symbol generation
# ---------------------------------------------------------------------------


class FreshSymbols:
    """A generator of fresh symbols avoiding a given set of used names.

    The proof rules (Figures 7 and 8) require ``fresh(X')`` side conditions;
    a shared instance of this class provides those fresh names while keeping
    them readable (``x'``, ``x''``, ``x'1`` are rendered as ``x_f1``,
    ``x_f2``, ...).
    """

    def __init__(self, used: Optional[Sequence[str]] = None) -> None:
        self._used = set(used or ())
        self._counter = itertools.count(1)

    def reserve(self, names: Sequence[str]) -> None:
        """Mark additional names as used."""
        self._used.update(names)

    def fresh(self, base: str, tag: Optional[Tag] = None) -> Symbol:
        """Return a fresh symbol whose name is derived from ``base``."""
        while True:
            index = next(self._counter)
            candidate = f"{base}_f{index}"
            if candidate not in self._used:
                self._used.add(candidate)
                return Symbol(candidate, tag)
