"""First-order assertion logic over integer terms (Figures 5 and 6).

This module defines the formula intermediate representation shared by

* the assertion logic ``P`` (unary formulas over one execution's state),
* the relational assertion logic ``P*`` (formulas over pairs of states),
* the proof-obligation generator in :mod:`repro.hoare`, and
* the decision procedures in :mod:`repro.solver`.

Representation choices
----------------------

Variables are :class:`Symbol` objects carrying a *name* and a *tag*:

* ``tag = None`` — a plain variable ``x`` of a unary formula,
* ``tag = "o"`` — an original-execution variable ``x<o>``,
* ``tag = "r"`` — a relaxed-execution variable ``x<r>``.

A unary formula uses only untagged symbols; a relational formula uses only
tagged symbols.  The injections ``inj_o`` / ``inj_r`` of the paper are the
renamings that tag every plain symbol (see :mod:`repro.logic.inject`).

Terms include integer constants, symbols, the arithmetic operators of the
programming language, ``if-then-else`` terms (used by the weakest
precondition of array stores) and array ``select`` terms.  Formulas are
built from comparisons of terms, the boolean connectives, negation, and the
quantifiers ``exists`` / ``forall`` over symbols.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Sequence, Tuple, Union


class Tag(enum.Enum):
    """Which execution a symbol belongs to (``None`` means unary/plain)."""

    ORIGINAL = "o"
    RELAXED = "r"


@dataclass(frozen=True)
class Symbol:
    """A logical variable, optionally tagged with an execution."""

    name: str
    tag: Optional[Tag] = None

    def __str__(self) -> str:
        if self.tag is None:
            return self.name
        return f"{self.name}<{self.tag.value}>"

    def with_tag(self, tag: Optional[Tag]) -> "Symbol":
        return Symbol(self.name, tag)

    def sort_key(self) -> Tuple[str, str]:
        return (self.name, self.tag.value if self.tag is not None else "")

    def __lt__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __le__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.sort_key() <= other.sort_key()

    def __gt__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.sort_key() > other.sort_key()

    def __ge__(self, other: "Symbol") -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.sort_key() >= other.sort_key()


def sym(name: str) -> Symbol:
    """A plain (untagged) symbol."""
    return Symbol(name, None)


def sym_o(name: str) -> Symbol:
    """An original-execution symbol ``name<o>``."""
    return Symbol(name, Tag.ORIGINAL)


def sym_r(name: str) -> Symbol:
    """A relaxed-execution symbol ``name<r>``."""
    return Symbol(name, Tag.RELAXED)


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of integer-valued terms."""

    __slots__ = ()

    def __add__(self, other: "TermLike") -> "Term":
        return Add(self, to_term(other))

    def __radd__(self, other: "TermLike") -> "Term":
        return Add(to_term(other), self)

    def __sub__(self, other: "TermLike") -> "Term":
        return Sub(self, to_term(other))

    def __rsub__(self, other: "TermLike") -> "Term":
        return Sub(to_term(other), self)

    def __mul__(self, other: "TermLike") -> "Term":
        return Mul(self, to_term(other))

    def __rmul__(self, other: "TermLike") -> "Term":
        return Mul(to_term(other), self)

    def __neg__(self) -> "Term":
        return Sub(Const(0), self)


TermLike = Union["Term", int]


@dataclass(frozen=True)
class Const(Term):
    """An integer constant."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class SymTerm(Term):
    """A variable occurrence."""

    symbol: Symbol

    def __str__(self) -> str:
        return str(self.symbol)


@dataclass(frozen=True)
class Add(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Sub(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


@dataclass(frozen=True)
class Mul(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} * {self.right})"


@dataclass(frozen=True)
class Div(Term):
    """Integer (floor) division."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} / {self.right})"


@dataclass(frozen=True)
class Mod(Term):
    """Integer modulo (sign of divisor, Python semantics)."""

    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} % {self.right})"


@dataclass(frozen=True)
class Min(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"min({self.left}, {self.right})"


@dataclass(frozen=True)
class Max(Term):
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"max({self.left}, {self.right})"


@dataclass(frozen=True)
class Ite(Term):
    """An if-then-else term (condition is a formula)."""

    condition: "Formula"
    then_term: Term
    else_term: Term

    def __str__(self) -> str:
        return f"ite({self.condition}, {self.then_term}, {self.else_term})"


@dataclass(frozen=True)
class Select(Term):
    """An array read ``select(array, index)`` over a symbolic array."""

    array: Symbol
    index: Term

    def __str__(self) -> str:
        return f"{self.array}[{self.index}]"


@dataclass(frozen=True)
class Store(Term):
    """A functional array update ``store(array, index, value)``.

    ``Store`` terms only ever appear as the array argument of ``Select``
    (they are introduced by the weakest precondition of array assignment and
    eliminated during normalisation), so they are integer-sorted only in the
    degenerate sense; the normaliser removes them before solving.
    """

    array: Union[Symbol, "Store"]
    index: Term
    value: Term

    def __str__(self) -> str:
        return f"store({self.array}, {self.index}, {self.value})"


def to_term(value: TermLike) -> Term:
    """Coerce an int or term into a :class:`Term`."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        raise TypeError("booleans are not integer terms")
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot coerce {value!r} to a term")


def var(name: str, tag: Optional[Tag] = None) -> Term:
    """A variable occurrence term."""
    return SymTerm(Symbol(name, tag))


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


class Rel(enum.Enum):
    """Atomic comparison relations."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def apply(self, left: int, right: int) -> bool:
        if self is Rel.LT:
            return left < right
        if self is Rel.LE:
            return left <= right
        if self is Rel.GT:
            return left > right
        if self is Rel.GE:
            return left >= right
        if self is Rel.EQ:
            return left == right
        if self is Rel.NE:
            return left != right
        raise AssertionError(f"unhandled relation {self}")

    def negate(self) -> "Rel":
        return _REL_NEGATION[self]


_REL_NEGATION = {
    Rel.LT: Rel.GE,
    Rel.LE: Rel.GT,
    Rel.GT: Rel.LE,
    Rel.GE: Rel.LT,
    Rel.EQ: Rel.NE,
    Rel.NE: Rel.EQ,
}


class Formula:
    """Base class of formulas."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "false"


TRUE = TrueF()
FALSE = FalseF()


@dataclass(frozen=True)
class Atom(Formula):
    """A comparison of two terms."""

    rel: Rel
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} {self.rel.value} {self.right})"


@dataclass(frozen=True)
class Divides(Formula):
    """A divisibility atom ``divisor | term`` (used by Cooper's algorithm)."""

    divisor: int
    term: Term

    def __str__(self) -> str:
        return f"({self.divisor} | {self.term})"


@dataclass(frozen=True)
class And(Formula):
    operands: Tuple[Formula, ...]

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return "(" + " && ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Formula):
    operands: Tuple[Formula, ...]

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return "(" + " || ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class Implies(Formula):
    antecedent: Formula
    consequent: Formula

    def __str__(self) -> str:
        return f"({self.antecedent} ==> {self.consequent})"


@dataclass(frozen=True)
class Iff(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} <=> {self.right})"


@dataclass(frozen=True)
class Exists(Formula):
    symbol: Symbol
    body: Formula

    def __str__(self) -> str:
        return f"(exists {self.symbol} . {self.body})"


@dataclass(frozen=True)
class Forall(Formula):
    symbol: Symbol
    body: Formula

    def __str__(self) -> str:
        return f"(forall {self.symbol} . {self.body})"


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction with unit simplification."""
    flat = []
    for formula in formulas:
        if isinstance(formula, TrueF):
            continue
        if isinstance(formula, FalseF):
            return FALSE
        if isinstance(formula, And):
            flat.extend(formula.operands)
        else:
            flat.append(formula)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction with unit simplification."""
    flat = []
    for formula in formulas:
        if isinstance(formula, FalseF):
            continue
        if isinstance(formula, TrueF):
            return TRUE
        if isinstance(formula, Or):
            flat.extend(formula.operands)
        else:
            flat.append(formula)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def neg(formula: Formula) -> Formula:
    """Negation with double-negation and literal simplification."""
    if isinstance(formula, TrueF):
        return FALSE
    if isinstance(formula, FalseF):
        return TRUE
    if isinstance(formula, Not):
        return formula.operand
    return Not(formula)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    if isinstance(antecedent, TrueF):
        return consequent
    if isinstance(antecedent, FalseF):
        return TRUE
    if isinstance(consequent, TrueF):
        return TRUE
    return Implies(antecedent, consequent)


def iff(left: Formula, right: Formula) -> Formula:
    return Iff(left, right)


def exists(symbols: Union[Symbol, Sequence[Symbol]], body: Formula) -> Formula:
    """Existentially quantify one or more symbols (innermost is last)."""
    if isinstance(symbols, Symbol):
        symbols = [symbols]
    result = body
    for symbol in reversed(list(symbols)):
        result = Exists(symbol, result)
    return result


def forall(symbols: Union[Symbol, Sequence[Symbol]], body: Formula) -> Formula:
    """Universally quantify one or more symbols (innermost is last)."""
    if isinstance(symbols, Symbol):
        symbols = [symbols]
    result = body
    for symbol in reversed(list(symbols)):
        result = Forall(symbol, result)
    return result


def lt(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.LT, to_term(left), to_term(right))


def le(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.LE, to_term(left), to_term(right))


def gt(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.GT, to_term(left), to_term(right))


def ge(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.GE, to_term(left), to_term(right))


def eq(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.EQ, to_term(left), to_term(right))


def ne(left: TermLike, right: TermLike) -> Formula:
    return Atom(Rel.NE, to_term(left), to_term(right))


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def term_children(term: Term) -> Tuple[Term, ...]:
    """Return the immediate sub-terms of a term."""
    if isinstance(term, (Const, SymTerm)):
        return ()
    if isinstance(term, (Add, Sub, Mul, Div, Mod, Min, Max)):
        return (term.left, term.right)
    if isinstance(term, Ite):
        return (term.then_term, term.else_term)
    if isinstance(term, Select):
        return (term.index,)
    if isinstance(term, Store):
        parts: Tuple[Term, ...] = (term.index, term.value)
        if isinstance(term.array, Store):
            parts = (term.array,) + parts
        return parts
    raise TypeError(f"unknown term {term!r}")


def formula_terms(formula: Formula) -> Iterator[Term]:
    """Yield the top-level terms appearing in a formula's atoms."""
    if isinstance(formula, Atom):
        yield formula.left
        yield formula.right
    elif isinstance(formula, Divides):
        yield formula.term
    elif isinstance(formula, (And, Or)):
        for operand in formula.operands:
            yield from formula_terms(operand)
    elif isinstance(formula, Not):
        yield from formula_terms(formula.operand)
    elif isinstance(formula, Implies):
        yield from formula_terms(formula.antecedent)
        yield from formula_terms(formula.consequent)
    elif isinstance(formula, Iff):
        yield from formula_terms(formula.left)
        yield from formula_terms(formula.right)
    elif isinstance(formula, (Exists, Forall)):
        yield from formula_terms(formula.body)
    elif isinstance(formula, (TrueF, FalseF)):
        return
    else:
        raise TypeError(f"unknown formula {formula!r}")


def term_symbols(term: Term) -> FrozenSet[Symbol]:
    """Return the integer symbols occurring in a term (not array symbols)."""
    if isinstance(term, Const):
        return frozenset()
    if isinstance(term, SymTerm):
        return frozenset({term.symbol})
    if isinstance(term, Ite):
        return (
            free_symbols(term.condition)
            | term_symbols(term.then_term)
            | term_symbols(term.else_term)
        )
    result: FrozenSet[Symbol] = frozenset()
    for child in term_children(term):
        result |= term_symbols(child)
    return result


def term_arrays(term: Term) -> FrozenSet[Symbol]:
    """Return the array symbols occurring in a term."""
    result: FrozenSet[Symbol] = frozenset()
    if isinstance(term, Select):
        if isinstance(term.array, Symbol):
            result |= frozenset({term.array})
        result |= term_arrays(term.index)
        return result
    if isinstance(term, Store):
        if isinstance(term.array, Symbol):
            result |= frozenset({term.array})
        else:
            result |= term_arrays(term.array)
        result |= term_arrays(term.index) | term_arrays(term.value)
        return result
    if isinstance(term, Ite):
        return (
            formula_arrays(term.condition)
            | term_arrays(term.then_term)
            | term_arrays(term.else_term)
        )
    for child in term_children(term):
        result |= term_arrays(child)
    return result


def free_symbols(formula: Formula) -> FrozenSet[Symbol]:
    """Return the free integer symbols of a formula."""
    if isinstance(formula, (TrueF, FalseF)):
        return frozenset()
    if isinstance(formula, Atom):
        return term_symbols(formula.left) | term_symbols(formula.right)
    if isinstance(formula, Divides):
        return term_symbols(formula.term)
    if isinstance(formula, (And, Or)):
        result: FrozenSet[Symbol] = frozenset()
        for operand in formula.operands:
            result |= free_symbols(operand)
        return result
    if isinstance(formula, Not):
        return free_symbols(formula.operand)
    if isinstance(formula, Implies):
        return free_symbols(formula.antecedent) | free_symbols(formula.consequent)
    if isinstance(formula, Iff):
        return free_symbols(formula.left) | free_symbols(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_symbols(formula.body) - frozenset({formula.symbol})
    raise TypeError(f"unknown formula {formula!r}")


def formula_arrays(formula: Formula) -> FrozenSet[Symbol]:
    """Return the array symbols occurring in a formula."""
    result: FrozenSet[Symbol] = frozenset()
    for term in formula_terms(formula):
        result |= term_arrays(term)
    return result


def formula_size(formula: Formula) -> int:
    """A simple node-count size metric used in effort reports."""
    if isinstance(formula, (TrueF, FalseF)):
        return 1
    if isinstance(formula, Atom):
        return 1 + _term_size(formula.left) + _term_size(formula.right)
    if isinstance(formula, Divides):
        return 1 + _term_size(formula.term)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(op) for op in formula.operands)
    if isinstance(formula, Not):
        return 1 + formula_size(formula.operand)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(formula.consequent)
    if isinstance(formula, Iff):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.body)
    raise TypeError(f"unknown formula {formula!r}")


def _term_size(term: Term) -> int:
    if isinstance(term, (Const, SymTerm)):
        return 1
    if isinstance(term, Ite):
        return 1 + formula_size(term.condition) + _term_size(term.then_term) + _term_size(term.else_term)
    return 1 + sum(_term_size(child) for child in term_children(term))


# ---------------------------------------------------------------------------
# Fresh symbol generation
# ---------------------------------------------------------------------------


class FreshSymbols:
    """A generator of fresh symbols avoiding a given set of used names.

    The proof rules (Figures 7 and 8) require ``fresh(X')`` side conditions;
    a shared instance of this class provides those fresh names while keeping
    them readable (``x'``, ``x''``, ``x'1`` are rendered as ``x_f1``,
    ``x_f2``, ...).
    """

    def __init__(self, used: Optional[Sequence[str]] = None) -> None:
        self._used = set(used or ())
        self._counter = itertools.count(1)

    def reserve(self, names: Sequence[str]) -> None:
        """Mark additional names as used."""
        self._used.update(names)

    def fresh(self, base: str, tag: Optional[Tag] = None) -> Symbol:
        """Return a fresh symbol whose name is derived from ``base``."""
        while True:
            index = next(self._counter)
            candidate = f"{base}_f{index}"
            if candidate not in self._used:
                self._used.add(candidate)
                return Symbol(candidate, tag)
