"""Shared fold/transform framework over the interned formula IR.

Before this module existed every layer carried its own hand-rolled
``isinstance`` recursion over :mod:`repro.logic.formula` — substitution,
the solver's normalisation passes, obligation fingerprinting, the bounded
model search — each spelling out the same twenty-case dispatch.  This
module centralises that structure once:

* :func:`node_children` / :func:`rebuild` — the child spec and the
  identity-preserving reconstructor every traversal is built from;
* :func:`iter_nodes` — sharing-aware iterative post-order (each interned
  node is visited once, however many times the DAG references it);
* :func:`fold` — memoised bottom-up reduction;
* :func:`transform` — memoised bottom-up rewriting that returns the
  original node (not a copy) whenever nothing below it changed, which with
  interning means untouched subtrees are shared, not rebuilt;
* :func:`replace_node` — outermost-first replacement of one subterm;
* :func:`map_atom_terms` — rewrite the terms of every atom, preserving the
  formula skeleton;
* :class:`TypeDispatcher` — an O(1) type-indexed dispatch table used by the
  Hoare VC generators and the dynamic-semantics enumerator in place of
  linear ``isinstance`` chains.

Traversal memo tables are keyed by node identity, which interning makes
equivalent to keying by structure.  Memoisation is only safe for
*deterministic* rewrites: a pass that consumes fresh names per occurrence
(e.g. compound-term elimination) must not reuse results across occurrences
and therefore opts out.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple, TypeVar, Union

from .formula import (
    And,
    Atom,
    Const,
    Divides,
    Exists,
    FalseF,
    Forall,
    Formula,
    Iff,
    Implies,
    Ite,
    Not,
    Or,
    Select,
    Store,
    SymTerm,
    Term,
    TrueF,
    _BinTerm,
)

Node = Union[Term, Formula]
T = TypeVar("T")

_LEAVES = (Const, SymTerm, TrueF, FalseF)


def node_children(node: Node) -> Tuple[Node, ...]:
    """The immediate term/formula children of a node, in field order.

    ``Ite`` conditions count as children (they are formulas nested inside a
    term); ``Select``/``Store`` array *symbols* do not (symbols are not
    nodes), but a chained ``Store`` array does.
    """
    if isinstance(node, _LEAVES):
        return ()
    if isinstance(node, _BinTerm):
        return (node.left, node.right)
    if isinstance(node, Atom):
        return (node.left, node.right)
    if isinstance(node, (And, Or)):
        return node.operands
    if isinstance(node, Not):
        return (node.operand,)
    if isinstance(node, Implies):
        return (node.antecedent, node.consequent)
    if isinstance(node, Iff):
        return (node.left, node.right)
    if isinstance(node, (Exists, Forall)):
        return (node.body,)
    if isinstance(node, Divides):
        return (node.term,)
    if isinstance(node, Ite):
        return (node.condition, node.then_term, node.else_term)
    if isinstance(node, Select):
        return (node.index,)
    if isinstance(node, Store):
        if isinstance(node.array, Store):
            return (node.array, node.index, node.value)
        return (node.index, node.value)
    raise TypeError(f"unknown node {node!r}")


def formula_subformulas(formula: Formula) -> Tuple[Formula, ...]:
    """Immediate *formula* children only (terms are not descended into).

    This matches the formula-level cost model of the bounded model search:
    quantifiers and connectives matter, atom internals do not.
    """
    if isinstance(formula, (And, Or)):
        return formula.operands
    if isinstance(formula, Not):
        return (formula.operand,)
    if isinstance(formula, Implies):
        return (formula.antecedent, formula.consequent)
    if isinstance(formula, Iff):
        return (formula.left, formula.right)
    if isinstance(formula, (Exists, Forall)):
        return (formula.body,)
    return ()


def rebuild(node: Node, children: Tuple[Node, ...]) -> Node:
    """Reconstruct ``node`` with its children replaced (same order as
    :func:`node_children`), returning ``node`` itself when nothing changed."""
    old = node_children(node)
    if len(children) != len(old):
        raise ValueError(f"child arity mismatch rebuilding {node!r}")
    if all(new is prev for new, prev in zip(children, old)):
        return node
    cls = type(node)
    if isinstance(node, _BinTerm):
        return cls(children[0], children[1])
    if cls is Atom:
        return Atom(node.rel, children[0], children[1])
    if cls is And or cls is Or:
        return cls(tuple(children))
    if cls is Not:
        return Not(children[0])
    if cls is Implies:
        return Implies(children[0], children[1])
    if cls is Iff:
        return Iff(children[0], children[1])
    if cls is Exists or cls is Forall:
        return cls(node.symbol, children[0])
    if cls is Divides:
        return Divides(node.divisor, children[0])
    if cls is Ite:
        return Ite(children[0], children[1], children[2])
    if cls is Select:
        return Select(node.array, children[0])
    if cls is Store:
        if isinstance(node.array, Store):
            return Store(children[0], children[1], children[2])
        return Store(node.array, children[0], children[1])
    raise TypeError(f"unknown node {node!r}")


def iter_nodes(root: Node) -> Iterator[Node]:
    """Sharing-aware iterative post-order over a node DAG.

    Each distinct (interned) node is yielded exactly once, children before
    parents, with first-occurrence ordering — equivalent to a left-to-right
    recursive walk that skips already-seen subtrees.
    """
    seen = set()
    stack: List[Tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            yield node
            continue
        if id(node) in seen:
            continue
        seen.add(id(node))
        stack.append((node, True))
        for child in reversed(node_children(node)):
            if id(child) not in seen:
                stack.append((child, False))


def fold(root: Node, fn: Callable[[Node, Tuple[T, ...]], T]) -> T:
    """Memoised bottom-up reduction: ``fn(node, child_results)`` per node.

    Shared subtrees are reduced once; the fold therefore runs in time
    proportional to the number of *distinct* nodes, not tree size.
    """
    results: Dict[int, T] = {}
    for node in iter_nodes(root):
        results[id(node)] = fn(
            node, tuple(results[id(child)] for child in node_children(node))
        )
    return results[id(root)]


def transform(
    root: Node,
    fn: Callable[[Node], Node],
    memo: Optional[Dict[int, Node]] = None,
) -> Node:
    """Memoised bottom-up rewrite: children first, then ``fn`` on the
    (identity-preserving) rebuilt node.

    Only use with deterministic ``fn`` — results are shared across all
    occurrences of a subtree.
    """
    if memo is None:
        memo = {}
    result = memo.get(id(root))
    if result is not None:
        return result
    children = node_children(root)
    if children:
        rebuilt = rebuild(root, tuple(transform(child, fn, memo) for child in children))
    else:
        rebuilt = root
    result = fn(rebuilt)
    memo[id(root)] = result
    return result


def replace_node(root: Node, target: Node, replacement: Node) -> Node:
    """Replace every occurrence of ``target`` by ``replacement``.

    Outermost-first, like the normaliser's historical ``_replace_term``:
    a match is replaced wholesale and the replacement itself is not
    descended into.  ``Ite`` *conditions* are left untouched — term
    replacement during compound elimination has never rewritten inside
    them (each condition is processed separately by the caller).
    """
    memo: Dict[int, Node] = {}

    def go(node: Node) -> Node:
        if node is target:
            return replacement
        done = memo.get(id(node))
        if done is not None:
            return done
        children = node_children(node)
        if isinstance(node, Ite):
            new_children: Tuple[Node, ...] = (
                node.condition,
                go(node.then_term),
                go(node.else_term),
            )
        else:
            new_children = tuple(go(child) for child in children)
        result = rebuild(node, new_children) if children else node
        memo[id(node)] = result
        return result

    return go(root)


def map_atom_terms(
    formula: Formula, term_fn: Callable[[Term], Term]
) -> Formula:
    """Apply ``term_fn`` to the terms of every atom, keeping the formula
    skeleton (raw connectives, no simplification) intact.

    Shared subformulas are rewritten once; untouched subtrees come back as
    the same interned object.
    """
    memo: Dict[int, Formula] = {}

    def go(f: Formula) -> Formula:
        done = memo.get(id(f))
        if done is not None:
            return done
        if isinstance(f, (TrueF, FalseF)):
            result: Formula = f
        elif isinstance(f, Atom):
            result = Atom(f.rel, term_fn(f.left), term_fn(f.right))
        elif isinstance(f, Divides):
            result = Divides(f.divisor, term_fn(f.term))
        else:
            result = rebuild(f, tuple(go(child) for child in node_children(f)))
        memo[id(f)] = result
        return result

    return go(formula)


class TypeDispatcher:
    """An exact-type dispatch table: ``dispatcher(node, *args)`` calls the
    handler registered for ``type(node)``.

    Replaces linear ``isinstance`` ladders with one dict lookup; used for
    statement dispatch in the Hoare VC generators and the dynamic-semantics
    enumerator as well as for formula traversals.
    """

    __slots__ = ("label", "_handlers")

    def __init__(self, label: str) -> None:
        self.label = label
        self._handlers: Dict[type, Callable] = {}

    def register(self, *types: type) -> Callable[[Callable], Callable]:
        def decorator(fn: Callable) -> Callable:
            for tp in types:
                if tp in self._handlers:
                    raise ValueError(f"{self.label}: duplicate handler for {tp.__name__}")
                self._handlers[tp] = fn
            return fn
        return decorator

    def __call__(self, node, *args, **kwargs):
        handler = self._handlers.get(type(node))
        if handler is None:
            raise TypeError(f"unknown {self.label} node {node!r}")
        return handler(node, *args, **kwargs)
