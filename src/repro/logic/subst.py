"""Capture-avoiding substitution over terms and formulas.

The paper's proof rules use the standard substitution ``P[e/x]`` (assignment
rule), multi-substitution ``P[X'/X]`` (havoc and relax rules, replacing the
modified variables with fresh ones), and substitution of relational
variables ``P*[X'<r>/X<r>]``.  This module implements those operations over
the formula IR of :mod:`repro.logic.formula`, renaming bound variables when
a substitution would otherwise capture them.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from .formula import (
    Add,
    And,
    Atom,
    Const,
    Div,
    Divides,
    Exists,
    FalseF,
    Forall,
    Formula,
    FreshSymbols,
    Iff,
    Implies,
    Ite,
    Max,
    Min,
    Mod,
    Mul,
    Not,
    Or,
    Select,
    Store,
    Sub,
    SymTerm,
    Symbol,
    Term,
    TrueF,
    free_symbols,
    term_symbols,
)

Substitution = Mapping[Symbol, Term]
ArraySubstitution = Mapping[Symbol, "Term"]  # array symbol -> Store/Symbol-rooted term


def substitute_term(term: Term, mapping: Substitution, arrays: Optional[Mapping[Symbol, Term]] = None) -> Term:
    """Substitute symbols for terms inside ``term``.

    ``arrays`` optionally maps array symbols to array-valued terms (``Store``
    chains or other array symbols); it is used by the weakest precondition of
    array assignment which replaces ``A`` with ``store(A, i, v)``.
    """
    arrays = arrays or {}
    if isinstance(term, Const):
        return term
    if isinstance(term, SymTerm):
        replacement = mapping.get(term.symbol)
        return replacement if replacement is not None else term
    if isinstance(term, Add):
        return Add(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Sub):
        return Sub(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Mul):
        return Mul(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Div):
        return Div(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Mod):
        return Mod(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Min):
        return Min(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Max):
        return Max(substitute_term(term.left, mapping, arrays), substitute_term(term.right, mapping, arrays))
    if isinstance(term, Ite):
        return Ite(
            substitute(term.condition, mapping, arrays),
            substitute_term(term.then_term, mapping, arrays),
            substitute_term(term.else_term, mapping, arrays),
        )
    if isinstance(term, Select):
        new_index = substitute_term(term.index, mapping, arrays)
        replacement_array = arrays.get(term.array)
        if replacement_array is None:
            return Select(term.array, new_index)
        return _select_from(replacement_array, new_index)
    if isinstance(term, Store):
        base: Term
        if isinstance(term.array, Symbol):
            replacement_array = arrays.get(term.array, term.array)
            base = replacement_array
        else:
            base = substitute_term(term.array, mapping, arrays)
        return Store(
            base if isinstance(base, (Symbol, Store)) else term.array,
            substitute_term(term.index, mapping, arrays),
            substitute_term(term.value, mapping, arrays),
        )
    raise TypeError(f"unknown term {term!r}")


def _select_from(array_term: Term, index: Term) -> Term:
    """Build ``select(array_term, index)`` where ``array_term`` may be a Store chain."""
    if isinstance(array_term, Symbol):
        return Select(array_term, index)
    if isinstance(array_term, Store):
        return _select_store(array_term, index)
    if isinstance(array_term, SymTerm):
        return Select(array_term.symbol, index)
    raise TypeError(f"cannot select from array term {array_term!r}")


def _select_store(store: Store, index: Term) -> Term:
    """Expand ``select(store(a, i, v), j)`` into ``ite(i == j, v, select(a, j))``."""
    from .formula import Atom, Rel

    inner: Term
    if isinstance(store.array, Store):
        inner = _select_store(store.array, index)
    else:
        inner = Select(store.array, index)
    return Ite(Atom(Rel.EQ, store.index, index), store.value, inner)


def substitute(formula: Formula, mapping: Substitution, arrays: Optional[Mapping[Symbol, Term]] = None) -> Formula:
    """Capture-avoiding substitution of symbols for terms in ``formula``."""
    arrays = arrays or {}
    if isinstance(formula, (TrueF, FalseF)):
        return formula
    if isinstance(formula, Atom):
        return Atom(
            formula.rel,
            substitute_term(formula.left, mapping, arrays),
            substitute_term(formula.right, mapping, arrays),
        )
    if isinstance(formula, Divides):
        return Divides(formula.divisor, substitute_term(formula.term, mapping, arrays))
    if isinstance(formula, And):
        return And(tuple(substitute(op, mapping, arrays) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(tuple(substitute(op, mapping, arrays) for op in formula.operands))
    if isinstance(formula, Not):
        return Not(substitute(formula.operand, mapping, arrays))
    if isinstance(formula, Implies):
        return Implies(
            substitute(formula.antecedent, mapping, arrays),
            substitute(formula.consequent, mapping, arrays),
        )
    if isinstance(formula, Iff):
        return Iff(
            substitute(formula.left, mapping, arrays),
            substitute(formula.right, mapping, arrays),
        )
    if isinstance(formula, (Exists, Forall)):
        return _substitute_quantifier(formula, mapping, arrays)
    raise TypeError(f"unknown formula {formula!r}")


def _substitute_quantifier(
    formula: Formula, mapping: Substitution, arrays: Mapping[Symbol, Term]
) -> Formula:
    assert isinstance(formula, (Exists, Forall))
    bound = formula.symbol
    # Drop any binding of the bound variable itself.
    mapping = {k: v for k, v in mapping.items() if k != bound}
    if not mapping and not arrays:
        return formula
    # Rename the bound variable if any replacement term mentions it (capture).
    capture = any(bound in term_symbols(value) for value in mapping.values())
    if capture:
        used = {s.name for s in free_symbols(formula.body)}
        used.update(s.name for value in mapping.values() for s in term_symbols(value))
        fresh = FreshSymbols(sorted(used))
        renamed = fresh.fresh(bound.name, bound.tag)
        body = substitute(formula.body, {bound: SymTerm(renamed)})
        bound = renamed
    else:
        body = formula.body
    new_body = substitute(body, mapping, arrays)
    if isinstance(formula, Exists):
        return Exists(bound, new_body)
    return Forall(bound, new_body)


def rename_symbols(formula: Formula, renaming: Mapping[Symbol, Symbol]) -> Formula:
    """Rename free symbols (a special case of substitution)."""
    mapping = {old: SymTerm(new) for old, new in renaming.items()}
    return substitute(formula, mapping)


def rename_arrays(formula: Formula, renaming: Mapping[Symbol, Symbol]) -> Formula:
    """Rename array symbols appearing in Select/Store terms."""

    def rename_term(term: Term) -> Term:
        if isinstance(term, Select):
            return Select(renaming.get(term.array, term.array), rename_term(term.index))
        if isinstance(term, Store):
            array = term.array
            if isinstance(array, Symbol):
                array = renaming.get(array, array)
            else:
                renamed = rename_term(array)
                assert isinstance(renamed, Store)
                array = renamed
            return Store(array, rename_term(term.index), rename_term(term.value))
        if isinstance(term, (Const, SymTerm)):
            return term
        if isinstance(term, Add):
            return Add(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Sub):
            return Sub(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Mul):
            return Mul(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Div):
            return Div(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Mod):
            return Mod(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Min):
            return Min(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Max):
            return Max(rename_term(term.left), rename_term(term.right))
        if isinstance(term, Ite):
            return Ite(rename_formula(term.condition), rename_term(term.then_term), rename_term(term.else_term))
        raise TypeError(f"unknown term {term!r}")

    def rename_formula(f: Formula) -> Formula:
        if isinstance(f, (TrueF, FalseF)):
            return f
        if isinstance(f, Atom):
            return Atom(f.rel, rename_term(f.left), rename_term(f.right))
        if isinstance(f, Divides):
            return Divides(f.divisor, rename_term(f.term))
        if isinstance(f, And):
            return And(tuple(rename_formula(op) for op in f.operands))
        if isinstance(f, Or):
            return Or(tuple(rename_formula(op) for op in f.operands))
        if isinstance(f, Not):
            return Not(rename_formula(f.operand))
        if isinstance(f, Implies):
            return Implies(rename_formula(f.antecedent), rename_formula(f.consequent))
        if isinstance(f, Iff):
            return Iff(rename_formula(f.left), rename_formula(f.right))
        if isinstance(f, Exists):
            return Exists(f.symbol, rename_formula(f.body))
        if isinstance(f, Forall):
            return Forall(f.symbol, rename_formula(f.body))
        raise TypeError(f"unknown formula {f!r}")

    return rename_formula(formula)
