"""Capture-avoiding substitution over terms and formulas.

The paper's proof rules use the standard substitution ``P[e/x]`` (assignment
rule), multi-substitution ``P[X'/X]`` (havoc and relax rules, replacing the
modified variables with fresh ones), and substitution of relational
variables ``P*[X'<r>/X<r>]``.  This module implements those operations over
the formula IR of :mod:`repro.logic.formula`, renaming bound variables when
a substitution would otherwise capture them.

With the interned IR the implementation is a memoised traversal with a
structural short-circuit: any subtree whose cached free symbols (and array
symbols) are disjoint from the substitution domain is returned as-is — no
walk, no rebuild.  Shared subtrees are rewritten once per substitution
(results are memoised by node identity for the duration of one mapping).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from .formula import (
    Atom,
    Divides,
    Exists,
    Forall,
    Formula,
    FreshSymbols,
    Ite,
    Select,
    Store,
    SymTerm,
    Symbol,
    Term,
    free_symbols,
    term_arrays,
    term_symbols,
    formula_arrays,
)
from .traverse import node_children, rebuild

Substitution = Mapping[Symbol, Term]
ArraySubstitution = Mapping[Symbol, "Term"]  # array symbol -> Store/Symbol-rooted term


def _free_of(node) -> FrozenSet[Symbol]:
    return term_symbols(node) if isinstance(node, Term) else free_symbols(node)


def _arrays_of(node) -> FrozenSet[Symbol]:
    return term_arrays(node) if isinstance(node, Term) else formula_arrays(node)


class _Subst:
    """One substitution pass: fixed mapping, per-pass identity memo."""

    __slots__ = ("mapping", "arrays", "sym_domain", "arr_domain", "memo")

    def __init__(self, mapping: Substitution, arrays: Mapping[Symbol, Term]) -> None:
        self.mapping = mapping
        self.arrays = arrays
        self.sym_domain = frozenset(mapping)
        self.arr_domain = frozenset(arrays)
        self.memo: Dict[int, object] = {}

    def untouched(self, node) -> bool:
        if self.sym_domain and not self.sym_domain.isdisjoint(_free_of(node)):
            return False
        if self.arr_domain and not self.arr_domain.isdisjoint(_arrays_of(node)):
            return False
        return True

    # -- terms -----------------------------------------------------------------

    def term(self, term: Term) -> Term:
        if self.untouched(term):
            return term
        done = self.memo.get(id(term))
        if done is not None:
            return done  # type: ignore[return-value]
        result = self._term(term)
        self.memo[id(term)] = result
        return result

    def _term(self, term: Term) -> Term:
        if isinstance(term, SymTerm):
            replacement = self.mapping.get(term.symbol)
            return replacement if replacement is not None else term
        if isinstance(term, Ite):
            return Ite(
                self.formula(term.condition),
                self.term(term.then_term),
                self.term(term.else_term),
            )
        if isinstance(term, Select):
            new_index = self.term(term.index)
            replacement_array = self.arrays.get(term.array)
            if replacement_array is None:
                return Select(term.array, new_index)
            return _select_from(replacement_array, new_index)
        if isinstance(term, Store):
            base: Term
            if isinstance(term.array, Symbol):
                replacement_array = self.arrays.get(term.array, term.array)
                base = replacement_array
            else:
                base = self.term(term.array)
            return Store(
                base if isinstance(base, (Symbol, Store)) else term.array,
                self.term(term.index),
                self.term(term.value),
            )
        # Arithmetic operators: rebuild with substituted children.
        return rebuild(term, tuple(self.term(child) for child in node_children(term)))

    # -- formulas ----------------------------------------------------------------

    def formula(self, formula: Formula) -> Formula:
        if self.untouched(formula):
            return formula
        done = self.memo.get(id(formula))
        if done is not None:
            return done  # type: ignore[return-value]
        result = self._formula(formula)
        self.memo[id(formula)] = result
        return result

    def _formula(self, formula: Formula) -> Formula:
        if isinstance(formula, Atom):
            return Atom(formula.rel, self.term(formula.left), self.term(formula.right))
        if isinstance(formula, Divides):
            return Divides(formula.divisor, self.term(formula.term))
        if isinstance(formula, (Exists, Forall)):
            return self._quantifier(formula)
        return rebuild(
            formula, tuple(self.formula(child) for child in node_children(formula))
        )

    def _quantifier(self, formula: Formula) -> Formula:
        assert isinstance(formula, (Exists, Forall))
        bound = formula.symbol
        if bound in self.mapping:
            # Drop the binding of the bound variable itself; the narrowed
            # mapping is a different substitution, so it gets its own pass
            # (the identity memo is only valid for one fixed mapping).
            narrowed = {k: v for k, v in self.mapping.items() if k != bound}
            if not narrowed and not self.arrays:
                return formula
            ctx = _Subst(narrowed, self.arrays)
        else:
            ctx = self
        # Rename the bound variable if any replacement term mentions it (capture).
        capture = any(bound in term_symbols(value) for value in ctx.mapping.values())
        if capture:
            used = {s.name for s in free_symbols(formula.body)}
            used.update(
                s.name for value in ctx.mapping.values() for s in term_symbols(value)
            )
            fresh = FreshSymbols(sorted(used))
            renamed = fresh.fresh(bound.name, bound.tag)
            body = substitute(formula.body, {bound: SymTerm(renamed)})
            bound = renamed
        else:
            body = formula.body
        return type(formula)(bound, ctx.formula(body))


def substitute_term(
    term: Term, mapping: Substitution, arrays: Optional[Mapping[Symbol, Term]] = None
) -> Term:
    """Substitute symbols for terms inside ``term``.

    ``arrays`` optionally maps array symbols to array-valued terms (``Store``
    chains or other array symbols); it is used by the weakest precondition of
    array assignment which replaces ``A`` with ``store(A, i, v)``.
    """
    arrays = arrays or {}
    if not mapping and not arrays:
        return term
    return _Subst(mapping, arrays).term(term)


def substitute(
    formula: Formula, mapping: Substitution, arrays: Optional[Mapping[Symbol, Term]] = None
) -> Formula:
    """Capture-avoiding substitution of symbols for terms in ``formula``."""
    arrays = arrays or {}
    if not mapping and not arrays:
        return formula
    return _Subst(mapping, arrays).formula(formula)


def _select_from(array_term: Term, index: Term) -> Term:
    """Build ``select(array_term, index)`` where ``array_term`` may be a Store chain."""
    if isinstance(array_term, Symbol):
        return Select(array_term, index)
    if isinstance(array_term, Store):
        return _select_store(array_term, index)
    if isinstance(array_term, SymTerm):
        return Select(array_term.symbol, index)
    raise TypeError(f"cannot select from array term {array_term!r}")


def _select_store(store: Store, index: Term) -> Term:
    """Expand ``select(store(a, i, v), j)`` into ``ite(i == j, v, select(a, j))``."""
    from .formula import Atom, Rel

    inner: Term
    if isinstance(store.array, Store):
        inner = _select_store(store.array, index)
    else:
        inner = Select(store.array, index)
    return Ite(Atom(Rel.EQ, store.index, index), store.value, inner)


def rename_symbols(formula: Formula, renaming: Mapping[Symbol, Symbol]) -> Formula:
    """Rename free symbols (a special case of substitution)."""
    mapping = {old: SymTerm(new) for old, new in renaming.items()}
    return substitute(formula, mapping)


def rename_arrays(formula: Formula, renaming: Mapping[Symbol, Symbol]) -> Formula:
    """Rename array symbols appearing in Select/Store terms."""
    if not renaming:
        return formula
    domain = frozenset(renaming)
    memo: Dict[int, object] = {}

    def rename_term(term: Term) -> Term:
        if domain.isdisjoint(term_arrays(term)):
            return term
        done = memo.get(id(term))
        if done is not None:
            return done  # type: ignore[return-value]
        if isinstance(term, Select):
            result: Term = Select(
                renaming.get(term.array, term.array), rename_term(term.index)
            )
        elif isinstance(term, Store):
            array = term.array
            if isinstance(array, Symbol):
                array = renaming.get(array, array)
            else:
                renamed = rename_term(array)
                assert isinstance(renamed, Store)
                array = renamed
            result = Store(array, rename_term(term.index), rename_term(term.value))
        elif isinstance(term, Ite):
            result = Ite(
                rename_formula(term.condition),
                rename_term(term.then_term),
                rename_term(term.else_term),
            )
        else:
            result = rebuild(term, tuple(rename_term(c) for c in node_children(term)))
        memo[id(term)] = result
        return result

    def rename_formula(f: Formula) -> Formula:
        if domain.isdisjoint(formula_arrays(f)):
            return f
        done = memo.get(id(f))
        if done is not None:
            return done  # type: ignore[return-value]
        if isinstance(f, Atom):
            result: Formula = Atom(f.rel, rename_term(f.left), rename_term(f.right))
        elif isinstance(f, Divides):
            result = Divides(f.divisor, rename_term(f.term))
        else:
            result = rebuild(f, tuple(rename_formula(c) for c in node_children(f)))
        memo[id(f)] = result
        return result

    return rename_formula(formula)
