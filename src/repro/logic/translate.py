"""Translation of program expressions into the assertion-logic formula IR.

The axiomatic semantics reason about program boolean expressions ``B`` and
relational boolean expressions ``B*`` as logical formulas.  This module
performs those translations:

* :func:`term_of_expr` / :func:`formula_of_bool` — translate ``E`` / ``B``
  into terms/formulas.  The optional ``tag`` argument chooses which
  execution's copy of the variables the result talks about, implementing the
  injections ``inj_o`` / ``inj_r`` of the paper directly at translation time.
* :func:`term_of_rel_expr` / :func:`formula_of_rel_bool` — translate
  ``E*`` / ``B*`` into formulas over tagged symbols.
"""

from __future__ import annotations

from typing import Optional

from ..lang.ast import (
    ArrayRead,
    BinOp,
    BoolBin,
    BoolExpr,
    BoolLit,
    BoolOp,
    CmpOp,
    Compare,
    Execution,
    Expr,
    IntLit,
    IntOp,
    Not as AstNot,
    RelArrayRead,
    RelBinOp,
    RelBoolBin,
    RelBoolExpr,
    RelBoolLit,
    RelCompare,
    RelExpr,
    RelIntLit,
    RelNot,
    RelVar,
    Var,
)
from .formula import (
    Add,
    Atom,
    Const,
    Div,
    Formula,
    Iff,
    Implies,
    Max,
    Min,
    Mod,
    Mul,
    Rel,
    Select,
    Sub,
    SymTerm,
    Symbol,
    Tag,
    Term,
    conj,
    disj,
    neg,
    FALSE,
    TRUE,
)

_CMP_TO_REL = {
    CmpOp.LT: Rel.LT,
    CmpOp.LE: Rel.LE,
    CmpOp.GT: Rel.GT,
    CmpOp.GE: Rel.GE,
    CmpOp.EQ: Rel.EQ,
    CmpOp.NE: Rel.NE,
}

_EXEC_TO_TAG = {
    Execution.ORIGINAL: Tag.ORIGINAL,
    Execution.RELAXED: Tag.RELAXED,
}


def tag_of_execution(execution: Execution) -> Tag:
    """Map an AST execution marker onto a logic tag."""
    return _EXEC_TO_TAG[execution]


def term_of_expr(expr: Expr, tag: Optional[Tag] = None) -> Term:
    """Translate an integer expression ``E``; variables receive ``tag``."""
    if isinstance(expr, IntLit):
        return Const(expr.value)
    if isinstance(expr, Var):
        return SymTerm(Symbol(expr.name, tag))
    if isinstance(expr, BinOp):
        left = term_of_expr(expr.left, tag)
        right = term_of_expr(expr.right, tag)
        return _apply_int_op(expr.op, left, right)
    if isinstance(expr, ArrayRead):
        return Select(Symbol(expr.array, tag), term_of_expr(expr.index, tag))
    raise TypeError(f"unknown expression node {expr!r}")


def _apply_int_op(op: IntOp, left: Term, right: Term) -> Term:
    if op is IntOp.ADD:
        return Add(left, right)
    if op is IntOp.SUB:
        return Sub(left, right)
    if op is IntOp.MUL:
        return Mul(left, right)
    if op is IntOp.DIV:
        return Div(left, right)
    if op is IntOp.MOD:
        return Mod(left, right)
    if op is IntOp.MIN:
        return Min(left, right)
    if op is IntOp.MAX:
        return Max(left, right)
    raise AssertionError(f"unhandled integer operator {op}")


def formula_of_bool(expr: BoolExpr, tag: Optional[Tag] = None) -> Formula:
    """Translate a boolean expression ``B``; variables receive ``tag``.

    ``formula_of_bool(b, Tag.ORIGINAL)`` is exactly the paper's ``inj_o(b)``
    and ``formula_of_bool(b, Tag.RELAXED)`` is ``inj_r(b)``.
    """
    if isinstance(expr, BoolLit):
        return TRUE if expr.value else FALSE
    if isinstance(expr, Compare):
        return Atom(
            _CMP_TO_REL[expr.op],
            term_of_expr(expr.left, tag),
            term_of_expr(expr.right, tag),
        )
    if isinstance(expr, BoolBin):
        left = formula_of_bool(expr.left, tag)
        right = formula_of_bool(expr.right, tag)
        if expr.op is BoolOp.AND:
            return conj(left, right)
        if expr.op is BoolOp.OR:
            return disj(left, right)
        if expr.op is BoolOp.IMPLIES:
            return Implies(left, right)
        if expr.op is BoolOp.IFF:
            return Iff(left, right)
        raise AssertionError(f"unhandled boolean operator {expr.op}")
    if isinstance(expr, AstNot):
        return neg(formula_of_bool(expr.operand, tag))
    raise TypeError(f"unknown boolean expression node {expr!r}")


def term_of_rel_expr(expr: RelExpr) -> Term:
    """Translate a relational integer expression ``E*``."""
    if isinstance(expr, RelIntLit):
        return Const(expr.value)
    if isinstance(expr, RelVar):
        return SymTerm(Symbol(expr.name, tag_of_execution(expr.execution)))
    if isinstance(expr, RelBinOp):
        left = term_of_rel_expr(expr.left)
        right = term_of_rel_expr(expr.right)
        return _apply_int_op(expr.op, left, right)
    if isinstance(expr, RelArrayRead):
        return Select(
            Symbol(expr.array, tag_of_execution(expr.execution)),
            term_of_rel_expr(expr.index),
        )
    raise TypeError(f"unknown relational expression node {expr!r}")


def formula_of_rel_bool(expr: RelBoolExpr) -> Formula:
    """Translate a relational boolean expression ``B*``."""
    if isinstance(expr, RelBoolLit):
        return TRUE if expr.value else FALSE
    if isinstance(expr, RelCompare):
        return Atom(
            _CMP_TO_REL[expr.op],
            term_of_rel_expr(expr.left),
            term_of_rel_expr(expr.right),
        )
    if isinstance(expr, RelBoolBin):
        left = formula_of_rel_bool(expr.left)
        right = formula_of_rel_bool(expr.right)
        if expr.op is BoolOp.AND:
            return conj(left, right)
        if expr.op is BoolOp.OR:
            return disj(left, right)
        if expr.op is BoolOp.IMPLIES:
            return Implies(left, right)
        if expr.op is BoolOp.IFF:
            return Iff(left, right)
        raise AssertionError(f"unhandled boolean operator {expr.op}")
    if isinstance(expr, RelNot):
        return neg(formula_of_rel_bool(expr.operand))
    raise TypeError(f"unknown relational boolean node {expr!r}")
