"""Guided frontier search: beam scheduling with a site-kind reward table.

Exhaustive breadth-first enumeration expands *every* candidate of a
generation; depth is then capped by the width of the space.  The frontier
scheduler replaces that with a beam: each generation, only the
``beam_width`` most promising candidates are expanded, ranked by their
measured score plus a learned prior over their relaxation-site kinds.

The prior is a :class:`RewardTable` — per site *kind* (``perforate-loop``,
``restrict-relax``, ``dynamic-knob``) it accumulates the empirical reward
(the verified child's estimated savings; zero for rejected children) of
expanding along that kind, in the same spirit as the engine portfolio's
per-kind win table (:mod:`repro.engine.portfolio`): cheap counts, fully
deterministic, and persisted into the explore report rather than claimed.
Untried kinds carry an optimistic prior so the beam keeps exploring before
it starts exploiting.

Determinism contract (tested): selection depends only on candidate scores
(themselves deterministic in ``(samples, seed, policies)``), the reward
table (deterministic in the observation order), and discovery order as the
tie-break.  Selected parents are returned **in discovery order**, so a
beam wide enough to hold the whole generation expands exactly the
exhaustive parent sequence — which is what makes beam-vs-exhaustive
byte-identical fingerprints/verdicts a structural guarantee rather than a
coincidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: The search strategies ``repro explore --strategy`` accepts.
STRATEGIES: Tuple[str, ...] = ("exhaustive", "beam")

#: Expected reward for a site kind that has never been expanded: optimistic
#: (savings are fractions in [0, 1], so 1.0 dominates any measured mean)
#: to force at least one expansion along each kind before ranking by data.
OPTIMISTIC_REWARD = 1.0


@dataclass
class RewardTable:
    """Empirical reward per relaxation-site kind (portfolio win-table style)."""

    counts: Dict[str, int] = field(default_factory=dict)
    totals: Dict[str, float] = field(default_factory=dict)

    def record(self, kind: str, reward: float) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        self.totals[kind] = self.totals.get(kind, 0.0) + reward

    def expected(self, kind: str) -> float:
        """Mean observed reward for ``kind``; optimistic when untried."""
        count = self.counts.get(kind, 0)
        if count == 0:
            return OPTIMISTIC_REWARD
        return self.totals[kind] / count

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            kind: {
                "count": float(self.counts[kind]),
                "total": self.totals[kind],
                "mean": self.totals[kind] / self.counts[kind],
            }
            for kind in sorted(self.counts)
        }


class FrontierScheduler:
    """Chooses which candidates of a generation to expand next.

    ``exhaustive`` expands every candidate (breadth-first, the classic
    path).  ``beam`` keeps the ``beam_width`` best: verified candidates
    ranked by ``savings + mean expected reward of their applied site
    kinds``, unverified candidates ranked below every verified one (they
    are still expandable — a child may restore acceptability — but only
    when the beam has room).  Ties break by discovery order, and the
    selected parents are returned in discovery order (see the module
    docstring's determinism contract).
    """

    def __init__(self, strategy: str = "exhaustive", beam_width: int = 8) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r} (expected one of {'/'.join(STRATEGIES)})"
            )
        if beam_width < 1:
            raise ValueError("beam_width must be >= 1")
        self.strategy = strategy
        self.beam_width = beam_width
        self.rewards = RewardTable()
        #: Candidates dropped from the frontier by beam truncation.
        self.pruned = 0

    def priority(self, outcome) -> float:
        """The expansion priority of one scored candidate outcome."""
        score = outcome.score.savings if outcome.score is not None else 0.0
        kinds = [site.kind for site in outcome.candidate.applied]
        if kinds:
            prior = sum(self.rewards.expected(kind) for kind in kinds) / len(kinds)
        else:
            prior = OPTIMISTIC_REWARD  # the baseline: everything is open
        return score + prior

    def select(self, outcomes: Sequence) -> List:
        """The subset of a generation's outcomes to expand next."""
        if self.strategy == "exhaustive" or len(outcomes) <= self.beam_width:
            return list(outcomes)
        ranked = sorted(
            enumerate(outcomes),
            key=lambda pair: (not pair[1].verified, -self.priority(pair[1]), pair[0]),
        )
        kept = sorted(ranked[: self.beam_width], key=lambda pair: pair[0])
        self.pruned += len(outcomes) - len(kept)
        return [outcome for _index, outcome in kept]

    def observe(self, outcome) -> None:
        """Credit the newest applied site kind with the candidate's reward.

        The newest site is the action that produced this candidate from
        its parent; its reward is the verified candidate's estimated
        savings (zero for gate-rejected candidates).  The baseline applies
        no site, so it trains nothing.
        """
        if not outcome.candidate.applied:
            return
        kind = outcome.candidate.applied[-1].kind
        reward = 0.0
        if outcome.verified and outcome.score is not None:
            reward = outcome.score.savings
        self.rewards.record(kind, reward)
