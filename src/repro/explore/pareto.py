"""Pareto-frontier selection over (accuracy loss, estimated savings).

The explorer's final judgement: among the candidates that both verified
and scored, which represent the best available accuracy/savings
trade-offs?  A candidate is *dominated* when another candidate is at least
as accurate **and** at least as cheap, and strictly better on one axis;
the frontier is the set of non-dominated candidates.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: One scored point: (distortion — lower is better, savings — higher is better).
TradeoffPoint = Tuple[float, float]


def dominates(a: TradeoffPoint, b: TradeoffPoint) -> bool:
    """True iff point ``a`` Pareto-dominates point ``b``."""
    a_distortion, a_savings = a
    b_distortion, b_savings = b
    at_least_as_good = a_distortion <= b_distortion and a_savings >= b_savings
    strictly_better = a_distortion < b_distortion or a_savings > b_savings
    return at_least_as_good and strictly_better


def pareto_flags(points: Sequence[TradeoffPoint]) -> List[bool]:
    """For each point, whether it lies on the Pareto frontier.

    Structural duplicates are all flagged (they are equally good trade-offs);
    the quadratic scan is fine at explorer scale (tens of candidates).
    """
    flags: List[bool] = []
    for index, point in enumerate(points):
        flags.append(
            not any(
                dominates(other, point)
                for other_index, other in enumerate(points)
                if other_index != index
            )
        )
    return flags
