"""The relaxation-space explorer: verified autotuning over candidate programs.

The pipeline (one ``repro explore`` invocation):

1. **Enumerate** — :mod:`repro.explore.candidates` walks the space of
   relaxed programs induced by a case study's relaxation sites, composing
   transforms up to ``--depth`` and deduplicating by program fingerprint.
2. **Gate** — the whole generation of candidates is verified statically as
   *one* pooled batch through the obligation engine
   (:func:`repro.engine.verify_batch`): sibling candidates share most of
   their proof obligations, so in-wave dedup answers the overlap once and
   the persistent cache answers recurring obligations across search rounds
   with zero solver calls.
3. **Score** — candidates that pass the gate (and only those) are scored
   empirically by seeded Monte Carlo differential simulation
   (:mod:`repro.explore.scoring`).
4. **Select** — the Pareto frontier over (distortion, estimated savings)
   (:mod:`repro.explore.pareto`) plus a JSON/CSV report.

Statically rejected candidates are *never* executed: the verdict is the
paper's acceptability guarantee, and the explorer treats it as a hard gate
rather than a soft ranking signal.
"""

from __future__ import annotations

import csv
import io
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..analysis.metrics import ExploreRow, format_explore_table
from ..casestudies import resolve_case_study
from ..casestudies.base import CaseStudy
from ..engine import ObligationEngine, program_items, verify_batch
from ..hoare.verifier import AcceptabilitySpec
from ..lang.ast import Program
from .candidates import Candidate, Enumeration, enumerate_candidates
from .pareto import pareto_flags
from .scoring import DEFAULT_POLICIES, CandidateScore, score_candidate


@dataclass
class CandidateOutcome:
    """Everything the explorer learned about one candidate."""

    candidate: Candidate
    verified: bool = False
    error: str = ""
    obligations: int = 0
    discharged: int = 0
    score: Optional[CandidateScore] = None
    pareto: bool = False
    #: Compact failure attribution for rejected candidates: which proof
    #: rule failed, where in the candidate's source, under which model
    #: (:meth:`repro.diagnostics.FailureDiagnostic.attribution`).
    failures: List[Dict[str, object]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.candidate.name

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.candidate.name,
            "fingerprint": self.candidate.fingerprint,
            "depth": self.candidate.depth,
            "sites": list(self.candidate.site_ids),
            "description": self.candidate.describe(),
            "verified": self.verified,
            "obligations": self.obligations,
            "discharged": self.discharged,
            "pareto": self.pareto,
            "distortion": (
                self.score.distortion_mean if self.score is not None else None
            ),
            "score": self.score.as_dict() if self.score is not None else None,
        }
        if self.error:
            payload["error"] = self.error
        if self.failures:
            payload["failures"] = list(self.failures)
        return payload


@dataclass
class ExploreReport:
    """The structured outcome of one explorer invocation."""

    case_study: str
    depth: int
    samples: int
    seed: int
    jobs: int = 1
    policies: Sequence[str] = DEFAULT_POLICIES
    outcomes: List[CandidateOutcome] = field(default_factory=list)
    inapplicable_sites: int = 0
    capped_candidates: int = 0
    duplicate_candidates: int = 0
    enumerate_seconds: float = 0.0
    verify_seconds: float = 0.0
    score_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    engine_stats: Dict[str, float] = field(default_factory=dict)
    solver_stats: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def candidates(self) -> int:
        return len(self.outcomes)

    @property
    def survivors(self) -> List[CandidateOutcome]:
        return [outcome for outcome in self.outcomes if outcome.verified]

    @property
    def frontier(self) -> List[CandidateOutcome]:
        return [outcome for outcome in self.outcomes if outcome.pareto]

    @property
    def cache_hit_rate(self) -> float:
        return float(self.cache_stats.get("hit_rate", 0.0))

    def as_dict(self) -> Dict[str, object]:
        return {
            "case_study": self.case_study,
            "depth": self.depth,
            "samples": self.samples,
            "seed": self.seed,
            "jobs": self.jobs,
            "policies": list(self.policies),
            "candidates": self.candidates,
            "verified_candidates": len(self.survivors),
            "pareto_candidates": [outcome.name for outcome in self.frontier],
            "inapplicable_sites": self.inapplicable_sites,
            "capped_candidates": self.capped_candidates,
            "duplicate_candidates": self.duplicate_candidates,
            "timings": {
                "enumerate_seconds": self.enumerate_seconds,
                "verify_seconds": self.verify_seconds,
                "score_seconds": self.score_seconds,
                "elapsed_seconds": self.elapsed_seconds,
            },
            "engine": self.engine_stats,
            "solver": self.solver_stats,
            "cache": self.cache_stats,
            "results": [outcome.as_dict() for outcome in self.outcomes],
        }

    def to_csv(self) -> str:
        """The per-candidate table as CSV (one row per candidate)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            [
                "name",
                "depth",
                "sites",
                "verified",
                "pareto",
                "distortion_mean",
                "distortion_max",
                "savings",
                "steps_saved_fraction",
                "relax_freedom",
                "relate_violations",
                "error",
            ]
        )
        for outcome in self.outcomes:
            score = outcome.score
            writer.writerow(
                [
                    outcome.name,
                    outcome.candidate.depth,
                    "+".join(outcome.candidate.site_ids),
                    outcome.verified,
                    outcome.pareto,
                    f"{score.distortion_mean:.6g}" if score else "",
                    f"{score.distortion_max:.6g}" if score else "",
                    f"{score.savings:.6g}" if score else "",
                    f"{score.steps_saved_fraction:.6g}" if score else "",
                    f"{score.relax_freedom:.6g}" if score else "",
                    score.relate_violations if score else "",
                    outcome.error,
                ]
            )
        return buffer.getvalue()

    def summary(self) -> str:
        rows = []
        for outcome in self.outcomes:
            score = outcome.score
            rows.append(
                ExploreRow(
                    candidate=outcome.name,
                    depth=outcome.candidate.depth,
                    verified=outcome.verified,
                    pareto=outcome.pareto,
                    distortion=score.distortion_mean if score else None,
                    savings=score.savings if score else None,
                    error=outcome.error,
                )
            )
        lines = [format_explore_table(rows), ""]
        lines.append(
            f"{self.case_study}: {self.candidates} candidates at depth "
            f"<= {self.depth} ({len(self.survivors)} verified, "
            f"{len(self.frontier)} on the Pareto frontier)"
        )
        if self.capped_candidates:
            lines.append(
                f"NOTE: candidate cap reached; {self.capped_candidates} site "
                "applications left unexplored (raise --max-candidates to try them)"
            )
        lines.append(
            "timings: "
            f"enumerate {self.enumerate_seconds:.3f}s, "
            f"verify {self.verify_seconds:.3f}s, "
            f"score {self.score_seconds:.3f}s, "
            f"total {self.elapsed_seconds:.3f}s"
        )
        if self.cache_stats:
            lines.append(
                "obligation cache: "
                f"{self.cache_stats.get('hits', 0):.0f} hits / "
                f"{self.cache_stats.get('misses', 0):.0f} misses "
                f"(hit rate {self.cache_hit_rate:.0%})"
            )
        return "\n".join(lines)


def explore(
    case_study: Union[str, CaseStudy],
    depth: int = 1,
    samples: int = 25,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    budget_seconds: Optional[float] = None,
    max_candidates: int = 48,
    policies: Sequence[str] = DEFAULT_POLICIES,
    engine: Optional[ObligationEngine] = None,
) -> ExploreReport:
    """Run the full explorer pipeline for one case study."""
    case = resolve_case_study(case_study)
    start = time.perf_counter()

    # The root span every explorer event nests under (when no outer batch
    # span exists); verify_batch opens its own "batch" child below it.
    explore_span = telemetry.span(
        "explore", case_study=case.name, depth=depth, jobs=jobs
    )
    with explore_span:
        # Phase 1: enumerate the candidate space.
        enumerate_start = time.perf_counter()
        with telemetry.span("explore.enumerate", max_candidates=max_candidates):
            base_program = case.build_program()
            enumeration = enumerate_candidates(
                base_program,
                case.relaxation_sites,
                depth=depth,
                max_candidates=max_candidates,
            )
        report = ExploreReport(
            case_study=case.name,
            depth=depth,
            samples=samples,
            seed=seed,
            jobs=jobs,
            policies=tuple(policies),
            inapplicable_sites=enumeration.inapplicable,
            capped_candidates=enumeration.capped,
            duplicate_candidates=enumeration.duplicates,
            enumerate_seconds=time.perf_counter() - enumerate_start,
        )
        telemetry.count("explore.candidates", len(enumeration.candidates))

        # Phase 2: gate the whole generation through one pooled batch wave.
        verify_start = time.perf_counter()
        with telemetry.span(
            "explore.verify", candidates=len(enumeration.candidates)
        ):
            entries: List[
                Tuple[str, Optional[Program], AcceptabilitySpec, Tuple[str, ...]]
            ] = []
            spec_errors: Dict[str, str] = {}
            for candidate in enumeration.candidates:
                try:
                    spec = case.acceptability_spec(candidate.program)
                except Exception as error:  # a spec that cannot be built is a rejection
                    spec_errors[candidate.name] = f"spec construction failed: {error}"
                    entries.append(
                        (candidate.name, None, AcceptabilitySpec(), candidate.site_ids)
                    )
                    continue
                entries.append(
                    (candidate.name, candidate.program, spec, candidate.site_ids)
                )
            if engine is None:
                engine = ObligationEngine.for_batch(
                    jobs=jobs, cache_dir=cache_dir, budget_seconds=budget_seconds
                )
            batch = verify_batch(
                program_items(entries, study=case.name), engine=engine
            )
        report.verify_seconds = time.perf_counter() - verify_start

        verdicts = {result.name: result for result in batch.programs}
        for candidate in enumeration.candidates:
            outcome = CandidateOutcome(candidate=candidate)
            result = verdicts.get(candidate.name)
            if candidate.name in spec_errors:
                outcome.error = spec_errors[candidate.name]
            elif result is None:
                outcome.error = "no batch verdict (internal error)"
            else:
                outcome.verified = result.verified
                outcome.error = result.error
                if result.report is not None:
                    for layer in (result.report.original, result.report.relaxed):
                        outcome.obligations += len(layer.results)
                        outcome.discharged += sum(
                            1 for item in layer.results if item.discharged
                        )
                    if not result.verified:
                        # Attribute the rejection: which rule failed, where
                        # in the candidate's source, under which model.
                        from ..diagnostics import diagnose_report

                        outcome.failures = [
                            diagnostic.attribution()
                            for diagnostic in diagnose_report(
                                result.report, program=result.program
                            )
                        ]
            report.outcomes.append(outcome)
        telemetry.count(
            "explore.verified_candidates",
            sum(1 for outcome in report.outcomes if outcome.verified),
        )

        # Phase 3: score the survivors (and only the survivors) empirically.
        score_start = time.perf_counter()
        with telemetry.span("explore.score", samples=samples):
            for outcome in report.outcomes:
                if outcome.verified:
                    with telemetry.span("score", candidate=outcome.name):
                        outcome.score = score_candidate(
                            case,
                            outcome.candidate.program,
                            samples=samples,
                            seed=seed,
                            policies=policies,
                        )
        report.score_seconds = time.perf_counter() - score_start

        # Phase 4: the Pareto frontier over (distortion, savings).
        scored = [outcome for outcome in report.outcomes if outcome.score is not None]
        flags = pareto_flags(
            [
                (outcome.score.distortion_mean, outcome.score.savings)
                for outcome in scored
            ]
        )
        for outcome, flag in zip(scored, flags):
            outcome.pareto = flag

    report.elapsed_seconds = time.perf_counter() - start
    report.engine_stats = engine.statistics.as_dict()
    report.solver_stats = engine.solver_statistics.as_dict()
    if engine.cache is not None:
        report.cache_stats = engine.cache.stats()
    return report
