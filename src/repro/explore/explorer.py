"""The relaxation-space explorer: verified autotuning over candidate programs.

The pipeline (one ``repro explore`` invocation) runs generation by
generation — depth 0 is the baseline, each later generation applies one
more site to the parents chosen by the frontier scheduler:

1. **Expand** — :mod:`repro.explore.candidates` applies every discoverable
   site to the selected parents, deduplicating by program fingerprint
   (:class:`~repro.explore.candidates.CandidateSpace`).
2. **Gate, incrementally** — the generation is verified as one pooled
   batch through the obligation engine (:func:`repro.engine.verify_batch`)
   layered over a search-session verdict store
   (:class:`~repro.engine.incremental.VerdictStore`): obligations the
   search already settled — a child shares most of its parent's — are
   answered from the store by canonical fingerprint, and only the delta is
   discharged.  Sibling candidates still share the engine's in-wave dedup
   and the persistent cache underneath.
3. **Score** — candidates that pass the gate (and only those) are scored
   empirically by seeded Monte Carlo differential simulation
   (:mod:`repro.explore.scoring`).
4. **Select** — the frontier scheduler (:mod:`repro.explore.frontier`)
   picks the next generation's parents: all of them (``--strategy
   exhaustive``) or the ``--beam-width`` most promising by score plus a
   learned site-kind reward prior (``--strategy beam``).  After the last
   generation, the Pareto frontier over (distortion, estimated savings)
   (:mod:`repro.explore.pareto`) plus a JSON/CSV report.

Statically rejected candidates are *never* executed: the verdict is the
paper's acceptability guarantee, and the explorer treats it as a hard gate
rather than a soft ranking signal.  Both strategies settle each pooled
obligation exactly as the one-wave exhaustive gate did (the verdict store
replays verdicts — UNKNOWN included — just like in-wave dedup), so
obligation fingerprints and verdicts are byte-identical across strategies;
a beam wide enough to hold every generation *is* the exhaustive walk.
"""

from __future__ import annotations

import csv
import hashlib
import io
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import telemetry
from ..analysis.metrics import ExploreRow, format_explore_table
from ..casestudies import resolve_case_study
from ..casestudies.base import CaseStudy
from ..engine import ObligationEngine, VerdictStore, program_items, verify_batch
from ..hoare.verifier import AcceptabilitySpec
from ..lang.ast import Program
from .candidates import Candidate, CandidateSpace
from .frontier import STRATEGIES, FrontierScheduler
from .pareto import pareto_flags
from .scoring import DEFAULT_POLICIES, CandidateScore, score_candidate


@dataclass
class CandidateOutcome:
    """Everything the explorer learned about one candidate."""

    candidate: Candidate
    verified: bool = False
    error: str = ""
    obligations: int = 0
    discharged: int = 0
    score: Optional[CandidateScore] = None
    pareto: bool = False
    #: Compact failure attribution for rejected candidates: which proof
    #: rule failed, where in the candidate's source, under which model
    #: (:meth:`repro.diagnostics.FailureDiagnostic.attribution`).
    failures: List[Dict[str, object]] = field(default_factory=list)
    #: Incremental-gate accounting: how many of this candidate's pooled
    #: obligations were reused from the search session's verdict store vs
    #: discharged as fresh delta, plus the canonical fingerprint and
    #: verdict status of each obligation in pooled order.
    reused_obligations: int = 0
    delta_obligations: int = 0
    obligation_fingerprints: Tuple[str, ...] = ()
    obligation_statuses: Tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.candidate.name

    def obligations_digest(self) -> Optional[str]:
        """One hash over (fingerprint, verdict) pairs in pooled order.

        Byte-identical digests mean byte-identical obligation sets *and*
        verdicts — the parity currency the beam-vs-exhaustive guarantee is
        stated (and CI-gated) in.  ``None`` when the gate ran without a
        verdict store (fingerprints were not collected per candidate).
        """
        if not self.obligation_fingerprints:
            return None
        digest = hashlib.sha256()
        for key, status in zip(self.obligation_fingerprints, self.obligation_statuses):
            digest.update(f"{key}:{status}\n".encode("ascii"))
        return digest.hexdigest()[:16]

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.candidate.name,
            "fingerprint": self.candidate.fingerprint,
            "parent": self.candidate.parent_fingerprint,
            "depth": self.candidate.depth,
            "sites": list(self.candidate.site_ids),
            "description": self.candidate.describe(),
            "verified": self.verified,
            "obligations": self.obligations,
            "discharged": self.discharged,
            "reused_obligations": self.reused_obligations,
            "delta_obligations": self.delta_obligations,
            "obligations_digest": self.obligations_digest(),
            "pareto": self.pareto,
            "distortion": (
                self.score.distortion_mean if self.score is not None else None
            ),
            "score": self.score.as_dict() if self.score is not None else None,
        }
        if self.error:
            payload["error"] = self.error
        if self.failures:
            payload["failures"] = list(self.failures)
        return payload


@dataclass
class ExploreReport:
    """The structured outcome of one explorer invocation."""

    case_study: str
    depth: int
    samples: int
    seed: int
    jobs: int = 1
    policies: Sequence[str] = DEFAULT_POLICIES
    strategy: str = "exhaustive"
    beam_width: int = 8
    outcomes: List[CandidateOutcome] = field(default_factory=list)
    inapplicable_sites: int = 0
    capped_candidates: int = 0
    duplicate_candidates: int = 0
    #: Candidates dropped from the expansion frontier by beam truncation
    #: (always 0 for the exhaustive strategy).
    beam_pruned: int = 0
    #: True when ``search_budget_seconds`` stopped the search before the
    #: requested depth was reached.
    truncated: bool = False
    #: The search-session verdict store's counters
    #: (:meth:`repro.engine.incremental.VerdictStore.stats`).
    incremental: Dict[str, float] = field(default_factory=dict)
    #: The frontier scheduler's learned site-kind reward table.
    reward_table: Dict[str, Dict[str, float]] = field(default_factory=dict)
    enumerate_seconds: float = 0.0
    verify_seconds: float = 0.0
    score_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    engine_stats: Dict[str, float] = field(default_factory=dict)
    solver_stats: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def candidates(self) -> int:
        return len(self.outcomes)

    @property
    def survivors(self) -> List[CandidateOutcome]:
        return [outcome for outcome in self.outcomes if outcome.verified]

    @property
    def frontier(self) -> List[CandidateOutcome]:
        return [outcome for outcome in self.outcomes if outcome.pareto]

    @property
    def cache_hit_rate(self) -> float:
        return float(self.cache_stats.get("hit_rate", 0.0))

    @property
    def reuse_rate(self) -> float:
        """Fraction of pooled obligations answered by the session store."""
        return float(self.incremental.get("reuse_rate", 0.0))

    def as_dict(self) -> Dict[str, object]:
        return {
            "case_study": self.case_study,
            "depth": self.depth,
            "samples": self.samples,
            "seed": self.seed,
            "jobs": self.jobs,
            "policies": list(self.policies),
            "strategy": self.strategy,
            "beam_width": self.beam_width,
            "candidates": self.candidates,
            "verified_candidates": len(self.survivors),
            "pareto_candidates": [outcome.name for outcome in self.frontier],
            "inapplicable_sites": self.inapplicable_sites,
            "capped_candidates": self.capped_candidates,
            "duplicate_candidates": self.duplicate_candidates,
            "beam_pruned": self.beam_pruned,
            "truncated": self.truncated,
            "incremental": dict(self.incremental),
            "reward_table": {
                kind: dict(entry) for kind, entry in self.reward_table.items()
            },
            "timings": {
                "enumerate_seconds": self.enumerate_seconds,
                "verify_seconds": self.verify_seconds,
                "score_seconds": self.score_seconds,
                "elapsed_seconds": self.elapsed_seconds,
            },
            "engine": self.engine_stats,
            "solver": self.solver_stats,
            "cache": self.cache_stats,
            "results": [outcome.as_dict() for outcome in self.outcomes],
        }

    def to_csv(self) -> str:
        """The per-candidate table as CSV (one row per candidate)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(
            [
                "name",
                "depth",
                "sites",
                "verified",
                "pareto",
                "distortion_mean",
                "distortion_max",
                "savings",
                "steps_saved_fraction",
                "relax_freedom",
                "relate_violations",
                "error",
            ]
        )
        for outcome in self.outcomes:
            score = outcome.score
            writer.writerow(
                [
                    outcome.name,
                    outcome.candidate.depth,
                    "+".join(outcome.candidate.site_ids),
                    outcome.verified,
                    outcome.pareto,
                    f"{score.distortion_mean:.6g}" if score else "",
                    f"{score.distortion_max:.6g}" if score else "",
                    f"{score.savings:.6g}" if score else "",
                    f"{score.steps_saved_fraction:.6g}" if score else "",
                    f"{score.relax_freedom:.6g}" if score else "",
                    score.relate_violations if score else "",
                    outcome.error,
                ]
            )
        return buffer.getvalue()

    def summary(self) -> str:
        rows = []
        for outcome in self.outcomes:
            score = outcome.score
            rows.append(
                ExploreRow(
                    candidate=outcome.name,
                    depth=outcome.candidate.depth,
                    verified=outcome.verified,
                    pareto=outcome.pareto,
                    distortion=score.distortion_mean if score else None,
                    savings=score.savings if score else None,
                    error=outcome.error,
                )
            )
        lines = [format_explore_table(rows), ""]
        strategy_note = (
            f", strategy {self.strategy}"
            + (f" width {self.beam_width}" if self.strategy == "beam" else "")
        )
        lines.append(
            f"{self.case_study}: {self.candidates} candidates at depth "
            f"<= {self.depth}{strategy_note} ({len(self.survivors)} verified, "
            f"{len(self.frontier)} on the Pareto frontier)"
        )
        if self.duplicate_candidates:
            lines.append(
                f"dedup: {self.duplicate_candidates} structurally duplicate "
                "candidates folded by program fingerprint"
            )
        if self.inapplicable_sites:
            lines.append(
                f"inapplicable: {self.inapplicable_sites} site applications "
                "skipped (stale anchors after composition)"
            )
        if self.capped_candidates:
            lines.append(
                f"NOTE: candidate cap reached; {self.capped_candidates} site "
                "applications left unexplored (raise --max-candidates to try them)"
            )
        if self.beam_pruned:
            lines.append(
                f"beam: {self.beam_pruned} candidates pruned from the expansion "
                "frontier (raise --beam-width to widen the search)"
            )
        if self.truncated:
            lines.append(
                "NOTE: search budget exhausted before the requested depth "
                "was reached"
            )
        if self.incremental:
            lines.append(
                "incremental gate: "
                f"{self.incremental.get('reused', 0):.0f} of "
                f"{self.incremental.get('total_obligations', 0):.0f} obligations "
                f"reused from the search session (reuse rate {self.reuse_rate:.0%}), "
                f"{self.incremental.get('delta_obligations', 0):.0f} discharged "
                "as delta"
            )
        lines.append(
            "timings: "
            f"enumerate {self.enumerate_seconds:.3f}s, "
            f"verify {self.verify_seconds:.3f}s, "
            f"score {self.score_seconds:.3f}s, "
            f"total {self.elapsed_seconds:.3f}s"
        )
        if self.cache_stats:
            lines.append(
                "obligation cache: "
                f"{self.cache_stats.get('hits', 0):.0f} hits / "
                f"{self.cache_stats.get('misses', 0):.0f} misses "
                f"(hit rate {self.cache_hit_rate:.0%})"
            )
        return "\n".join(lines)


def explore(
    case_study: Union[str, CaseStudy],
    depth: int = 1,
    samples: int = 25,
    seed: int = 0,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    budget_seconds: Optional[float] = None,
    max_candidates: int = 48,
    policies: Sequence[str] = DEFAULT_POLICIES,
    engine: Optional[ObligationEngine] = None,
    strategy: str = "exhaustive",
    beam_width: int = 8,
    search_budget_seconds: Optional[float] = None,
) -> ExploreReport:
    """Run the full explorer pipeline for one case study.

    ``strategy`` selects the frontier scheduler: ``"exhaustive"`` expands
    every candidate of each generation (classic breadth-first), ``"beam"``
    expands only the ``beam_width`` most promising.  Both run the same
    generational, incrementally gated pipeline; ``search_budget_seconds``
    bounds the whole search's wall clock (the report is marked
    ``truncated`` when it bites).
    """
    case = resolve_case_study(case_study)
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r} (expected one of {'/'.join(STRATEGIES)})"
        )
    start = time.perf_counter()
    if engine is None:
        engine = ObligationEngine.for_batch(
            jobs=jobs, cache_dir=cache_dir, budget_seconds=budget_seconds
        )
    store = VerdictStore()
    scheduler = FrontierScheduler(strategy=strategy, beam_width=beam_width)
    report = ExploreReport(
        case_study=case.name,
        depth=depth,
        samples=samples,
        seed=seed,
        jobs=jobs,
        policies=tuple(policies),
        strategy=strategy,
        beam_width=beam_width,
    )

    # The root span every explorer event nests under (when no outer batch
    # span exists); verify_batch opens its own "batch" child below it.
    explore_span = telemetry.span(
        "explore", case_study=case.name, depth=depth, jobs=jobs, strategy=strategy
    )
    with explore_span:
        enumerate_start = time.perf_counter()
        base_program = case.build_program()
        space = CandidateSpace(
            base_program, case.relaxation_sites, max_candidates=max_candidates
        )
        report.enumerate_seconds += time.perf_counter() - enumerate_start

        generation: List[CandidateOutcome] = []
        for level in range(0, depth + 1):
            if level == 0:
                wave: List[Candidate] = [space.baseline]
            else:
                parents = scheduler.select(generation)
                enumerate_start = time.perf_counter()
                with telemetry.span(
                    "explore.enumerate",
                    level=level,
                    parents=len(parents),
                    max_candidates=max_candidates,
                ):
                    wave = space.expand(
                        [outcome.candidate for outcome in parents], level
                    )
                report.enumerate_seconds += time.perf_counter() - enumerate_start
                if not wave:
                    break
            telemetry.count("explore.candidates", len(wave))

            generation = _verify_wave(case, wave, engine, store, report, level)
            _score_wave(case, generation, samples, seed, policies, report)
            for outcome in generation:
                scheduler.observe(outcome)

            if (
                search_budget_seconds is not None
                and level < depth
                and time.perf_counter() - start >= search_budget_seconds
            ):
                report.truncated = True
                break

        # The Pareto frontier over (distortion, savings), across the whole
        # search (scored candidates only — i.e. verified ones).
        scored = [outcome for outcome in report.outcomes if outcome.score is not None]
        flags = pareto_flags(
            [
                (outcome.score.distortion_mean, outcome.score.savings)
                for outcome in scored
            ]
        )
        for outcome, flag in zip(scored, flags):
            outcome.pareto = flag

    report.elapsed_seconds = time.perf_counter() - start
    report.inapplicable_sites = space.inapplicable
    report.capped_candidates = space.capped
    report.duplicate_candidates = space.duplicates
    report.beam_pruned = scheduler.pruned
    report.incremental = store.stats()
    report.reward_table = scheduler.rewards.as_dict()
    report.engine_stats = engine.statistics.as_dict()
    report.solver_stats = engine.solver_statistics.as_dict()
    if engine.cache is not None:
        report.cache_stats = engine.cache.stats()
    return report


def _verify_wave(
    case: CaseStudy,
    wave: Sequence[Candidate],
    engine: ObligationEngine,
    store: VerdictStore,
    report: ExploreReport,
    level: int,
) -> List[CandidateOutcome]:
    """Gate one generation through the incremental pooled batch wave."""
    verify_start = time.perf_counter()
    with telemetry.span("explore.verify", candidates=len(wave), level=level):
        entries: List[
            Tuple[str, Optional[Program], AcceptabilitySpec, Tuple[str, ...]]
        ] = []
        spec_errors: Dict[str, str] = {}
        for candidate in wave:
            try:
                spec = case.acceptability_spec(candidate.program)
            except Exception as error:  # a spec that cannot be built is a rejection
                spec_errors[candidate.name] = f"spec construction failed: {error}"
                entries.append(
                    (candidate.name, None, AcceptabilitySpec(), candidate.site_ids)
                )
                continue
            entries.append(
                (candidate.name, candidate.program, spec, candidate.site_ids)
            )
        batch = verify_batch(
            program_items(entries, study=case.name),
            engine=engine,
            verdict_store=store,
        )
    report.verify_seconds += time.perf_counter() - verify_start

    outcomes: List[CandidateOutcome] = []
    verdicts = {result.name: result for result in batch.programs}
    for candidate in wave:
        outcome = CandidateOutcome(candidate=candidate)
        result = verdicts.get(candidate.name)
        if candidate.name in spec_errors:
            outcome.error = spec_errors[candidate.name]
        elif result is None:
            outcome.error = "no batch verdict (internal error)"
        else:
            outcome.verified = result.verified
            outcome.error = result.error
            outcome.reused_obligations = result.reused_obligations
            outcome.delta_obligations = result.delta_obligations
            outcome.obligation_fingerprints = result.obligation_fingerprints
            outcome.obligation_statuses = result.obligation_statuses
            if result.report is not None:
                for layer in (result.report.original, result.report.relaxed):
                    outcome.obligations += len(layer.results)
                    outcome.discharged += sum(
                        1 for item in layer.results if item.discharged
                    )
                if not result.verified:
                    # Attribute the rejection: which rule failed, where
                    # in the candidate's source, under which model.
                    from ..diagnostics import diagnose_report

                    outcome.failures = [
                        diagnostic.attribution()
                        for diagnostic in diagnose_report(
                            result.report, program=result.program
                        )
                    ]
        outcomes.append(outcome)
        report.outcomes.append(outcome)
    telemetry.count(
        "explore.verified_candidates",
        sum(1 for outcome in outcomes if outcome.verified),
    )
    return outcomes


def _score_wave(
    case: CaseStudy,
    outcomes: Sequence[CandidateOutcome],
    samples: int,
    seed: int,
    policies: Sequence[str],
    report: ExploreReport,
) -> None:
    """Score one generation's survivors (and only the survivors)."""
    score_start = time.perf_counter()
    with telemetry.span("explore.score", samples=samples):
        for outcome in outcomes:
            if outcome.verified:
                with telemetry.span("score", candidate=outcome.name):
                    outcome.score = score_candidate(
                        case,
                        outcome.candidate.program,
                        samples=samples,
                        seed=seed,
                        policies=policies,
                    )
    report.score_seconds += time.perf_counter() - score_start
