"""Empirical scoring of verified candidates: distortion versus savings.

A candidate that survives the static gate is *acceptable*; whether it is
*worth deploying* is an empirical question.  This module answers it with
seeded Monte Carlo simulation: the candidate runs differentially (original
semantics versus relaxed semantics) over the case study's workload
generator, under the nondeterminism policies of
:mod:`repro.semantics.choosers` — ``random`` samples typical substrate
behaviour, ``adversarial`` drives the relaxation to its extremes.

Two scores come out of every candidate:

``distortion``
    The case study's accuracy-loss metric
    (:meth:`~repro.casestudies.base.CaseStudy.distortion`) — mean over
    random runs, max over every run.

``savings``
    An estimated resource saving in ``[0, 1]`` combining two measured
    signals: the fraction of interpreter steps the relaxed execution
    skipped (perforation, task skipping, knob-shortened loops) and the
    nondeterministic freedom exercised at ``relax`` statements (how wide an
    envelope the substrate may use — the proxy for cheaper memory, elided
    locks).  It is a *proxy*, not a measurement of wall-clock on a real
    substrate; its purpose is to rank sibling candidates consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..casestudies.base import CaseStudy
from ..solver.backend import active_backend
from ..solver.vector import columnar_max, columnar_sum
from ..lang.ast import Program
from ..semantics.choosers import make_chooser
from ..semantics.interpreter import Interpreter, NonTerminationError, precompile_program
from ..semantics.observation import check_program_compatibility
from ..semantics.state import State, Terminated, is_error

#: Default nondeterminism policies a candidate is scored under.
DEFAULT_POLICIES = ("random", "adversarial")


@dataclass
class CandidateScore:
    """Aggregate empirical metrics for one candidate."""

    samples: int = 0
    errors: int = 0
    relate_violations: int = 0
    distortion_mean: float = 0.0
    distortion_max: float = 0.0
    steps_saved_fraction: float = 0.0
    relax_freedom: float = 0.0
    savings: float = 0.0
    policies: Sequence[str] = DEFAULT_POLICIES

    def as_dict(self) -> Dict[str, object]:
        return {
            "samples": self.samples,
            "errors": self.errors,
            "relate_violations": self.relate_violations,
            "distortion_mean": self.distortion_mean,
            "distortion_max": self.distortion_max,
            "steps_saved_fraction": self.steps_saved_fraction,
            "relax_freedom": self.relax_freedom,
            "savings": self.savings,
            "policies": list(self.policies),
        }


def estimated_savings(steps_saved_fraction: float, mean_relax_deviation: float) -> float:
    """Fold the two measured signals into one ``[0, 1]`` savings score.

    The freedom term saturates (``d / (1 + d)``) so wide envelopes rank
    higher without drowning out measured step savings, and is weighted at
    half a step-fraction unit: skipping real work counts more than the
    option to approximate it.
    """
    freedom = mean_relax_deviation / (1.0 + mean_relax_deviation)
    return max(0.0, min(1.0, steps_saved_fraction + 0.5 * freedom))


def score_candidate(
    case_study: CaseStudy,
    program: Program,
    samples: int = 25,
    seed: int = 0,
    policies: Sequence[str] = DEFAULT_POLICIES,
) -> CandidateScore:
    """Differentially simulate ``program`` and aggregate its scores.

    Runs every workload under every policy with per-run derived seeds, so
    the whole score is reproducible from ``(samples, seed, policies)``.
    Runs where either execution errs (or exceeds fuel) count as ``errors``
    and contribute no distortion; ``relate_violations`` counts dynamic
    observational-compatibility failures — for a statically verified
    candidate this must stay 0, so a nonzero value is a red flag worth
    surfacing in the report.
    """
    score = CandidateScore(policies=tuple(policies))
    # Compile the candidate's expressions once, up front: every sample of
    # every policy then runs on cached closures (the caches are keyed on the
    # AST nodes, which all runs of this program share).
    precompile_program(program)
    typical_distortions: List[float] = []  # non-adversarial policies only
    all_distortions: List[float] = []
    step_fractions: List[float] = []
    deviations: List[float] = []

    workloads = case_study.workloads(samples, seed=seed)
    for index, initial in enumerate(workloads):
        original_interp = Interpreter(relaxed=False)
        try:
            original = original_interp.run(program, initial)
            original_failed = is_error(original)
        except NonTerminationError:
            original_failed = True
        if original_failed:
            # The pair carries no information; skip the relaxed runs too.
            score.samples += len(policies)
            score.errors += len(policies)
            continue
        original_steps = original_interp.steps_executed
        for policy_index, policy in enumerate(policies):
            score.samples += 1
            telemetry.count("explore.samples")
            chooser = make_chooser(policy, seed=seed + index * len(policies) + policy_index)
            relaxed_interp = Interpreter(relaxed=True, chooser=chooser)
            try:
                relaxed = relaxed_interp.run(program, initial)
            except NonTerminationError:
                score.errors += 1
                continue
            if is_error(relaxed):
                score.errors += 1
                continue
            assert isinstance(original, Terminated) and isinstance(relaxed, Terminated)
            if not check_program_compatibility(
                program, original.observations, relaxed.observations
            ):
                score.relate_violations += 1
                telemetry.count("explore.relate_violations")
            distortion = case_study.distortion(initial, original, relaxed)
            if distortion is not None:
                all_distortions.append(distortion)
                if policy != "adversarial":
                    typical_distortions.append(distortion)
            if original_steps > 0:
                step_fractions.append(
                    max(0.0, 1.0 - relaxed_interp.steps_executed / original_steps)
                )
            deviations.append(float(relaxed_interp.relax_deviation))

    # On the vector backend the sample columns aggregate through numpy;
    # columnar_sum reduces sequentially (cumsum, not pairwise np.sum), so
    # scores stay bit-identical to the scalar backends on every platform.
    if active_backend() == "vector":
        column_sum, column_max = columnar_sum, columnar_max
    else:
        column_sum, column_max = (lambda v: float(sum(v))), (lambda v: float(max(v)))
    if all_distortions:
        # The mean characterises typical substrate behaviour, so it averages
        # the non-adversarial runs (falling back to everything when only
        # adversarial policies were requested); the max covers every run.
        mean_basis = typical_distortions or all_distortions
        score.distortion_mean = column_sum(mean_basis) / len(mean_basis)
        score.distortion_max = column_max(all_distortions)
    if step_fractions:
        score.steps_saved_fraction = column_sum(step_fractions) / len(step_fractions)
    if deviations:
        score.relax_freedom = column_sum(deviations) / len(deviations)
    score.savings = estimated_savings(score.steps_saved_fraction, score.relax_freedom)
    return score
