"""The relaxation-space explorer: verified autotuning over relaxed programs.

One original program induces a whole space of relaxed programs (loop
perforation, envelope restriction, dynamic knobs, ... — the mechanisms of
:mod:`repro.relaxations`); the paper's contribution is a way to *prove*
any one of them acceptable.  This subsystem searches the space:

* :mod:`~repro.explore.candidates` — enumerate candidate relaxed programs
  by composing transforms at discovered sites, deduplicated by program
  fingerprint;
* :mod:`~repro.explore.scoring` — seeded Monte Carlo differential
  simulation scoring distortion against estimated savings;
* :mod:`~repro.explore.pareto` — Pareto-frontier selection over the
  accuracy/savings trade-off;
* :mod:`~repro.explore.frontier` — the frontier scheduler: exhaustive
  breadth-first or beam search over generations, ranking parents by score
  plus a learned per-site-kind reward table;
* :mod:`~repro.explore.explorer` — the generational pipeline: expand the
  scheduled parents, gate each generation through one pooled
  obligation-engine batch over a search-session verdict store (statically
  rejected candidates are never executed; already-settled obligations are
  reused, only the delta is discharged), score the survivors, select the
  Pareto frontier, report as table/JSON/CSV.
"""

from .candidates import (
    Candidate,
    CandidateSpace,
    Enumeration,
    enumerate_candidates,
    program_fingerprint,
)
from .explorer import (
    CandidateOutcome,
    ExploreReport,
    explore,
    resolve_case_study,
)
from .frontier import STRATEGIES, FrontierScheduler, RewardTable
from .pareto import dominates, pareto_flags
from .scoring import (
    DEFAULT_POLICIES,
    CandidateScore,
    estimated_savings,
    score_candidate,
)

__all__ = [
    "Candidate",
    "CandidateOutcome",
    "CandidateScore",
    "CandidateSpace",
    "DEFAULT_POLICIES",
    "Enumeration",
    "ExploreReport",
    "FrontierScheduler",
    "RewardTable",
    "STRATEGIES",
    "dominates",
    "enumerate_candidates",
    "estimated_savings",
    "explore",
    "pareto_flags",
    "program_fingerprint",
    "resolve_case_study",
    "score_candidate",
]
