"""Candidate enumeration: the relaxation space induced by one program.

One original program induces a *space* of relaxed programs — every
combination of the mechanisms in :mod:`repro.relaxations.transforms`
applied at the sites :mod:`repro.relaxations.sites` discovers.  This module
walks that space breadth-first up to a composition depth: depth 0 is the
baseline program itself, depth 1 applies one site, depth ``d`` applies a
site to every depth ``d-1`` candidate (sites are re-discovered on each
transformed program, so compositions chain naturally — e.g. restrict the
approximate-read envelope of an already perforated loop).

Structurally identical candidates reached along different paths are
deduplicated by a *program fingerprint* — a hash of the pretty-printed
body plus declarations, independent of the candidate's display name — so
the downstream verification wave never proves the same program twice.

:class:`CandidateSpace` is the incremental form of the walk: it expands
one generation at a time from whatever parent set the caller supplies,
which is what lets the explorer's frontier scheduler choose *which*
parents to expand (beam search) while sharing the dedup/cap/inapplicable
accounting with the exhaustive path.  :func:`enumerate_candidates` is the
one-shot wrapper over it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, List, Sequence, Set, Tuple

from ..lang.ast import Program
from ..lang.pretty import pretty_stmt
from ..relaxations.sites import RelaxationSite, apply_site

#: A function yielding the applicable sites of a program (typically the
#: case study's :meth:`~repro.casestudies.base.CaseStudy.relaxation_sites`).
SiteProvider = Callable[[Program], Sequence[RelaxationSite]]


def program_fingerprint(program: Program) -> str:
    """A stable identity for a candidate program, independent of its name.

    Two candidates with the same fingerprint have the same body and
    declarations, hence identical semantics and identical proof
    obligations.
    """
    digest = hashlib.sha256()
    digest.update(pretty_stmt(program.body).encode("utf-8"))
    digest.update(("\x00vars:" + ",".join(sorted(program.variables))).encode("utf-8"))
    digest.update(("\x00arrays:" + ",".join(sorted(program.arrays))).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class Candidate:
    """One point of the relaxation space."""

    name: str
    program: Program
    fingerprint: str
    depth: int
    applied: Tuple[RelaxationSite, ...] = ()
    #: The fingerprint of the candidate this one was derived from by a
    #: single site application ("" for the baseline) — the parent link the
    #: incremental gate diffs obligation sets along.
    parent_fingerprint: str = ""

    @property
    def site_ids(self) -> Tuple[str, ...]:
        return tuple(site.site_id for site in self.applied)

    def describe(self) -> str:
        if not self.applied:
            return "baseline (no additional relaxation applied)"
        return "; ".join(site.description for site in self.applied)


@dataclass
class Enumeration:
    """The outcome of one candidate enumeration."""

    candidates: List[Candidate]
    #: Sites that could not be applied (stale anchors after composition).
    inapplicable: int = 0
    #: Distinct site applications skipped because the ``max_candidates``
    #: cap was reached: each skipped (parent, site) pair counts exactly
    #: once, at the first generation where the cap bit (deeper generations
    #: that were never expanded are a consequence of the cap, not
    #: additional distinct skips).  Reported, never silently dropped.
    capped: int = 0
    #: Structurally duplicate candidates folded by fingerprint.
    duplicates: int = 0


class CandidateSpace:
    """The relaxation space of one program, expanded a generation at a time.

    The space owns the global dedup set, the candidate cap, and the
    inapplicable/duplicate/capped accounting; callers decide *which*
    parents to expand each generation (all of them for exhaustive
    breadth-first search, a scheduler-chosen subset for beam search).
    Expansion order is deterministic: parents in the order given, each
    parent's sites in discovery order.
    """

    def __init__(
        self,
        program: Program,
        site_provider: SiteProvider,
        max_candidates: int = 48,
    ) -> None:
        if max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        self.program = program
        self.site_provider = site_provider
        self.max_candidates = max_candidates
        self.baseline = Candidate(
            name=program.name,
            program=program,
            fingerprint=program_fingerprint(program),
            depth=0,
        )
        self.total = 1  # candidates admitted, baseline included
        self.inapplicable = 0
        self.duplicates = 0
        #: Distinct (parent fingerprint, site id) applications skipped by
        #: the cap — a set, so one skipped application never counts twice.
        self._skipped: Set[Tuple[str, str]] = set()
        self._seen: Set[str] = {self.baseline.fingerprint}
        self._cap_hit = False

    @property
    def capped(self) -> int:
        return len(self._skipped)

    @property
    def exhausted(self) -> bool:
        """True once the cap bit: deeper generations are not expanded."""
        return self._cap_hit

    def expand(self, parents: Sequence[Candidate], level: int) -> List[Candidate]:
        """One generation: apply every discoverable site to each parent.

        Returns the admitted children (deduplicated against everything the
        space has seen).  Once the cap bites, the remainder of the current
        generation is counted into :attr:`capped` as distinct skipped
        applications and later calls return ``[]`` without counting —
        generations that never started are a consequence of the cap, not
        additional skips.
        """
        if self._cap_hit:
            return []
        children: List[Candidate] = []
        for parent in parents:
            for site in self.site_provider(parent.program):
                if self.total >= self.max_candidates:
                    self._skipped.add((parent.fingerprint, site.site_id))
                    continue
                try:
                    result = apply_site(parent.program, site)
                except ValueError:
                    self.inapplicable += 1
                    continue
                fingerprint = program_fingerprint(result.program)
                if fingerprint in self._seen:
                    self.duplicates += 1
                    continue
                self._seen.add(fingerprint)
                name = (
                    f"{self.program.name}"
                    f"+{'+'.join(parent.site_ids + (site.site_id,))}"
                )
                candidate = Candidate(
                    name=name,
                    program=dc_replace(result.program, name=name),
                    fingerprint=fingerprint,
                    depth=level,
                    applied=parent.applied + (site,),
                    parent_fingerprint=parent.fingerprint,
                )
                children.append(candidate)
                self.total += 1
        if self._skipped:
            self._cap_hit = True
        return children


def enumerate_candidates(
    program: Program,
    site_provider: SiteProvider,
    depth: int = 1,
    max_candidates: int = 48,
) -> Enumeration:
    """Enumerate the relaxation space of ``program`` up to ``depth``.

    Breadth-first over site applications with fingerprint dedup; the
    baseline program is always candidate 0.  ``max_candidates`` bounds the
    total; the cap count is reported in the result so truncation is never
    silent, counting each distinct skipped (parent, site) application once
    (see :class:`Enumeration`).
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    space = CandidateSpace(program, site_provider, max_candidates=max_candidates)
    enumeration = Enumeration(candidates=[space.baseline])
    frontier: List[Candidate] = [space.baseline]
    for level in range(1, depth + 1):
        frontier = space.expand(frontier, level)
        if not frontier:
            break
        enumeration.candidates.extend(frontier)
    enumeration.inapplicable = space.inapplicable
    enumeration.capped = space.capped
    enumeration.duplicates = space.duplicates
    return enumeration
