"""Candidate enumeration: the relaxation space induced by one program.

One original program induces a *space* of relaxed programs — every
combination of the mechanisms in :mod:`repro.relaxations.transforms`
applied at the sites :mod:`repro.relaxations.sites` discovers.  This module
walks that space breadth-first up to a composition depth: depth 0 is the
baseline program itself, depth 1 applies one site, depth ``d`` applies a
site to every depth ``d-1`` candidate (sites are re-discovered on each
transformed program, so compositions chain naturally — e.g. restrict the
approximate-read envelope of an already perforated loop).

Structurally identical candidates reached along different paths are
deduplicated by a *program fingerprint* — a hash of the pretty-printed
body plus declarations, independent of the candidate's display name — so
the downstream verification wave never proves the same program twice.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, List, Optional, Sequence, Tuple

from ..lang.ast import Program
from ..lang.pretty import pretty_stmt
from ..relaxations.sites import RelaxationSite, apply_site

#: A function yielding the applicable sites of a program (typically the
#: case study's :meth:`~repro.casestudies.base.CaseStudy.relaxation_sites`).
SiteProvider = Callable[[Program], Sequence[RelaxationSite]]


def program_fingerprint(program: Program) -> str:
    """A stable identity for a candidate program, independent of its name.

    Two candidates with the same fingerprint have the same body and
    declarations, hence identical semantics and identical proof
    obligations.
    """
    digest = hashlib.sha256()
    digest.update(pretty_stmt(program.body).encode("utf-8"))
    digest.update(("\x00vars:" + ",".join(sorted(program.variables))).encode("utf-8"))
    digest.update(("\x00arrays:" + ",".join(sorted(program.arrays))).encode("utf-8"))
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class Candidate:
    """One point of the relaxation space."""

    name: str
    program: Program
    fingerprint: str
    depth: int
    applied: Tuple[RelaxationSite, ...] = ()

    @property
    def site_ids(self) -> Tuple[str, ...]:
        return tuple(site.site_id for site in self.applied)

    def describe(self) -> str:
        if not self.applied:
            return "baseline (no additional relaxation applied)"
        return "; ".join(site.description for site in self.applied)


@dataclass
class Enumeration:
    """The outcome of one candidate enumeration."""

    candidates: List[Candidate]
    #: Sites that could not be applied (stale anchors after composition).
    inapplicable: int = 0
    #: Site applications skipped because the ``max_candidates`` cap was
    #: reached (some would have deduplicated anyway; none were attempted) —
    #: reported, never silently dropped.
    capped: int = 0
    #: Structurally duplicate candidates folded by fingerprint.
    duplicates: int = 0


def enumerate_candidates(
    program: Program,
    site_provider: SiteProvider,
    depth: int = 1,
    max_candidates: int = 48,
) -> Enumeration:
    """Enumerate the relaxation space of ``program`` up to ``depth``.

    Breadth-first over site applications with fingerprint dedup; the
    baseline program is always candidate 0.  ``max_candidates`` bounds the
    total (the cap count is reported in the result so truncation is never
    silent).
    """
    if depth < 0:
        raise ValueError("depth must be >= 0")
    if max_candidates < 1:
        raise ValueError("max_candidates must be >= 1")

    baseline = Candidate(
        name=program.name,
        program=program,
        fingerprint=program_fingerprint(program),
        depth=0,
    )
    enumeration = Enumeration(candidates=[baseline])
    seen = {baseline.fingerprint}
    frontier = [baseline]

    for level in range(1, depth + 1):
        next_frontier: List[Candidate] = []
        for parent in frontier:
            for site in site_provider(parent.program):
                if len(enumeration.candidates) >= max_candidates:
                    enumeration.capped += 1
                    continue
                try:
                    result = apply_site(parent.program, site)
                except ValueError:
                    enumeration.inapplicable += 1
                    continue
                fingerprint = program_fingerprint(result.program)
                if fingerprint in seen:
                    enumeration.duplicates += 1
                    continue
                seen.add(fingerprint)
                name = f"{program.name}+{'+'.join(parent.site_ids + (site.site_id,))}"
                candidate = Candidate(
                    name=name,
                    program=dc_replace(result.program, name=name),
                    fingerprint=fingerprint,
                    depth=level,
                    applied=parent.applied + (site,),
                )
                enumeration.candidates.append(candidate)
                next_frontier.append(candidate)
        frontier = next_frontier
    return enumeration
