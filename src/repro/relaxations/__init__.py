"""Relaxation mechanisms: transformations that produce relaxed programs.

The paper's introduction lists the mechanisms known to produce relaxed
programs; :mod:`repro.relaxations.transforms` implements each of them as a
source-to-source transformation over the language of :mod:`repro.lang`:

* loop perforation,
* dynamic knobs,
* task skipping,
* reduction sampling,
* approximate memory reads / approximate data types,
* synchronization elimination,
* approximate function memoization.
"""

from . import transforms
from .transforms import (
    RelaxationResult,
    approximate_memoization,
    approximate_reads,
    dynamic_knob,
    eliminate_synchronization,
    perforate_loop,
    sample_reduction,
    skip_tasks,
)

__all__ = [
    "transforms",
    "RelaxationResult",
    "approximate_memoization",
    "approximate_reads",
    "dynamic_knob",
    "eliminate_synchronization",
    "perforate_loop",
    "sample_reduction",
    "skip_tasks",
]
