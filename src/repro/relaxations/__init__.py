"""Relaxation mechanisms: transformations that produce relaxed programs.

The paper's introduction lists the mechanisms known to produce relaxed
programs; :mod:`repro.relaxations.transforms` implements each of them as a
source-to-source transformation over the language of :mod:`repro.lang`:

* loop perforation,
* dynamic knobs,
* task skipping,
* reduction sampling,
* approximate memory reads / approximate data types,
* synchronization elimination,
* approximate function memoization.
"""

from . import sites, transforms
from .sites import SITE_KINDS, RelaxationSite, apply_site, discover_sites
from .transforms import (
    RelaxationResult,
    approximate_memoization,
    approximate_reads,
    dynamic_knob,
    eliminate_synchronization,
    perforate_loop,
    restrict_relax,
    sample_reduction,
    skip_tasks,
)

__all__ = [
    "sites",
    "transforms",
    "RelaxationResult",
    "RelaxationSite",
    "SITE_KINDS",
    "apply_site",
    "approximate_memoization",
    "approximate_reads",
    "discover_sites",
    "dynamic_knob",
    "eliminate_synchronization",
    "perforate_loop",
    "restrict_relax",
    "sample_reduction",
    "skip_tasks",
]
