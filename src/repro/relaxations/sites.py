"""Relaxation-site discovery: where can a program be relaxed (further)?

The explorer (:mod:`repro.explore`) needs a uniform answer to "which
transformations from :mod:`repro.relaxations.transforms` apply to this
program, and with which parameters?".  A :class:`RelaxationSite` is one
such concrete, parameterised opportunity — e.g. *perforate the loop over*
``i`` *with stride up to 4*, or *restrict the relax on* ``a`` *to a ±1
envelope* — and :func:`apply_site` turns a site into the transformed
program.

Three site kinds are discovered syntactically:

``perforate-loop``
    A ``while`` loop whose body contains the canonical counter increment
    ``c = c + 1`` for a counter read by the loop condition.  Perforation
    widens the space *outward*: the relaxed program may skip iterations.

``restrict-relax``
    An existing ``relax (t) st (P)`` whose predicate relates the single
    scalar target ``t`` to a reference variable (typically the saved
    ``original_t``).  Restriction walks *inward*: the predicate is
    strengthened to ``P && |t - ref| <= delta``, which provably preserves
    any acceptability proof of the wider program (the relaxed-side
    obligations universally quantify over the predicate).

``dynamic-knob``
    A scalar variable read by some loop condition but never written by the
    program — a configuration knob in the Dynamic Knobs sense; the relaxed
    program may lower it to a floor.

Sites are plain frozen data (no callables), so candidate programs can be
fingerprinted, deduplicated and reported stably across processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..lang import builder as b
from ..lang.analysis import bool_vars, modified_vars
from ..lang.ast import Assign, Havoc, Program, Relax, Stmt, While
from .transforms import (
    RelaxationResult,
    dynamic_knob,
    perforate_loop,
    restrict_relax,
)

#: The site kinds :func:`discover_sites` can produce.
SITE_KINDS = ("perforate-loop", "restrict-relax", "dynamic-knob")


@dataclass(frozen=True)
class RelaxationSite:
    """One concrete, parameterised transformation opportunity.

    ``node`` anchors the site to the statement it rewrites (the loop for
    perforation, the relax statement for restriction); AST nodes are frozen
    dataclasses, so sites are hashable and structurally comparable.
    """

    kind: str
    site_id: str
    description: str = ""
    node: Optional[Stmt] = None
    names: Tuple[str, ...] = ()
    params: Tuple[Tuple[str, int], ...] = ()

    def param(self, name: str, default: Optional[int] = None) -> Optional[int]:
        for key, value in self.params:
            if key == name:
                return value
        return default


def _loop_counters(loop: While) -> List[str]:
    """Counters incremented as ``c = c + 1`` inside ``loop`` and read by its
    condition — the shape :func:`perforate_loop` knows how to perforate."""
    condition_vars = bool_vars(loop.condition)
    counters = []
    for node in loop.body.walk():
        if (
            isinstance(node, Assign)
            and node.value == b.add(node.target, 1)
            and node.target in condition_vars
            and node.target not in counters
        ):
            counters.append(node.target)
    return counters


def _restrict_reference(relax: Relax, program: Program) -> Optional[str]:
    """The reference variable a restriction envelope is centred on."""
    if len(relax.targets) != 1:
        return None
    target = relax.targets[0]
    if target in program.arrays:
        return None
    predicate_vars = bool_vars(relax.predicate) - {target} - set(program.arrays)
    if f"original_{target}" in predicate_vars:
        return f"original_{target}"
    for name in sorted(predicate_vars):
        return name
    return None


def discover_sites(
    program: Program,
    perforation_strides: Sequence[int] = (2, 4),
    restrict_deltas: Sequence[int] = (0, 1, 2),
    knob_floors: Sequence[int] = (1,),
) -> List[RelaxationSite]:
    """Discover every applicable relaxation site of ``program``.

    Sites are returned in deterministic syntactic order; the ``site_id``
    embeds the anchor position and the parameter values, so two sites with
    the same id denote the same transformation.
    """
    sites: List[RelaxationSite] = []

    loops = [node for node in program.body.walk() if isinstance(node, While)]
    for loop_index, loop in enumerate(loops):
        for counter in _loop_counters(loop):
            for stride in perforation_strides:
                sites.append(
                    RelaxationSite(
                        kind="perforate-loop",
                        site_id=f"perforate:{counter}@L{loop_index}:s{stride}",
                        description=(
                            f"perforate the loop over {counter!r} "
                            f"(stride up to {stride})"
                        ),
                        node=loop,
                        names=(counter,),
                        params=(("max_stride", stride),),
                    )
                )

    relaxes = [node for node in program.body.walk() if isinstance(node, Relax)]
    for relax_index, relax in enumerate(relaxes):
        reference = _restrict_reference(relax, program)
        if reference is None:
            continue
        target = relax.targets[0]
        for delta in restrict_deltas:
            sites.append(
                RelaxationSite(
                    kind="restrict-relax",
                    site_id=f"restrict:{target}@R{relax_index}:d{delta}",
                    description=(
                        f"restrict relax on {target!r} to the "
                        f"±{delta} envelope around {reference!r}"
                    ),
                    node=relax,
                    names=(target, reference),
                    params=(("delta", delta),),
                )
            )

    written = modified_vars(program.body)
    relaxed_targets = {
        name
        for node in program.body.walk()
        if isinstance(node, (Relax, Havoc))
        for name in node.targets
    }
    knob_candidates: List[str] = []
    for loop in loops:
        for name in sorted(bool_vars(loop.condition)):
            if (
                name not in written
                and name not in relaxed_targets
                and name not in program.arrays
                and name not in knob_candidates
            ):
                knob_candidates.append(name)
    for name in knob_candidates:
        for floor in knob_floors:
            sites.append(
                RelaxationSite(
                    kind="dynamic-knob",
                    site_id=f"knob:{name}:f{floor}",
                    description=f"dynamic knob on {name!r} with floor {floor}",
                    names=(name,),
                    params=(("floor", floor),),
                )
            )

    return sites


def apply_site(program: Program, site: RelaxationSite) -> RelaxationResult:
    """Apply one discovered site to ``program``.

    Raises :class:`ValueError` for sites whose anchor no longer occurs in
    the program (e.g. a stale site applied after another transformation
    rewrote the same statement).
    """
    if site.kind == "perforate-loop":
        if not isinstance(site.node, While):
            raise ValueError(f"perforation site {site.site_id} has no loop anchor")
        counter = site.names[0]
        return perforate_loop(
            program,
            site.node,
            counter=counter,
            perforation_stride_var=f"{counter}_stride",
            max_stride=site.param("max_stride", 4),
        )
    if site.kind == "restrict-relax":
        if not isinstance(site.node, Relax):
            raise ValueError(f"restriction site {site.site_id} has no relax anchor")
        target, reference = site.names
        delta = site.param("delta", 0)
        constraint = b.and_(
            b.le(b.sub(reference, delta), target),
            b.le(target, b.add(reference, delta)),
        )
        return restrict_relax(
            program, site.node, constraint, suffix=f"restricted-d{delta}"
        )
    if site.kind == "dynamic-knob":
        return dynamic_knob(program, knob=site.names[0], floor=site.param("floor", 1))
    raise ValueError(f"unknown site kind {site.kind!r}")
