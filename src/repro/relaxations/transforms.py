"""Program transformations that produce relaxed programs.

Section 1 of the paper lists the mechanisms that generate relaxed programs:
skipping tasks, loop perforation, reduction sampling, multiple selectable
implementations / dynamic knobs, synchronization elimination, approximate
function memoization and approximate data types.  Each transformation in
this module takes an *original* program (plus a description of where to
apply the transformation) and produces a relaxed program — the original
program extended with ``relax`` statements and, where the mechanism has a
canonical acceptability property, suggested ``relate`` scaffolding.

The transformations are intentionally syntactic (they insert relaxation
nondeterminism; they do not try to prove anything) — proving the resulting
program acceptable is the job of :mod:`repro.hoare`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..lang import builder as b
from ..lang.analysis import modified_vars
from ..lang.ast import (
    Assign,
    BoolExpr,
    Program,
    Relate,
    Relax,
    RelBoolExpr,
    Seq,
    Skip,
    Stmt,
    While,
    replace_statement as _replace_statement,
    seq,
)


@dataclass(frozen=True)
class RelaxationResult:
    """The outcome of applying a relaxation transformation."""

    program: Program
    description: str
    inserted_relax: Tuple[Relax, ...] = ()
    suggested_relates: Tuple[Relate, ...] = ()
    knob_variables: Tuple[str, ...] = ()


def _with_body(program: Program, body: Stmt, suffix: str) -> Program:
    return Program(
        body=body,
        name=f"{program.name}-{suffix}",
        variables=program.variables,
        arrays=program.arrays,
    )


# ---------------------------------------------------------------------------
# Loop perforation
# ---------------------------------------------------------------------------


def perforate_loop(
    program: Program,
    loop: While,
    counter: str,
    perforation_stride_var: str = "stride",
    max_stride: int = 4,
) -> RelaxationResult:
    """Loop perforation: skip iterations of a time-consuming loop.

    The transformation introduces a ``stride`` control variable: the original
    program always uses stride 1, the relaxed program may pick any stride in
    ``[1, max_stride]``, so the loop counter advances faster and iterations
    are skipped.  The relax statement is inserted immediately before the
    loop; the counter increment inside the loop is changed from ``+1`` to
    ``+stride``.
    """
    relax_stmt = Relax(
        (perforation_stride_var,),
        b.and_(b.ge(perforation_stride_var, 1), b.le(perforation_stride_var, max_stride)),
    )
    new_body = _replace_statement(
        loop.body,
        Assign(counter, b.add(counter, 1)),
        Assign(counter, b.add(counter, perforation_stride_var)),
    )
    new_loop = While(loop.condition, new_body, loop.invariant, loop.rel_invariant)
    body = _replace_statement(program.body, loop, seq(relax_stmt, new_loop))
    # In the original semantics the stride must be 1 for identical behaviour.
    body = seq(Assign(perforation_stride_var, b.n(1)), body)
    new_program = Program(
        body=body,
        name=f"{program.name}-perforated",
        variables=tuple(program.variables) + (perforation_stride_var,),
        arrays=program.arrays,
    )
    return RelaxationResult(
        program=new_program,
        description=(
            f"loop perforation of the loop over {counter!r} with stride up to {max_stride}"
        ),
        inserted_relax=(relax_stmt,),
        knob_variables=(perforation_stride_var,),
    )


# ---------------------------------------------------------------------------
# Dynamic knobs
# ---------------------------------------------------------------------------


def dynamic_knob(
    program: Program,
    knob: str,
    floor: int,
    saved_copy: Optional[str] = None,
    insert_before: Optional[Stmt] = None,
) -> RelaxationResult:
    """Dynamic knobs: let a control variable drop, but never below ``floor``.

    This is the Swish++ relaxation shape: save the original knob value, then
    allow the knob to take any value that either equals the original (when
    the original was at most ``floor``) or is at least ``floor``.
    """
    saved = saved_copy or f"original_{knob}"
    relax_stmt = Relax(
        (knob,),
        b.or_(
            b.and_(b.le(saved, floor), b.eq(knob, saved)),
            b.and_(b.gt(saved, floor), b.ge(knob, floor)),
        ),
    )
    prefix = seq(Assign(saved, b.v(knob)), relax_stmt)
    if insert_before is not None:
        body = _replace_statement(program.body, insert_before, seq(prefix, insert_before))
    else:
        body = seq(prefix, program.body)
    new_program = Program(
        body=body,
        name=f"{program.name}-knobbed",
        variables=tuple(dict.fromkeys(tuple(program.variables) + (saved,))),
        arrays=program.arrays,
    )
    return RelaxationResult(
        program=new_program,
        description=f"dynamic knob on {knob!r} with floor {floor}",
        inserted_relax=(relax_stmt,),
        knob_variables=(knob,),
    )


# ---------------------------------------------------------------------------
# Task skipping / reduction sampling
# ---------------------------------------------------------------------------


def skip_tasks(
    program: Program,
    remaining_tasks_var: str,
    max_skipped: int,
    insert_before: Optional[Stmt] = None,
) -> RelaxationResult:
    """Task skipping: allow up to ``max_skipped`` tasks to be discarded.

    The relaxed program may reduce the task count by a bounded amount; the
    original program processes every task.  (This is the shape of the
    barrier-load-balancing and fault-tolerance relaxations cited by the
    paper.)
    """
    saved = f"original_{remaining_tasks_var}"
    relax_stmt = Relax(
        (remaining_tasks_var,),
        b.and_(
            b.le(remaining_tasks_var, saved),
            b.ge(remaining_tasks_var, b.sub(saved, max_skipped)),
            b.ge(remaining_tasks_var, 0),
        ),
    )
    prefix = seq(Assign(saved, b.v(remaining_tasks_var)), relax_stmt)
    if insert_before is not None:
        body = _replace_statement(program.body, insert_before, seq(prefix, insert_before))
    else:
        body = seq(prefix, program.body)
    new_program = Program(
        body=body,
        name=f"{program.name}-taskskip",
        variables=tuple(dict.fromkeys(tuple(program.variables) + (saved,))),
        arrays=program.arrays,
    )
    suggested = Relate(
        "tasks",
        b.rand(
            b.rle(b.r(remaining_tasks_var), b.o(remaining_tasks_var)),
            b.rge(b.r(remaining_tasks_var), b.rsub(b.o(remaining_tasks_var), max_skipped)),
        ),
    )
    return RelaxationResult(
        program=new_program,
        description=f"skip up to {max_skipped} tasks from {remaining_tasks_var!r}",
        inserted_relax=(relax_stmt,),
        suggested_relates=(suggested,),
        knob_variables=(remaining_tasks_var,),
    )


def sample_reduction(
    program: Program,
    sample_count_var: str,
    population_var: str,
    minimum_fraction_percent: int,
    insert_before: Optional[Stmt] = None,
) -> RelaxationResult:
    """Reduction sampling: compute a reduction over a sampled subset of inputs.

    The relaxed program may reduce over any sample whose size is at least
    ``minimum_fraction_percent`` percent of the population (and no larger
    than the population).
    """
    relax_stmt = Relax(
        (sample_count_var,),
        b.and_(
            b.le(sample_count_var, population_var),
            b.ge(
                b.mul(100, sample_count_var),
                b.mul(minimum_fraction_percent, population_var),
            ),
            b.ge(sample_count_var, 0),
        ),
    )
    if insert_before is not None:
        body = _replace_statement(program.body, insert_before, seq(relax_stmt, insert_before))
    else:
        body = seq(relax_stmt, program.body)
    new_program = _with_body(program, body, "sampled")
    return RelaxationResult(
        program=new_program,
        description=(
            f"reduction sampling: use at least {minimum_fraction_percent}% of "
            f"{population_var!r}"
        ),
        inserted_relax=(relax_stmt,),
        knob_variables=(sample_count_var,),
    )


# ---------------------------------------------------------------------------
# Approximate memory / approximate data types
# ---------------------------------------------------------------------------


def approximate_reads(
    program: Program,
    value_var: str,
    error_bound_var: str,
    insert_after: Stmt,
) -> RelaxationResult:
    """Approximate memory: a read may return a value within a bounded error.

    Inserted immediately after the statement that performs the read (the
    paper's LU modelling): the original value is saved and the relaxed value
    may deviate by at most the error bound.
    """
    saved = f"original_{value_var}"
    relax_stmt = Relax(
        (value_var,),
        b.and_(
            b.le(b.sub(saved, error_bound_var), value_var),
            b.le(value_var, b.add(saved, error_bound_var)),
        ),
    )
    injected = seq(insert_after, Assign(saved, b.v(value_var)), relax_stmt)
    body = _replace_statement(program.body, insert_after, injected)
    new_program = Program(
        body=body,
        name=f"{program.name}-approxmem",
        variables=tuple(dict.fromkeys(tuple(program.variables) + (saved,))),
        arrays=program.arrays,
    )
    suggested = Relate(
        f"approx_{value_var}",
        b.within(value_var, b.r(error_bound_var)),
    )
    return RelaxationResult(
        program=new_program,
        description=f"approximate reads of {value_var!r} within ±{error_bound_var}",
        inserted_relax=(relax_stmt,),
        suggested_relates=(suggested,),
    )


# ---------------------------------------------------------------------------
# Relaxation restriction (predicate strengthening)
# ---------------------------------------------------------------------------


def restrict_relax(
    program: Program,
    relax: Relax,
    constraint: BoolExpr,
    suffix: str = "restricted",
) -> RelaxationResult:
    """Strengthen the predicate of an existing ``relax`` statement.

    The restricted statement ``relax (X) st (P && Q)`` admits a subset of the
    executions of ``relax (X) st (P)``, so any acceptability proof of the
    wider program remains a proof of the restricted one (the relaxed-side
    obligations are universally quantified over the relax predicate, and
    strengthening a hypothesis preserves validity).  This is the transform
    the relaxation-space explorer uses to walk *inward* from an already
    verified relaxation — trading savings for accuracy without re-proving
    anything by hand.
    """
    from ..lang import ast as _ast

    new_relax = Relax(relax.targets, _ast.conj(relax.predicate, constraint))
    body = _replace_statement(program.body, relax, new_relax)
    if body is program.body or body == program.body:
        # _replace_statement found no occurrence; make the failure loud.
        if relax not in list(program.body.walk()):
            raise ValueError(f"relax statement {relax} does not occur in {program.name}")
    new_program = _with_body(program, body, suffix)
    return RelaxationResult(
        program=new_program,
        description=(
            f"restrict relax ({', '.join(relax.targets)}) with extra "
            f"constraint ({constraint})"
        ),
        inserted_relax=(new_relax,),
        knob_variables=relax.targets,
    )


# ---------------------------------------------------------------------------
# Synchronization elimination
# ---------------------------------------------------------------------------


def eliminate_synchronization(
    program: Program,
    racy_arrays: Sequence[str],
    insert_before: Optional[Stmt] = None,
) -> RelaxationResult:
    """Synchronization elimination: racy updates make the named arrays
    nondeterministic (the Water modelling: ``relax (RS) st (true)``)."""
    relax_stmt = Relax(tuple(racy_arrays), b.true)
    if insert_before is not None:
        body = _replace_statement(program.body, insert_before, seq(relax_stmt, insert_before))
    else:
        body = seq(relax_stmt, program.body)
    new_program = _with_body(program, body, "unsynchronized")
    return RelaxationResult(
        program=new_program,
        description=f"synchronization elimination over arrays {tuple(racy_arrays)!r}",
        inserted_relax=(relax_stmt,),
    )


# ---------------------------------------------------------------------------
# Approximate function memoization
# ---------------------------------------------------------------------------


def approximate_memoization(
    program: Program,
    result_var: str,
    argument_var: str,
    cached_argument_var: str,
    cached_result_var: str,
    argument_tolerance: int,
    result_tolerance: int,
    insert_after: Stmt,
) -> RelaxationResult:
    """Approximate memoization: reuse a cached result for nearby arguments.

    After the statement computing ``result_var`` the relaxed program may
    replace the result with the cached result, provided the current argument
    is within ``argument_tolerance`` of the cached argument and the cached
    result is within ``result_tolerance`` of the freshly computed result.
    """
    saved = f"computed_{result_var}"
    relax_stmt = Relax(
        (result_var,),
        b.or_(
            b.eq(result_var, saved),
            b.and_(
                # the cached call is applicable ...
                b.le(b.sub(argument_var, cached_argument_var), argument_tolerance),
                b.le(b.sub(cached_argument_var, argument_var), argument_tolerance),
                # ... and returning it stays within the result tolerance
                b.eq(result_var, cached_result_var),
                b.le(b.sub(saved, result_var), result_tolerance),
                b.le(b.sub(result_var, saved), result_tolerance),
            ),
        ),
    )
    injected = seq(insert_after, Assign(saved, b.v(result_var)), relax_stmt)
    body = _replace_statement(program.body, insert_after, injected)
    new_program = Program(
        body=body,
        name=f"{program.name}-memoized",
        variables=tuple(dict.fromkeys(tuple(program.variables) + (saved,))),
        arrays=program.arrays,
    )
    suggested = Relate(
        f"memo_{result_var}",
        b.within(result_var, result_tolerance),
    )
    return RelaxationResult(
        program=new_program,
        description=(
            f"approximate memoization of {result_var!r} "
            f"(argument tolerance {argument_tolerance}, result tolerance {result_tolerance})"
        ),
        inserted_relax=(relax_stmt,),
        suggested_relates=(suggested,),
    )
