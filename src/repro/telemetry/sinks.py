"""Telemetry sinks: envelope section, JSONL event log, Chrome trace.

A *sink* consumes a finished :class:`~repro.telemetry.core.TelemetrySession`
and renders it somewhere; the interface is deliberately just "a callable
taking the session" so new sinks (a statsd forwarder, an SQLite store)
plug in without touching the collection side.  Three sinks ship here:

:func:`telemetry_section`
    The ``telemetry`` section of the shared CLI JSON envelope
    (:mod:`repro.cli_report`): per-span-name aggregates plus the raw
    counter/gauge/histogram tables.  Compact by design — the envelope is
    diffed in tests and archived by CI, so it carries aggregates, not the
    full span list.

:func:`write_jsonl`
    One JSON object per line — ``span`` events (full records) followed by
    ``counter`` / ``gauge`` / ``histogram`` events.  The append-friendly
    format for log shippers and ad-hoc ``jq`` analysis.

:func:`write_chrome_trace` / :func:`chrome_trace_payload`
    The Chrome ``trace_event`` JSON-object format (``traceEvents`` +
    ``otherData``), directly loadable in Perfetto or ``chrome://tracing``.
    Every finished span becomes a complete (``"ph": "X"``) event with
    microsecond timestamps rebased to the earliest span; span/parent ids
    ride along in ``args`` so :mod:`repro.telemetry.summary` (and tests)
    can rebuild the tree, and the metric tables are embedded under
    ``otherData`` so a saved trace is self-contained.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .core import SpanRecord, TelemetrySession

#: Version stamp of the chrome-trace ``otherData`` payload this module
#: writes (summarize refuses traces it cannot interpret).
TRACE_FORMAT_VERSION = 1


def span_aggregates(records: List[SpanRecord]) -> Dict[str, Dict[str, float]]:
    """Per-span-name aggregates: count, total/max wall-clock seconds."""
    aggregates: Dict[str, Dict[str, float]] = {}
    for record in records:
        entry = aggregates.get(record.name)
        if entry is None:
            entry = aggregates[record.name] = {
                "count": 0.0,
                "total_seconds": 0.0,
                "max_seconds": 0.0,
            }
        entry["count"] += 1
        entry["total_seconds"] += record.duration
        if record.duration > entry["max_seconds"]:
            entry["max_seconds"] = record.duration
    return aggregates


def telemetry_section(session: TelemetrySession) -> Dict[str, object]:
    """The ``telemetry`` section carried by the CLI JSON envelopes."""
    return {
        "enabled": True,
        "span_count": len(session.records),
        "spans": span_aggregates(session.records),
        "counters": dict(session.counters),
        "gauges": dict(session.gauges),
        "histograms": {
            name: histogram.as_dict()
            for name, histogram in session.histograms.items()
        },
    }


def write_jsonl(session: TelemetrySession, destination: str) -> None:
    """Write the session as a JSONL event log (spans first, then metrics)."""
    lines: List[str] = []
    for record in session.records:
        lines.append(json.dumps({"type": "span", **record.as_dict()}, sort_keys=True))
    for name in sorted(session.counters):
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "value": session.counters[name]},
                sort_keys=True,
            )
        )
    for name in sorted(session.gauges):
        lines.append(
            json.dumps(
                {"type": "gauge", "name": name, "value": session.gauges[name]},
                sort_keys=True,
            )
        )
    for name in sorted(session.histograms):
        lines.append(
            json.dumps(
                {
                    "type": "histogram",
                    "name": name,
                    **session.histograms[name].as_dict(),
                },
                sort_keys=True,
            )
        )
    with open(destination, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + ("\n" if lines else ""))


def chrome_trace_payload(session: TelemetrySession) -> Dict[str, object]:
    """The session as a Chrome ``trace_event`` JSON object."""
    records = session.records
    base = min((record.start for record in records), default=0.0)
    events: List[Dict[str, object]] = []
    pids = sorted({record.pid for record in records})
    for pid in pids:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {
                    "name": "repro" if pid == session.pid else f"repro-worker-{pid}"
                },
            }
        )
    for record in records:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": round((record.start - base) * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "pid": record.pid,
                "tid": 0,
                "args": {
                    **record.attributes,
                    "span_id": record.span_id,
                    "parent_span_id": record.parent_id,
                },
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro --trace",
            "format_version": TRACE_FORMAT_VERSION,
            "counters": dict(session.counters),
            "gauges": dict(session.gauges),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in session.histograms.items()
            },
        },
    }


def write_chrome_trace(session: TelemetrySession, destination: str) -> None:
    """Write the Chrome trace (``.jsonl`` destinations get the JSONL sink).

    One ``--trace FILE`` flag drives both exporters: a ``*.jsonl`` path
    selects the event-log format, anything else the Chrome trace that
    Perfetto / ``chrome://tracing`` open directly.
    """
    if destination.endswith(".jsonl"):
        write_jsonl(session, destination)
        return
    payload = chrome_trace_payload(session)
    with open(destination, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
