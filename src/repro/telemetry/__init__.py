"""Telemetry: hierarchical spans, metrics and trace export for the pipeline.

The package splits into a runtime half and a sink half:

* :mod:`repro.telemetry.core` — the collector (:class:`TelemetrySession`),
  spans, counters/gauges/histograms, and the module-level instrumentation
  API (:func:`span`, :func:`count`, :func:`observe`, :func:`gauge`) whose
  disabled path costs one global read;
* :mod:`repro.telemetry.sinks` — the envelope section, the JSONL event
  log, and the Chrome ``trace_event`` exporter behind ``--trace``;
* :mod:`repro.telemetry.summary` — the offline analyzer behind
  ``repro trace summarize``.

Instrumentation points import this package and call the helpers directly::

    from .. import telemetry

    with telemetry.span("discharge", index=i, kind=kind) as sp:
        result = run(...)
        sp.set_attribute("status", result.status.value)
    telemetry.count("engine.cache.misses")

See ``docs/architecture.md`` ("The telemetry layer") for the span
taxonomy and how to add an instrument point.
"""

from .core import (
    NOOP_SPAN,
    Histogram,
    Span,
    SpanRecord,
    TelemetrySession,
    activated,
    active_session,
    count,
    current_span_id,
    enabled,
    gauge,
    install,
    merge_exported,
    observe,
    span,
    uninstall,
)
from .sinks import (
    chrome_trace_payload,
    span_aggregates,
    telemetry_section,
    write_chrome_trace,
    write_jsonl,
)
from .summary import TraceFormatError, TraceSummary, summarize_trace

__all__ = [
    "NOOP_SPAN",
    "Histogram",
    "Span",
    "SpanRecord",
    "TelemetrySession",
    "TraceFormatError",
    "TraceSummary",
    "activated",
    "active_session",
    "chrome_trace_payload",
    "count",
    "current_span_id",
    "enabled",
    "gauge",
    "install",
    "merge_exported",
    "observe",
    "span",
    "span_aggregates",
    "summarize_trace",
    "telemetry_section",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]
