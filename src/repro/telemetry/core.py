"""Hierarchical spans and metrics: the runtime half of the telemetry layer.

The engine pools, dedupes, caches and portfolio-schedules obligations
across processes; this module is how a run *explains where the time went*.
It is dependency-free (standard library only) and built around one hard
constraint: **telemetry off must be indistinguishable from telemetry
absent**.  Every instrumentation point in the hot path calls a
module-level helper (:func:`span`, :func:`count`, :func:`observe`,
:func:`gauge`) whose disabled path is a single module-global read and a
``None`` check — no allocation, no string formatting, no clock read
(``benchmarks/bench_telemetry.py`` pins the cost).

Concepts
--------

``TelemetrySession``
    The in-memory collector.  One session is *installed* process-wide
    (:func:`install` / :func:`activated`); every span and metric lands in
    it.  Worker processes build their own short-lived sessions and ship
    the exported payload home (see :meth:`TelemetrySession.export` /
    :meth:`TelemetrySession.merge`), where the records are re-parented
    under the caller's current span — so a ``--jobs 8`` discharge wave
    still renders as one tree.

``span(name, **attributes)``
    A context manager timing one pipeline stage on the session's
    epoch-anchored monotonic clock (``time.time()`` anchor at session
    creation + ``perf_counter()`` deltas, so spans from different
    processes on the same machine share a timeline).  Spans nest: the
    enclosing open span becomes the parent.  Closure is exception-safe —
    a raising body still records the span (with an ``error`` attribute)
    and the exception propagates.

counters / gauges / histograms
    Plain named aggregates (:func:`count`, :func:`gauge`,
    :func:`observe`).  Histograms keep count/sum/min/max — enough for
    rates and latency summaries without storing samples.

Sinks (:mod:`repro.telemetry.sinks`) consume a *finished* session: the
envelope section for ``--json`` reports, a JSONL event log, and a Chrome
``trace_event`` file for Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass
class SpanRecord:
    """One finished span: plain, JSON-safe data ready for any sink."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float  # epoch-anchored seconds (see TelemetrySession._now)
    end: float
    pid: int
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "pid": self.pid,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            span_id=int(payload["span_id"]),
            parent_id=(
                int(payload["parent_id"]) if payload.get("parent_id") is not None else None
            ),
            start=float(payload["start"]),
            end=float(payload["end"]),
            pid=int(payload.get("pid", 0)),
            attributes=dict(payload.get("attributes", {})),
        )


class Span:
    """An in-flight span; use as a context manager.

    The span id and parent are assigned on ``__enter__`` (the parent is
    whatever span is open on the session at that moment), so constructing
    a ``Span`` costs nothing until it is entered.  ``__exit__`` always
    records the span — an exception in the body marks the record with an
    ``error`` attribute and then propagates.
    """

    __slots__ = ("_session", "name", "attributes", "span_id", "parent_id", "_start")

    def __init__(self, session: "TelemetrySession", name: str, attributes: Dict[str, object]):
        self._session = session
        self.name = name
        self.attributes = attributes
        self.span_id = 0
        self.parent_id: Optional[int] = None
        self._start = 0.0

    def set_attribute(self, name: str, value: object) -> None:
        self.attributes[name] = value

    def __enter__(self) -> "Span":
        session = self._session
        self.span_id = session._allocate_id()
        self.parent_id = session.current_span_id()
        session._stack.append(self.span_id)
        self._start = session._now()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        session = self._session
        end = session._now()
        # Exception-safe closure: pop our own id even if an inner span
        # leaked (defensive; inner spans close first under normal nesting).
        stack = session._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        elif self.span_id in stack:  # pragma: no cover - defensive
            stack.remove(self.span_id)
        if exc is not None:
            self.attributes["error"] = f"{type(exc).__name__}: {exc}"
        session.records.append(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self._start,
                end=end,
                pid=session.pid,
                attributes=self.attributes,
            )
        )
        return False  # never swallow the exception


class _NoOpSpan:
    """The shared disabled-path span: enter/exit/set_attribute do nothing."""

    __slots__ = ()

    def set_attribute(self, name: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: The singleton every disabled :func:`span` call returns (tests pin the
#: identity: disabled spans must not allocate).
NOOP_SPAN = _NoOpSpan()


class Histogram:
    """Count/sum/min/max summary of an observed value stream."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.total / self.count if self.count else 0.0,
        }

    def merge(self, payload: Dict[str, float]) -> None:
        merged = int(payload.get("count", 0))
        if merged <= 0:
            return
        self.count += merged
        self.total += float(payload.get("sum", 0.0))
        self.min = min(self.min, float(payload.get("min", self.min)))
        self.max = max(self.max, float(payload.get("max", self.max)))


class TelemetrySession:
    """The in-memory collector for spans, counters, gauges and histograms.

    Span times use an *epoch-anchored monotonic clock*: ``time.time()`` is
    read once at construction and every later timestamp is that anchor
    plus a ``perf_counter()`` delta — monotonic precision on a wall-clock
    scale, so sessions created in worker processes on the same machine
    produce directly comparable timelines.
    """

    def __init__(self) -> None:
        self._epoch0 = time.time()
        self._mono0 = time.perf_counter()
        self.pid = os.getpid()
        self.records: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Metric update count (span closes + counter/gauge/histogram
        #: events) — the overhead benchmark uses it to estimate the
        #: disabled-path cost of a run without re-instrumenting.
        self.metric_events = 0
        self._stack: List[int] = []
        self._next_id = 1

    # -- clock / ids -------------------------------------------------------------

    def _now(self) -> float:
        return self._epoch0 + (time.perf_counter() - self._mono0)

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def current_span_id(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, attributes: Optional[Dict[str, object]] = None) -> Span:
        self.metric_events += 1
        return Span(self, name, attributes if attributes is not None else {})

    def count(self, name: str, value: float = 1.0) -> None:
        self.metric_events += 1
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.metric_events += 1
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        self.metric_events += 1
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(float(value))

    # -- cross-process transport -------------------------------------------------

    def export(self) -> Dict[str, object]:
        """The session as one picklable/JSON-safe payload (worker -> parent)."""
        return {
            "spans": [record.as_dict() for record in self.records],
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.as_dict() for name, histogram in self.histograms.items()
            },
        }

    def merge(
        self,
        payload: Dict[str, object],
        parent_id: Optional[int] = None,
    ) -> None:
        """Merge an exported payload, re-parenting its span roots.

        Span ids are remapped into this session's id space (worker ids
        would collide across workers); spans whose exported parent is not
        in the payload — the worker's roots — are re-parented under
        ``parent_id`` (default: this session's current open span).  Times
        are kept as-is: both sessions anchor to the same machine epoch.
        """
        if parent_id is None:
            parent_id = self.current_span_id()
        spans = [SpanRecord.from_dict(item) for item in payload.get("spans", [])]
        remap = {record.span_id: self._allocate_id() for record in spans}
        for record in spans:
            self.records.append(
                SpanRecord(
                    name=record.name,
                    span_id=remap[record.span_id],
                    parent_id=(
                        remap[record.parent_id]
                        if record.parent_id in remap
                        else parent_id
                    ),
                    start=record.start,
                    end=record.end,
                    pid=record.pid,
                    attributes=record.attributes,
                )
            )
        for name, value in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)
        for name, value in payload.get("gauges", {}).items():
            self.gauges[name] = float(value)
        for name, summary in payload.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge(summary)

    # -- inspection --------------------------------------------------------------

    def span_children(self) -> Dict[Optional[int], List[SpanRecord]]:
        """Finished spans grouped by parent id (the span forest)."""
        children: Dict[Optional[int], List[SpanRecord]] = {}
        for record in self.records:
            children.setdefault(record.parent_id, []).append(record)
        return children

    def roots(self) -> List[SpanRecord]:
        known = {record.span_id for record in self.records}
        return [
            record
            for record in self.records
            if record.parent_id is None or record.parent_id not in known
        ]


# ---------------------------------------------------------------------------
# The module-level API the instrumentation points call
# ---------------------------------------------------------------------------

_ACTIVE: Optional[TelemetrySession] = None


def enabled() -> bool:
    """Whether a telemetry session is installed in this process."""
    return _ACTIVE is not None


def active_session() -> Optional[TelemetrySession]:
    return _ACTIVE


def install(session: TelemetrySession) -> TelemetrySession:
    """Install ``session`` as the process-wide collector."""
    global _ACTIVE
    _ACTIVE = session
    return session


def uninstall() -> Optional[TelemetrySession]:
    """Remove and return the installed session (``None`` if none)."""
    global _ACTIVE
    session, _ACTIVE = _ACTIVE, None
    return session


@contextmanager
def activated(session: TelemetrySession) -> Iterator[TelemetrySession]:
    """Install ``session`` for the duration of the block (restores the old)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous


def span(name: str, /, **attributes: object):
    """A span context manager on the active session, or the shared no-op.

    The disabled path is the hot-path contract: one global read, one
    ``None`` check, return the singleton — ``with telemetry.span(...)``
    in the tightest engine loops must stay free when tracing is off.
    The span name is positional-only so ``name=...`` stays usable as an
    ordinary span attribute.
    """
    session = _ACTIVE
    if session is None:
        return NOOP_SPAN
    return session.span(name, attributes)


def count(name: str, value: float = 1.0) -> None:
    """Add ``value`` to a named counter (no-op when disabled)."""
    session = _ACTIVE
    if session is not None:
        session.count(name, value)


def gauge(name: str, value: float) -> None:
    """Set a named gauge to ``value`` (no-op when disabled)."""
    session = _ACTIVE
    if session is not None:
        session.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into a named histogram (no-op when disabled)."""
    session = _ACTIVE
    if session is not None:
        session.observe(name, value)


def current_span_id() -> Optional[int]:
    session = _ACTIVE
    return session.current_span_id() if session is not None else None


def merge_exported(payload: Dict[str, object], parent_id: Optional[int] = None) -> None:
    """Merge a worker's exported payload into the active session (if any)."""
    session = _ACTIVE
    if session is not None:
        session.merge(payload, parent_id=parent_id)
