"""Offline trace analysis: ``repro trace summarize FILE``.

A saved trace (Chrome ``trace_event`` or the JSONL event log, both
written by :mod:`repro.telemetry.sinks`) is self-contained: spans carry
their ids/parents in ``args`` and the counter/histogram tables ride in
``otherData`` (Chrome) or as trailing events (JSONL).  This module loads
either format back into plain events and renders the operator's
questions as fixed-width tables:

* **time by stage** — wall-clock total/count/max per span name;
* **slowest spans** — the top-K individual spans with their identifying
  attributes (program, candidate, strategy, obligation index);
* **cache behaviour** — hit/miss counters by tier and the hit rate;
* **strategy outcomes** — portfolio wins per obligation kind, matching
  the engine's win table.

Everything is recomputed from the file — no live session needed — so a
trace captured in CI can be summarized on a laptop.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: Span attributes worth showing next to a slow span, in display order.
_DETAIL_ATTRIBUTES = (
    "program",
    "study",
    "candidate",
    "case_study",
    "strategy",
    "name",
    "kind",
    "index",
    "status",
    "obligations",
    "pending",
    "error",
)

_WIN_COUNTER_PREFIX = "portfolio.wins."
_CACHE_HIT_PREFIX = "engine.cache.hits."


@dataclass
class TraceEvent:
    """One span loaded back from a saved trace (seconds, not µs)."""

    name: str
    start: float
    duration: float
    pid: int
    span_id: Optional[int]
    parent_id: Optional[int]
    attributes: Dict[str, object] = field(default_factory=dict)


@dataclass
class TraceSummary:
    """Everything ``trace summarize`` reports about one saved trace."""

    path: str
    events: List[TraceEvent]
    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, Dict[str, float]]
    top: int = 10

    # -- derived tables ----------------------------------------------------------

    def stages(self) -> List[Tuple[str, int, float, float]]:
        """``(name, count, total_seconds, max_seconds)`` sorted by total desc."""
        table: Dict[str, List[float]] = {}
        for event in self.events:
            entry = table.setdefault(event.name, [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += event.duration
            entry[2] = max(entry[2], event.duration)
        return sorted(
            ((name, int(c), t, m) for name, (c, t, m) in table.items()),
            key=lambda row: -row[2],
        )

    def slowest(self) -> List[TraceEvent]:
        return sorted(self.events, key=lambda event: -event.duration)[: self.top]

    def cache(self) -> Dict[str, float]:
        """Cache hit/miss counters by tier plus the derived hit rate."""
        tiers = {
            key[len(_CACHE_HIT_PREFIX):]: value
            for key, value in self.counters.items()
            if key.startswith(_CACHE_HIT_PREFIX)
        }
        hits = sum(tiers.values())
        misses = self.counters.get("engine.cache.misses", 0.0)
        total = hits + misses
        table: Dict[str, float] = {f"hits.{tier}": value for tier, value in tiers.items()}
        table["hits"] = hits
        table["misses"] = misses
        table["hit_rate"] = hits / total if total else 0.0
        table["dedup_hits"] = self.counters.get("engine.dedup.hits", 0.0)
        return table

    def strategy_wins(self) -> Dict[str, Dict[str, int]]:
        """``{kind: {strategy: wins}}`` recovered from the win counters."""
        wins: Dict[str, Dict[str, int]] = {}
        for key, value in self.counters.items():
            if not key.startswith(_WIN_COUNTER_PREFIX):
                continue
            kind, _, strategy = key[len(_WIN_COUNTER_PREFIX):].partition(".")
            if strategy:
                wins.setdefault(kind, {})[strategy] = int(value)
        return wins

    def as_dict(self) -> Dict[str, object]:
        return {
            "trace": self.path,
            "events": len(self.events),
            "stages": [
                {
                    "name": name,
                    "count": count,
                    "total_seconds": total,
                    "max_seconds": peak,
                }
                for name, count, total, peak in self.stages()
            ],
            "slowest": [
                {
                    "name": event.name,
                    "seconds": event.duration,
                    "attributes": _detail_attributes(event),
                }
                for event in self.slowest()
            ],
            "cache": self.cache(),
            "strategy_wins": self.strategy_wins(),
            "counters": dict(self.counters),
            "histograms": {name: dict(h) for name, h in self.histograms.items()},
        }

    # -- rendering ---------------------------------------------------------------

    def render(self) -> str:
        lines = [f"trace {self.path}: {len(self.events)} spans"]
        stages = self.stages()
        if stages:
            width = max(len(name) for name, *_ in stages)
            lines.append("")
            lines.append(f"{'stage':<{width}}  {'count':>6}  {'total':>9}  {'max':>9}")
            lines.append("-" * (width + 30))
            for name, count, total, peak in stages:
                lines.append(
                    f"{name:<{width}}  {count:>6}  {total:>8.3f}s  {peak:>8.3f}s"
                )
        slowest = self.slowest()
        if slowest:
            lines.append("")
            lines.append(f"slowest {len(slowest)} spans:")
            for event in slowest:
                details = ", ".join(
                    f"{key}={value}" for key, value in _detail_attributes(event).items()
                )
                suffix = f"  ({details})" if details else ""
                lines.append(f"  {event.duration:>8.3f}s  {event.name}{suffix}")
        cache = self.cache()
        if cache["hits"] or cache["misses"]:
            tiers = ", ".join(
                f"{key[len('hits.'):]}={value:.0f}"
                for key, value in sorted(cache.items())
                if key.startswith("hits.")
            )
            lines.append("")
            lines.append(
                f"obligation cache: {cache['hits']:.0f} hits"
                + (f" ({tiers})" if tiers else "")
                + f" / {cache['misses']:.0f} misses "
                f"(hit rate {cache['hit_rate']:.0%}, "
                f"dedup {cache['dedup_hits']:.0f})"
            )
        wins = self.strategy_wins()
        if wins:
            parts = []
            for kind, table in sorted(wins.items()):
                for name, value in sorted(table.items(), key=lambda kv: -kv[1]):
                    parts.append(f"{name}({kind[:3]})={value}")
            lines.append("portfolio wins: " + ", ".join(parts))
        return "\n".join(lines)


def _detail_attributes(event: TraceEvent) -> Dict[str, object]:
    return {
        key: event.attributes[key]
        for key in _DETAIL_ATTRIBUTES
        if key in event.attributes
    }


# ---------------------------------------------------------------------------
# Loading
# ---------------------------------------------------------------------------


class TraceFormatError(ValueError):
    """The file is not a trace this tool understands."""


def _load_chrome(payload: Dict[str, object], path: str, top: int) -> TraceSummary:
    events: List[TraceEvent] = []
    for raw in payload.get("traceEvents", []):
        if raw.get("ph") != "X":
            continue  # metadata events carry no timing
        args = dict(raw.get("args", {}))
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_span_id", None)
        events.append(
            TraceEvent(
                name=str(raw.get("name", "")),
                start=float(raw.get("ts", 0.0)) / 1e6,
                duration=float(raw.get("dur", 0.0)) / 1e6,
                pid=int(raw.get("pid", 0)),
                span_id=int(span_id) if span_id is not None else None,
                parent_id=int(parent_id) if parent_id is not None else None,
                attributes=args,
            )
        )
    other = payload.get("otherData", {})
    return TraceSummary(
        path=path,
        events=events,
        counters={k: float(v) for k, v in other.get("counters", {}).items()},
        gauges={k: float(v) for k, v in other.get("gauges", {}).items()},
        histograms=dict(other.get("histograms", {})),
        top=top,
    )


def _load_jsonl(lines: List[str], path: str, top: int) -> TraceSummary:
    events: List[TraceEvent] = []
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    base: Optional[float] = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        item = json.loads(line)
        kind = item.get("type")
        if kind == "span":
            start, end = float(item["start"]), float(item["end"])
            if base is None or start < base:
                base = start
            events.append(
                TraceEvent(
                    name=str(item["name"]),
                    start=start,
                    duration=end - start,
                    pid=int(item.get("pid", 0)),
                    span_id=item.get("span_id"),
                    parent_id=item.get("parent_id"),
                    attributes=dict(item.get("attributes", {})),
                )
            )
        elif kind == "counter":
            counters[item["name"]] = float(item["value"])
        elif kind == "gauge":
            gauges[item["name"]] = float(item["value"])
        elif kind == "histogram":
            histograms[item["name"]] = {
                key: float(value)
                for key, value in item.items()
                if key not in ("type", "name")
            }
    if base:
        for event in events:
            event.start -= base
    return TraceSummary(
        path=path,
        events=events,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        top=top,
    )


def summarize_trace(path: str, top: int = 10) -> TraceSummary:
    """Load a saved trace (Chrome JSON or JSONL) and build its summary."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if not text.strip():
        raise TraceFormatError(f"{path} is empty")
    # A Chrome trace is one JSON object; the JSONL log is one object per
    # line (so the whole-file parse fails on it as soon as it has two).
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None
    if isinstance(payload, dict) and "traceEvents" in payload:
        return _load_chrome(payload, path, top)
    if isinstance(payload, dict) and "type" not in payload:
        raise TraceFormatError(f"{path} carries no traceEvents section")
    try:
        return _load_jsonl(text.splitlines(), path, top)
    except (ValueError, KeyError, TypeError) as error:
        raise TraceFormatError(
            f"{path} is neither a Chrome trace nor a JSONL event log: {error}"
        )
