"""The fuzzing pipeline driver: lint → verify → explore, differentially.

One :func:`run_fuzz` invocation drives a whole generated corpus through the
same funnel every hand-written case study passes — and cross-examines each
layer along the way:

* **lint** — every program must pass ``casestudy lint`` (build, pretty /
  parse round-trip, declared variables, sites apply, obligations collect);
* **verify** — the corpus is batch-verified once per *leg* (a named
  engine/backend configuration) and each program's verify signature —
  canonical obligation fingerprints, verdict statuses, counterexample
  models and the overall verdict — must be identical across legs:

  - ``backend=tree`` vs ``backend=compiled`` vs ``backend=vector``
    (the vector leg runs only when numpy is importable),
  - serial vs ``--jobs N`` discharge (the process-pool portfolio path),
  - cold vs warm persistent cache (the warm leg replays the cold leg's
    verdicts from disk);

* **explore** — each program's relaxation space is searched twice
  (exhaustive, and beam at effectively infinite width) and the full
  candidate signature — fingerprint, parent, verdict, obligations digest,
  score — plus the Pareto frontier must agree; with ``jobs > 1`` a third
  run checks the whole explore envelope is ``--jobs``-invariant.

Any mismatch becomes a :class:`Divergence`; the driver then shrinks the
offending program to a minimal statement sequence that still diverges
(:mod:`repro.fuzz.shrink`) and, when a divergence directory is configured,
writes a committed-style reproducer fixture (source + divergence record).
"""

from __future__ import annotations

import hashlib
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..casestudies.spec import lint_case_study
from ..engine import ObligationEngine, VerdictStore, program_items, verify_batch
from ..explore import explore
from ..solver.backend import numpy_available, use_backend
from .generator import GeneratedProgram, GeneratedStudy, derive_spec, synthesize_corpus

#: The backend every other verify leg is compared against.
BASE_BACKEND = "compiled"

#: Beam width that turns the beam scheduler into an exhaustive walk.
FULL_BEAM_WIDTH = 1_000_000


def available_backends() -> Tuple[str, ...]:
    """The evaluation backends this process can differentially test."""
    backends = ["tree", "compiled"]
    if numpy_available():
        backends.append("vector")
    return tuple(backends)


def obligations_digest(fingerprints: Sequence[str], statuses: Sequence[str]) -> str:
    """16-hex-char hash over (fingerprint, status) pairs in pooled order —
    the same parity currency as the explorer's per-candidate digest."""
    digest = hashlib.sha256()
    for key, status in zip(fingerprints, statuses):
        digest.update(f"{key}:{status}\n".encode("ascii"))
    return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Signatures: the parity currency
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerifySignature:
    """Everything one verify leg decided about one program."""

    verified: bool
    error: str
    fingerprints: Tuple[str, ...]
    statuses: Tuple[str, ...]
    #: One normalized counterexample model per obligation, pooled order
    #: (original layer then relaxed): a sorted ``(symbol, value)`` tuple,
    #: or ``None`` for obligations without a model.
    models: Tuple[Optional[Tuple[Tuple[str, str], ...]], ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "verified": self.verified,
            "error": self.error,
            "fingerprints": list(self.fingerprints),
            "statuses": list(self.statuses),
            "models": [
                None if model is None else [list(pair) for pair in model]
                for model in self.models
            ],
        }


def _normalize_model(model) -> Optional[Tuple[Tuple[str, str], ...]]:
    if model is None:
        return None
    return tuple(sorted((str(key), str(value)) for key, value in model.items()))


def signature_of(result) -> VerifySignature:
    """The :class:`VerifySignature` of one ``BatchProgramResult``."""
    models: List[Optional[Tuple[Tuple[str, str], ...]]] = []
    if result.report is not None:
        for layer in (result.report.original, result.report.relaxed):
            for obligation_result in layer.results:
                models.append(_normalize_model(obligation_result.counterexample))
    return VerifySignature(
        verified=result.verified,
        error=result.error,
        fingerprints=tuple(result.obligation_fingerprints),
        statuses=tuple(result.obligation_statuses),
        models=tuple(models),
    )


def explore_signature(payload: Dict[str, object]) -> Dict[str, object]:
    """The deterministic core of an explore report dict.

    Timings and engine/solver/cache counters are machine- and
    configuration-dependent; everything else — the candidate set in order,
    each candidate's obligations digest, verdict and score, and the Pareto
    frontier — must be identical across search strategies and job counts.
    """
    results = payload["results"]
    return {
        "candidates": [
            (
                row["fingerprint"],
                row["parent"],
                row["verified"],
                row["obligations_digest"],
                _score_key(row.get("score")),
            )
            for row in results
        ],
        "frontier": sorted(
            (row["fingerprint"], row["obligations_digest"])
            for row in results
            if row["pareto"]
        ),
        "verified_candidates": payload["verified_candidates"],
    }


def _score_key(score) -> Optional[Tuple[Tuple[str, object], ...]]:
    if score is None:
        return None
    return tuple(sorted(score.items()))


#: Report sections that legitimately differ across machines / job counts /
#: strategies; everything else participates in the jobs-parity equality.
_VOLATILE_EXPLORE_KEYS = ("timings", "engine", "solver", "cache", "jobs")


def normalized_explore_payload(payload: Dict[str, object]) -> Dict[str, object]:
    """An explore report dict with every machine-dependent section removed
    — the equality currency of the ``--jobs`` invariance check."""
    return {
        key: value
        for key, value in payload.items()
        if key not in _VOLATILE_EXPLORE_KEYS
    }


# ---------------------------------------------------------------------------
# Divergences
# ---------------------------------------------------------------------------


@dataclass
class Divergence:
    """One parity violation between two funnel legs."""

    program: str
    stage: str  # "verify" | "explore"
    left: str
    right: str
    detail: str
    left_value: object = None
    right_value: object = None
    shrunk_source: str = ""
    fixture_dir: str = ""

    def as_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "program": self.program,
            "stage": self.stage,
            "left": self.left,
            "right": self.right,
            "detail": self.detail,
            "left_value": self.left_value,
            "right_value": self.right_value,
        }
        if self.shrunk_source:
            payload["shrunk_source"] = self.shrunk_source
        if self.fixture_dir:
            payload["fixture_dir"] = self.fixture_dir
        return payload


def compare_signatures(
    name: str,
    left_label: str,
    left: VerifySignature,
    right_label: str,
    right: VerifySignature,
) -> Optional[Divergence]:
    """The first mismatch between two verify signatures, or ``None``."""
    checks = (
        ("verdict", left.verified, right.verified),
        ("error", left.error, right.error),
        ("obligation fingerprints", left.fingerprints, right.fingerprints),
        ("obligation statuses", left.statuses, right.statuses),
        ("counterexample models", left.models, right.models),
    )
    for what, left_value, right_value in checks:
        if left_value != right_value:
            return Divergence(
                program=name,
                stage="verify",
                left=left_label,
                right=right_label,
                detail=f"{what} differ between {left_label} and {right_label}",
                left_value=_jsonable(left_value),
                right_value=_jsonable(right_value),
            )
    return None


def _jsonable(value):
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return value


# ---------------------------------------------------------------------------
# The report
# ---------------------------------------------------------------------------


@dataclass
class FuzzProgramRecord:
    """Per-program funnel outcome (baseline leg)."""

    name: str
    family: str
    expect_verified: bool
    lint_ok: bool = True
    lint_errors: List[str] = field(default_factory=list)
    verified: bool = False
    obligations: int = 0
    obligations_digest: str = ""
    explore_candidates: int = 0
    explore_survivors: int = 0
    divergences: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "family": self.family,
            "expect_verified": self.expect_verified,
            "lint_ok": self.lint_ok,
            "lint_errors": list(self.lint_errors),
            "verified": self.verified,
            "obligations": self.obligations,
            "obligations_digest": self.obligations_digest,
            "explore_candidates": self.explore_candidates,
            "explore_survivors": self.explore_survivors,
            "divergences": self.divergences,
        }


@dataclass
class FuzzReport:
    """The structured outcome of one ``repro fuzz`` invocation."""

    seed: int
    count: int
    depth: int
    jobs: int
    samples: int
    backends: Tuple[str, ...] = ()
    verify_legs: List[str] = field(default_factory=list)
    programs: List[FuzzProgramRecord] = field(default_factory=list)
    divergences: List[Divergence] = field(default_factory=list)
    #: Verdict mismatches against the family's expectation (a verified
    #: broken program, or an unverified lockstep one) — generator bugs,
    #: surfaced separately from cross-leg divergences.
    expectation_failures: List[str] = field(default_factory=list)
    #: Populated by the driver, consumed by the corpus writer; never
    #: serialized.
    generated: List[GeneratedProgram] = field(default_factory=list)
    baseline: Dict[str, VerifySignature] = field(default_factory=dict)

    @property
    def lint_failures(self) -> int:
        return sum(1 for record in self.programs if not record.lint_ok)

    @property
    def ok(self) -> bool:
        return (
            not self.divergences
            and not self.expectation_failures
            and self.lint_failures == 0
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "count": self.count,
            "depth": self.depth,
            "jobs": self.jobs,
            "samples": self.samples,
            "backends": list(self.backends),
            "verify_legs": list(self.verify_legs),
            "lint_failures": self.lint_failures,
            "divergences": [divergence.as_dict() for divergence in self.divergences],
            "expectation_failures": list(self.expectation_failures),
            "ok": self.ok,
            "programs": [record.as_dict() for record in self.programs],
        }

    def summary(self) -> str:
        lines = [
            f"fuzz: seed {self.seed}, {self.count} programs, depth {self.depth}, "
            f"verify legs [{', '.join(self.verify_legs)}]"
        ]
        verified = sum(1 for record in self.programs if record.verified)
        lines.append(
            f"  lint: {self.count - self.lint_failures}/{self.count} clean; "
            f"verify: {verified}/{self.count} proved; "
            f"explore: {sum(r.explore_candidates for r in self.programs)} candidates, "
            f"{sum(r.explore_survivors for r in self.programs)} survivors"
        )
        for message in self.expectation_failures:
            lines.append(f"  EXPECTATION: {message}")
        for divergence in self.divergences:
            lines.append(
                f"  DIVERGENCE [{divergence.stage}] {divergence.program}: "
                f"{divergence.detail}"
            )
        lines.append("  " + ("NO DIVERGENCES" if self.ok else "DIVERGED"))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Funnel legs
# ---------------------------------------------------------------------------


def verify_leg(
    generated: Sequence[GeneratedProgram],
    backend: str = BASE_BACKEND,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> Dict[str, VerifySignature]:
    """Batch-verify the whole corpus under one engine configuration."""
    entries = []
    for item in generated:
        program = GeneratedStudy.of(item).build_program()
        entries.append((item.name, program, derive_spec(program)))
    with use_backend(backend):
        engine = ObligationEngine.for_batch(jobs=jobs, cache_dir=cache_dir)
        report = verify_batch(
            program_items(entries, study="fuzz"),
            engine=engine,
            verdict_store=VerdictStore(),
        )
    return {result.name: signature_of(result) for result in report.programs}


def _leg_for_label(
    label: str, generated: Sequence[GeneratedProgram]
) -> Dict[str, VerifySignature]:
    """Re-run one named verify leg (used by divergence shrinking).

    Cache legs re-check against a *fresh* temporary directory: a cold/warm
    divergence is chased against reproducible state, not the original
    cache contents.
    """
    if label.startswith("backend="):
        spec = label[len("backend="):]
        backend, _, jobs_part = spec.partition(",jobs=")
        return verify_leg(generated, backend=backend, jobs=int(jobs_part or 1))
    if label == "cache=cold":
        return verify_leg(generated)
    if label == "cache=warm":
        with tempfile.TemporaryDirectory(prefix="repro-fuzz-reshrink-") as tmp:
            verify_leg(generated, cache_dir=tmp)
            return verify_leg(generated, cache_dir=tmp)
    raise ValueError(f"unknown verify leg {label!r}")


def _explore_once(
    item: GeneratedProgram,
    depth: int,
    samples: int,
    seed: int,
    jobs: int = 1,
    strategy: str = "exhaustive",
    beam_width: int = 8,
):
    return explore(
        GeneratedStudy.of(item),
        depth=depth,
        samples=samples,
        seed=seed,
        jobs=jobs,
        strategy=strategy,
        beam_width=beam_width,
        max_candidates=24,
    )


def _probe(item: GeneratedProgram, source: str) -> GeneratedProgram:
    """A copy of ``item`` with a candidate shrunk source substituted."""
    return GeneratedProgram(
        name=item.name,
        seed=item.seed,
        index=item.index,
        family=item.family,
        program=GeneratedStudy(item.name, source).build_program(),
        source=source,
        planted=(),
        expect_verified=item.expect_verified,
    )


def _shrink_and_record(
    divergence: Divergence,
    item: GeneratedProgram,
    still_diverges: Callable[[str], bool],
    divergence_dir: Optional[str],
) -> Divergence:
    """Shrink the diverging program and persist a reproducer fixture."""
    from .shrink import shrink_source, write_reproducer

    try:
        divergence.shrunk_source = shrink_source(item.source, still_diverges)
    except Exception:
        # Shrinking is best-effort forensics: a shrinker crash must not
        # mask the divergence it was trying to minimize.
        divergence.shrunk_source = item.source
    if divergence_dir:
        divergence.fixture_dir = write_reproducer(divergence_dir, divergence)
    return divergence


def run_fuzz(
    seed: int = 0,
    count: int = 20,
    depth: int = 1,
    jobs: int = 1,
    samples: int = 4,
    backends: Optional[Sequence[str]] = None,
    divergence_dir: Optional[str] = None,
) -> FuzzReport:
    """Generate a corpus and drive it through the differential funnel."""
    resolved_backends = tuple(backends) if backends else available_backends()
    report = FuzzReport(
        seed=seed,
        count=count,
        depth=depth,
        jobs=jobs,
        samples=samples,
        backends=resolved_backends,
    )
    with telemetry.span("fuzz", seed=seed, count=count, depth=depth):
        generated = synthesize_corpus(seed, count)
        report.generated = generated
        records = {
            item.name: FuzzProgramRecord(
                name=item.name,
                family=item.family,
                expect_verified=item.expect_verified,
            )
            for item in generated
        }
        report.programs = [records[item.name] for item in generated]

        # Stage 1: lint — the same well-formedness gate case studies pass.
        with telemetry.span("fuzz.lint", programs=count):
            for item in generated:
                lint = lint_case_study(GeneratedStudy.of(item))
                record = records[item.name]
                record.lint_ok = lint.ok
                record.lint_errors = [
                    f"{finding.check}: {finding.message}"
                    for finding in lint.findings
                    if finding.level == "error"
                ]

        # Stage 2: verify legs + cross-leg parity.
        legs: Dict[str, Dict[str, VerifySignature]] = {}
        with telemetry.span("fuzz.verify", legs=len(resolved_backends)):
            for backend in resolved_backends:
                legs[f"backend={backend}"] = verify_leg(generated, backend=backend)
            if jobs > 1:
                legs[f"backend={BASE_BACKEND},jobs={jobs}"] = verify_leg(
                    generated, jobs=jobs
                )
            with tempfile.TemporaryDirectory(prefix="repro-fuzz-cache-") as tmp:
                legs["cache=cold"] = verify_leg(generated, cache_dir=tmp)
                legs["cache=warm"] = verify_leg(generated, cache_dir=tmp)
        report.verify_legs = list(legs)

        baseline_label = f"backend={BASE_BACKEND}"
        baseline = legs[baseline_label]
        report.baseline = baseline
        for item in generated:
            record = records[item.name]
            signature = baseline[item.name]
            record.verified = signature.verified
            record.obligations = len(signature.statuses)
            record.obligations_digest = obligations_digest(
                signature.fingerprints, signature.statuses
            )
            if signature.verified != item.expect_verified and not signature.error:
                report.expectation_failures.append(
                    f"{item.name} ({item.family}): expected "
                    f"verified={item.expect_verified}, got {signature.verified}"
                )

        for label, leg in legs.items():
            if label == baseline_label:
                continue
            for item in generated:
                divergence = compare_signatures(
                    item.name,
                    baseline_label,
                    baseline[item.name],
                    label,
                    leg[item.name],
                )
                if divergence is None:
                    continue
                records[item.name].divergences += 1

                def still_diverges(source, _item=item, _label=label):
                    probe = _probe(_item, source)
                    left = verify_leg([probe])
                    right = _leg_for_label(_label, [probe])
                    return (
                        compare_signatures(
                            _item.name,
                            baseline_label,
                            left[_item.name],
                            _label,
                            right[_item.name],
                        )
                        is not None
                    )

                report.divergences.append(
                    _shrink_and_record(divergence, item, still_diverges, divergence_dir)
                )

        # Stage 3: explore legs + strategy/jobs parity.
        with telemetry.span("fuzz.explore", programs=count, depth=depth):
            for index, item in enumerate(generated):
                record = records[item.name]
                explore_seed = seed + index
                exhaustive = _explore_once(item, depth, samples, explore_seed).as_dict()
                record.explore_candidates = exhaustive["candidates"]
                record.explore_survivors = exhaustive["verified_candidates"]

                beam = _explore_once(
                    item,
                    depth,
                    samples,
                    explore_seed,
                    strategy="beam",
                    beam_width=FULL_BEAM_WIDTH,
                ).as_dict()
                record.divergences += _explore_parity(
                    report, item, exhaustive, beam, divergence_dir,
                    depth, samples, explore_seed,
                )

                if jobs > 1:
                    parallel = _explore_once(
                        item, depth, samples, explore_seed, jobs=jobs
                    ).as_dict()
                    if normalized_explore_payload(parallel) != normalized_explore_payload(
                        exhaustive
                    ):
                        record.divergences += 1
                        report.divergences.append(
                            Divergence(
                                program=item.name,
                                stage="explore",
                                left="explore jobs=1",
                                right=f"explore jobs={jobs}",
                                detail="explore envelope differs across --jobs",
                                left_value=explore_signature(exhaustive),
                                right_value=explore_signature(parallel),
                            )
                        )
    return report


def _explore_parity(
    report: FuzzReport,
    item: GeneratedProgram,
    exhaustive: Dict[str, object],
    beam: Dict[str, object],
    divergence_dir: Optional[str],
    depth: int,
    samples: int,
    explore_seed: int,
) -> int:
    """Compare exhaustive vs full-width beam; record any divergence."""
    problems = []
    if beam["beam_pruned"]:
        problems.append(f"full-width beam pruned {beam['beam_pruned']} candidates")
    if explore_signature(exhaustive) != explore_signature(beam):
        problems.append("candidate signature / frontier differ")
    if not problems:
        return 0

    divergence = Divergence(
        program=item.name,
        stage="explore",
        left="strategy=exhaustive",
        right=f"strategy=beam,width={FULL_BEAM_WIDTH}",
        detail="; ".join(problems),
        left_value=explore_signature(exhaustive),
        right_value=explore_signature(beam),
    )

    def still_diverges(source, _item=item):
        probe = _probe(_item, source)
        left = _explore_once(probe, depth, samples, explore_seed).as_dict()
        right = _explore_once(
            probe,
            depth,
            samples,
            explore_seed,
            strategy="beam",
            beam_width=FULL_BEAM_WIDTH,
        ).as_dict()
        return bool(right["beam_pruned"]) or explore_signature(
            left
        ) != explore_signature(right)

    report.divergences.append(
        _shrink_and_record(divergence, item, still_diverges, divergence_dir)
    )
    return 1
