"""Seeded synthesis of well-formed relaxed programs with planted sites.

Every generated program is drawn from one of a few *families* — structural
templates with randomised variable names, constants, accumulator updates,
optional branches and optional second loops — chosen so that the program is

* **well-formed** (:func:`repro.lang.analysis.check_program` passes with
  strict declarations),
* **round-trippable** (``parse(pretty(p)) == p`` modulo ``Seq``
  association), and
* **plantable**: its loops carry the canonical ``c = c + 1`` increment
  (→ ``perforate-loop`` sites), its bound variable is read by a loop
  condition but never written (→ ``dynamic-knob``), and — in the envelope
  families — its relax predicate relates a single scalar target to a saved
  ``original_<target>`` copy (→ ``restrict-relax``), exactly the syntactic
  shapes :func:`repro.relaxations.sites.discover_sites` detects.

The acceptability proof of every non-broken program is arranged to go
through mechanically: loops are lockstep (the generated ``rel_invariant``
pins every scalar equal across executions, so the convergent while rule
applies) and the only relaxed statement sits *after* the loops, so the
trailing ``relate`` envelope follows directly from the relax predicate.
The ``broken-envelope`` family deliberately asserts an envelope one unit
tighter than its relax allows — its relaxed-layer obligations are INVALID
with a concrete counterexample model, giving the differential oracle
failing verdicts (and models) to compare across backends, not just passing
ones.

Seeding is hierarchical and stringly keyed (``random.Random`` hashes
string seeds deterministically across platforms and processes): program
``index`` under driver seed ``s`` is always drawn from
``Random(f"repro-fuzz:{s}:{index}")``, so any single program of a run can
be regenerated without generating its predecessors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..casestudies.base import CaseStudy
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import Program, Relate, Seq, Stmt
from ..lang.parser import parse_program
from ..lang.pretty import pretty_program
from ..semantics.choosers import Chooser, make_chooser
from ..semantics.state import State

#: The structural templates the synthesizer draws from.
FAMILIES = ("lockstep-envelope", "relax-free", "broken-envelope")

_COUNTERS = ("i", "j", "k")
_BOUNDS = ("n", "m", "limit")
_ACCUMULATORS = ("s", "acc", "total")
_TARGETS = ("x", "out", "result")

#: Every workload value is drawn from this range; generated assumes are
#: chosen to be satisfied by it (``1 <= v <= 4`` for every variable).
_WORKLOAD_RANGE = (1, 4)


@dataclass(frozen=True)
class PlantedSite:
    """One relaxation opportunity the synthesizer planted on purpose.

    ``kind`` is a :data:`repro.relaxations.sites.SITE_KINDS` member;
    ``name`` is the variable the site anchors on (the loop counter, the
    knob variable, or the relax target).  The generator's invariant —
    enforced by the hypothesis suite — is that site discovery finds at
    least one site of this kind over this name.
    """

    kind: str
    name: str


@dataclass
class GeneratedProgram:
    """One synthesized program plus everything needed to replay it."""

    name: str
    seed: int
    index: int
    family: str
    program: Program
    source: str
    planted: Tuple[PlantedSite, ...] = ()
    #: Whether the acceptability proof is expected to discharge fully
    #: (False for the deliberately-broken family).
    expect_verified: bool = True


class ProgramSynthesizer:
    """Deterministic program synthesis under one driver seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed

    def _rng(self, index: int) -> random.Random:
        return random.Random(f"repro-fuzz:{self.seed}:{index}")

    def generate(self, index: int) -> GeneratedProgram:
        """Synthesize program ``index`` of this seed's corpus."""
        rng = self._rng(index)
        family = rng.choices(FAMILIES, weights=(5, 3, 2))[0]
        name = f"fuzz-s{self.seed}-{index:04d}"
        program, planted = _build_family(name, family, rng)
        return GeneratedProgram(
            name=name,
            seed=self.seed,
            index=index,
            family=family,
            program=program,
            source=pretty_program(program),
            planted=tuple(planted),
            expect_verified=(family != "broken-envelope"),
        )

    def corpus(self, count: int) -> List[GeneratedProgram]:
        return [self.generate(index) for index in range(count)]


def synthesize_corpus(seed: int, count: int) -> List[GeneratedProgram]:
    """The ``count`` programs of driver seed ``seed``, in index order."""
    return ProgramSynthesizer(seed).corpus(count)


def _build_family(
    name: str, family: str, rng: random.Random
) -> Tuple[Program, List[PlantedSite]]:
    counter = rng.choice(_COUNTERS)
    bound = rng.choice(_BOUNDS)
    acc = rng.choice(_ACCUMULATORS)
    branch_var = "t"
    planted: List[PlantedSite] = [
        PlantedSite("perforate-loop", counter),
        PlantedSite("dynamic-knob", bound),
    ]

    variables: List[str] = [counter, bound, acc]
    body: List[Stmt] = [
        # The workload range satisfies these by construction; the upper
        # bound also keeps every simulation's step count small.
        b.assume(b.ge(bound, 1)),
        b.assume(b.le(bound, 4)),
        b.assign(acc, 0),
        b.assign(counter, 0),
    ]

    use_branch = rng.random() < 0.5
    if use_branch:
        variables.append(branch_var)
        body.append(b.assign(branch_var, 0))

    step = _step_expression(acc, counter, rng)
    loop_body: List[Stmt] = [b.assign(acc, b.add(acc, step))]
    if use_branch:
        # A convergent branch: its condition reads only lockstep-equal
        # variables, so the relational if rule applies without diverging.
        loop_body.append(
            b.if_(
                b.gt(acc, rng.randint(1, 6)),
                b.assign(branch_var, acc),
            )
        )
    loop_body.append(b.assign(counter, b.add(counter, 1)))

    # Variables the lockstep invariant pins equal across executions.  The
    # relax (if any) comes after every loop, so *all* scalars stay equal
    # inside them and the invariant is trivially inductive.
    second_loop = rng.random() < 0.35
    second_counter: Optional[str] = None
    if second_loop:
        second_counter = next(c for c in _COUNTERS if c != counter)
        variables.append(second_counter)
        planted.append(PlantedSite("perforate-loop", second_counter))

    relax_target: Optional[str] = None
    delta = 0
    if family in ("lockstep-envelope", "broken-envelope"):
        relax_target = rng.choice(_TARGETS)
        delta = rng.randint(1, 3)
        variables.extend([relax_target, f"original_{relax_target}"])

    lockstep = b.all_same(*variables)

    body.append(
        b.while_(
            b.lt(counter, bound),
            *loop_body,
            invariant=b.ge(counter, 0),
            rel_invariant=lockstep,
        )
    )
    if second_loop and second_counter is not None:
        body.append(b.assign(second_counter, 0))
        body.append(
            b.while_(
                b.lt(second_counter, bound),
                b.assign(acc, b.add(acc, 1)),
                b.assign(second_counter, b.add(second_counter, 1)),
                invariant=b.ge(second_counter, 0),
                rel_invariant=lockstep,
            )
        )
    if rng.random() < 0.5:
        # Assert over the *last* loop's counter: the unary proof context
        # after a loop is its invariant plus the negated condition, so
        # facts about earlier counters do not survive a later loop.
        final_counter = second_counter if second_loop else counter
        body.append(b.assert_(b.ge(final_counter, 0)))

    if relax_target is not None:
        saved = f"original_{relax_target}"
        body.append(b.assign(relax_target, _target_expression(acc, counter, rng)))
        body.append(b.assign(saved, relax_target))
        body.append(
            b.relax(
                relax_target,
                b.and_(
                    b.le(b.sub(saved, delta), relax_target),
                    b.le(relax_target, b.add(saved, delta)),
                ),
            )
        )
        planted.append(PlantedSite("restrict-relax", relax_target))
        # The broken family claims an envelope one unit tighter than the
        # relax grants: INVALID with a concrete counterexample model.
        claimed = delta if family == "lockstep-envelope" else delta - 1
        body.append(b.relate("envelope", b.within(relax_target, claimed)))
        body.append(b.relate("agreement", b.same(acc)))
    else:
        names = [acc] + ([branch_var] if use_branch else [])
        body.append(b.relate("sync", b.all_same(*names)))

    program = b.program(name, *body, variables=tuple(variables))
    return program, planted


def _step_expression(acc: str, counter: str, rng: random.Random):
    choice = rng.randint(0, 2)
    if choice == 0:
        return b.e(counter)
    if choice == 1:
        return b.n(rng.randint(1, 3))
    return b.add(counter, rng.randint(1, 2))


def _target_expression(acc: str, counter: str, rng: random.Random):
    choice = rng.randint(0, 2)
    if choice == 0:
        return b.e(acc)
    if choice == 1:
        return b.add(acc, rng.randint(0, 2))
    return b.add(acc, counter)


# ---------------------------------------------------------------------------
# Auto-derived acceptability specification
# ---------------------------------------------------------------------------


def _toplevel_relates(stmt: Stmt) -> List[Relate]:
    """``relate`` statements in straight-line position (not under a loop
    or branch) — the ones whose conditions describe the final state."""
    if isinstance(stmt, Seq):
        return _toplevel_relates(stmt.first) + _toplevel_relates(stmt.second)
    if isinstance(stmt, Relate):
        return [stmt]
    return []


def derive_spec(program: Program) -> AcceptabilitySpec:
    """Derive the acceptability spec of a generated program from its source.

    The derivation is a pure function of the program text, so the corpus
    replayer reconstructs byte-identical obligations from committed ``.rlx``
    sources alone: trivial unary pre/postconditions, the default
    noninterference relational precondition (both executions start equal),
    and a relational *postcondition* assembled from the straight-line
    ``relate`` statements — the acceptability properties the program itself
    declares must also hold of its final states.
    """
    relates = _toplevel_relates(program.body)
    rel_postcondition = (
        b.rand(*[relate.condition for relate in relates]) if relates else None
    )
    return AcceptabilitySpec(rel_postcondition=rel_postcondition)


# ---------------------------------------------------------------------------
# Case-study adapter
# ---------------------------------------------------------------------------


class GeneratedStudy(CaseStudy):
    """A synthesized program wearing the :class:`CaseStudy` interface.

    Instances are *not* registered: the registry, lint and explorer all
    accept case-study instances directly, so generated studies flow through
    ``casestudy lint`` and ``repro explore`` without polluting the global
    corpus.  Construction needs only ``(name, source)``, which is exactly
    what the committed corpus stores — replay builds the same study the
    generator did.
    """

    paper_section = "generated"

    def __init__(self, name: str, source: str):
        self.name = name
        self.source = source

    @classmethod
    def of(cls, generated: GeneratedProgram) -> "GeneratedStudy":
        return cls(generated.name, generated.source)

    def build_program(self) -> Program:
        return parse_program(self.source, name=self.name)

    def acceptability_spec(self, program: Program) -> AcceptabilitySpec:
        return derive_spec(program)

    def workloads(self, count: int, seed: int = 0) -> List[State]:
        """Seeded initial states over the program's declared scalars.

        Every variable is drawn from ``1..4`` — the range the generated
        ``assume`` bounds are written against — so no workload dies on an
        assumption and loop trip counts stay small.
        """
        program = self.build_program()
        lo, hi = _WORKLOAD_RANGE
        states = []
        for index in range(count):
            rng = random.Random(f"repro-fuzz-workload:{self.name}:{seed}:{index}")
            states.append(
                State.of({name: rng.randint(lo, hi) for name in program.variables})
            )
        return states

    def relaxed_chooser(self, seed: int) -> Optional[Chooser]:
        return make_chooser("random", seed=seed)
