"""The standing committed corpus: sources + fingerprints + verdicts.

``tests/corpus/`` is the fuzzing pipeline's permanent residue — a
fixed-seed generated population whose verify outcomes are committed to the
repository and re-checked **byte-identically** in CI.  Future performance
work (new backends, cache layouts, scheduler changes) must reproduce every
committed obligation fingerprint, verdict status and digest exactly; any
drift is a semantic change, not an optimisation.

Layout::

    tests/corpus/
        manifest.json            # seed, count, program names in order
        programs/<name>.rlx      # generated source, replayed from disk
        expected/<name>.json     # canonical verify outcome (sorted keys)

:func:`write_corpus` serialises a completed :class:`~repro.fuzz.funnel.FuzzReport`;
:func:`replay_corpus` re-verifies the committed sources from scratch,
re-serialises the outcome with the same canonical encoder, and compares
*bytes* against the committed files.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

from .funnel import (
    BASE_BACKEND,
    FuzzReport,
    VerifySignature,
    obligations_digest,
    verify_leg,
)
from .generator import GeneratedProgram, GeneratedStudy

MANIFEST = "manifest.json"
PROGRAM_DIR = "programs"
EXPECTED_DIR = "expected"


def _canonical_json(payload) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _expected_payload(
    name: str,
    family: str,
    expect_verified: bool,
    signature: VerifySignature,
) -> Dict[str, object]:
    return {
        "name": name,
        "family": family,
        "expect_verified": expect_verified,
        "verified": signature.verified,
        "obligations": len(signature.statuses),
        "obligation_fingerprints": list(signature.fingerprints),
        "obligation_statuses": list(signature.statuses),
        "obligations_digest": obligations_digest(
            signature.fingerprints, signature.statuses
        ),
    }


def write_corpus(directory: str, report: FuzzReport) -> List[str]:
    """Persist a completed fuzz run as the committed corpus.

    Returns the program names written, in corpus order.  Refuses to write
    from a diverged run — the corpus is the *agreed* baseline, and caching
    one leg of a divergence would enshrine the wrong answer.
    """
    if not report.ok:
        raise ValueError(
            "refusing to write a corpus from a diverged fuzz run; "
            "resolve the divergences first"
        )
    root = Path(directory)
    (root / PROGRAM_DIR).mkdir(parents=True, exist_ok=True)
    (root / EXPECTED_DIR).mkdir(parents=True, exist_ok=True)

    names: List[str] = []
    for item in report.generated:
        signature = report.baseline[item.name]
        (root / PROGRAM_DIR / f"{item.name}.rlx").write_text(
            item.source, encoding="utf-8"
        )
        (root / EXPECTED_DIR / f"{item.name}.json").write_text(
            _canonical_json(
                _expected_payload(
                    item.name, item.family, item.expect_verified, signature
                )
            ),
            encoding="utf-8",
        )
        names.append(item.name)

    (root / MANIFEST).write_text(
        _canonical_json(
            {
                "generator": "repro fuzz",
                "seed": report.seed,
                "count": report.count,
                "backend": BASE_BACKEND,
                "programs": names,
            }
        ),
        encoding="utf-8",
    )
    return names


@dataclass
class CorpusMismatch:
    """One program whose replay bytes differ from the committed bytes."""

    name: str
    detail: str

    def as_dict(self) -> Dict[str, str]:
        return {"name": self.name, "detail": self.detail}


@dataclass
class CorpusReplayReport:
    """The outcome of one byte-identical corpus replay."""

    directory: str
    programs: int = 0
    mismatches: List[CorpusMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.programs > 0 and not self.mismatches

    def as_dict(self) -> Dict[str, object]:
        return {
            "directory": self.directory,
            "programs": self.programs,
            "ok": self.ok,
            "mismatches": [mismatch.as_dict() for mismatch in self.mismatches],
        }

    def summary(self) -> str:
        if self.ok:
            return (
                f"corpus replay: {self.programs} programs byte-identical "
                f"({self.directory})"
            )
        lines = [
            f"corpus replay: {len(self.mismatches)} of {self.programs} "
            f"programs DIVERGED ({self.directory})"
        ]
        for mismatch in self.mismatches:
            lines.append(f"  {mismatch.name}: {mismatch.detail}")
        return "\n".join(lines)


def _diff_fields(committed: Dict[str, object], replayed: Dict[str, object]) -> str:
    different = sorted(
        key
        for key in set(committed) | set(replayed)
        if committed.get(key) != replayed.get(key)
    )
    return f"fields differ: {', '.join(different)}"


def replay_corpus(directory: str) -> CorpusReplayReport:
    """Re-verify every committed program and byte-compare the outcomes.

    The committed sources are rebuilt into :class:`GeneratedStudy` wrappers
    (spec re-derived from the text alone), batch-verified in one pooled
    wave on the corpus's recorded baseline backend, and each outcome is
    re-serialised with the canonical encoder.  Equality is asserted on the
    serialised *bytes*: field order, indentation and every fingerprint,
    status and digest must match the committed file exactly.
    """
    root = Path(directory)
    report = CorpusReplayReport(directory=str(root))
    manifest = json.loads((root / MANIFEST).read_text(encoding="utf-8"))

    generated: List[GeneratedProgram] = []
    committed: Dict[str, Dict[str, object]] = {}
    committed_bytes: Dict[str, str] = {}
    for name in manifest["programs"]:
        source = (root / PROGRAM_DIR / f"{name}.rlx").read_text(encoding="utf-8")
        raw = (root / EXPECTED_DIR / f"{name}.json").read_text(encoding="utf-8")
        expected = json.loads(raw)
        committed[name] = expected
        committed_bytes[name] = raw
        generated.append(
            GeneratedProgram(
                name=name,
                seed=manifest["seed"],
                index=len(generated),
                family=expected["family"],
                program=GeneratedStudy(name, source).build_program(),
                source=source,
                expect_verified=expected["expect_verified"],
            )
        )
    report.programs = len(generated)

    signatures = verify_leg(generated, backend=manifest.get("backend", BASE_BACKEND))
    for item in generated:
        replayed = _expected_payload(
            item.name, item.family, item.expect_verified, signatures[item.name]
        )
        replayed_bytes = _canonical_json(replayed)
        if replayed_bytes != committed_bytes[item.name]:
            report.mismatches.append(
                CorpusMismatch(
                    name=item.name,
                    detail=_diff_fields(committed[item.name], replayed),
                )
            )
    return report
