"""Greedy statement-deletion shrinking of diverging programs.

When the differential funnel finds a parity violation it does not commit a
200-line generated program as the reproducer: :func:`shrink_source`
repeatedly deletes statements — top-level, inside loop bodies, inside
branch arms — keeping a deletion whenever the caller's ``still_fails``
predicate confirms the smaller program *still diverges*, until no single
deletion survives.  The result is a local minimum: every remaining
statement is load-bearing for the divergence.

:func:`write_reproducer` then persists the fixture — the shrunk ``.rlx``
source plus the structured divergence record — under a directory future
sessions can commit and replay.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path
from typing import Callable, List, Optional

from ..lang.ast import If, Program, Seq, Skip, Stmt, While
from ..lang.parser import parse_program
from ..lang.pretty import pretty_program


def _flatten(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, Seq):
        return _flatten(stmt.first) + _flatten(stmt.second)
    if isinstance(stmt, Skip):
        return []
    return [stmt]


def _sequence(stmts: List[Stmt]) -> Stmt:
    if not stmts:
        return Skip()
    result = stmts[0]
    for stmt in stmts[1:]:
        result = Seq(result, stmt)
    return result


def _delete_candidates(stmt: Stmt, prefix: tuple = ()) -> List[tuple]:
    """Paths of every deletable statement, outermost first.

    A path is a tuple of indices into successive flattened blocks: ``(2,)``
    is the third top-level statement, ``(2, 0)`` the first statement of its
    body (for loops) or then-branch (for conditionals).
    """
    paths: List[tuple] = []
    for index, child in enumerate(_flatten(stmt)):
        path = prefix + (index,)
        paths.append(path)
        if isinstance(child, While):
            paths.extend(_delete_candidates(child.body, path))
        elif isinstance(child, If):
            paths.extend(_delete_candidates(child.then_branch, path))
    return paths


def _delete_at(stmt: Stmt, path: tuple) -> Optional[Stmt]:
    """``stmt`` with the statement at ``path`` removed, or ``None`` when
    the deletion is structurally impossible."""
    stmts = _flatten(stmt)
    index = path[0]
    if index >= len(stmts):
        return None
    if len(path) == 1:
        return _sequence(stmts[:index] + stmts[index + 1 :])
    target = stmts[index]
    if isinstance(target, While):
        new_body = _delete_at(target.body, path[1:])
        if new_body is None:
            return None
        replacement: Stmt = dataclasses.replace(target, body=new_body)
    elif isinstance(target, If):
        new_then = _delete_at(target.then_branch, path[1:])
        if new_then is None:
            return None
        replacement = dataclasses.replace(target, then_branch=new_then)
    else:
        return None
    return _sequence(stmts[:index] + [replacement] + stmts[index + 1 :])


def shrink_program(
    program: Program, still_fails: Callable[[str], bool]
) -> Program:
    """Greedily delete statements while ``still_fails(pretty(p))`` holds.

    The predicate receives candidate *source text* (the currency the whole
    corpus works in); any exception it raises counts as "does not fail"
    — a candidate that crashes the funnel differently is not a smaller
    instance of the original divergence.
    """
    current = program
    progress = True
    while progress:
        progress = False
        for path in _delete_candidates(current.body):
            candidate_body = _delete_at(current.body, path)
            if candidate_body is None:
                continue
            candidate = dataclasses.replace(current, body=candidate_body)
            try:
                source = pretty_program(candidate)
                # The shrunk program must stay inside the language the
                # funnel accepts: re-parseable from its own pretty form.
                parse_program(source, name=candidate.name)
                if still_fails(source):
                    current = candidate
                    progress = True
                    break
            except Exception:
                continue
    return current


def shrink_source(source: str, still_fails: Callable[[str], bool]) -> str:
    """Source-level front end of :func:`shrink_program`."""
    program = parse_program(source)
    return pretty_program(shrink_program(program, still_fails))


def _slug(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "-", name).strip("-") or "divergence"


def write_reproducer(divergence_dir: str, divergence) -> str:
    """Persist one divergence fixture; returns the fixture directory.

    Layout (one directory per diverging program)::

        <divergence_dir>/<program>/
            program.rlx       # the shrunk reproducer source
            divergence.json   # stage, legs, mismatching values
    """
    fixture = Path(divergence_dir) / _slug(divergence.program)
    fixture.mkdir(parents=True, exist_ok=True)
    source = divergence.shrunk_source or ""
    (fixture / "program.rlx").write_text(source, encoding="utf-8")
    (fixture / "divergence.json").write_text(
        json.dumps(divergence.as_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return str(fixture)
