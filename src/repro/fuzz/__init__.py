"""Corpus-scale program synthesis and differential fuzzing.

The verification stack is exercised on a *generated* population of relaxed
programs rather than only the hand-written case-study gallery:

* :mod:`~repro.fuzz.generator` — a seeded synthesizer emitting random,
  well-formed ``.rlx`` programs whose loops, relax envelopes and
  configuration variables are *planted* to match the syntactic shapes
  :func:`repro.relaxations.sites.discover_sites` detects, each paired with
  an auto-derived acceptability specification
  (:func:`~repro.fuzz.generator.derive_spec`) and wrapped as an
  unregistered :class:`~repro.fuzz.generator.GeneratedStudy` so the lint /
  explore layers accept it like any case study;
* :mod:`~repro.fuzz.funnel` — the pipeline driver behind ``repro fuzz``:
  every generated program runs the full funnel (``casestudy lint`` →
  ``verify-batch`` → ``explore``) while every layer is differentially
  tested — tree vs compiled vs vector evaluation, serial vs ``--jobs``
  discharge, cold vs warm cache, exhaustive vs full-width beam — asserting
  fingerprint / verdict / counterexample-model / frontier parity;
* :mod:`~repro.fuzz.shrink` — greedy statement-deletion shrinking of any
  divergence down to a minimal reproducer fixture on disk;
* :mod:`~repro.fuzz.corpus` — the standing committed corpus
  (``tests/corpus/``: sources + obligation fingerprints + verdicts) that
  future changes must replay byte-identically.
"""

from .generator import (
    FAMILIES,
    GeneratedProgram,
    GeneratedStudy,
    PlantedSite,
    ProgramSynthesizer,
    derive_spec,
    synthesize_corpus,
)
from .funnel import (
    Divergence,
    FuzzReport,
    available_backends,
    explore_signature,
    normalized_explore_payload,
    run_fuzz,
)
from .shrink import shrink_program, write_reproducer
from .corpus import CorpusReplayReport, replay_corpus, write_corpus

__all__ = [
    "CorpusReplayReport",
    "Divergence",
    "FAMILIES",
    "FuzzReport",
    "GeneratedProgram",
    "GeneratedStudy",
    "PlantedSite",
    "ProgramSynthesizer",
    "available_backends",
    "derive_spec",
    "explore_signature",
    "normalized_explore_payload",
    "replay_corpus",
    "run_fuzz",
    "shrink_program",
    "synthesize_corpus",
    "write_corpus",
]
