"""Declarative case studies: a study as *data*, not a bespoke class.

The paper's method is generic — write the relaxed program in the paper's
language, state its acceptability property, prove it — so a case study
should be expressible as exactly those parts:

* ``source`` — the relaxed program, written in the paper's surface language
  (``relax``/``assume``/``relate`` plus loop annotations), parsed on demand;
* ``spec`` — a builder mapping the parsed program to its
  :class:`~repro.hoare.verifier.AcceptabilitySpec` (divergence annotations
  anchor to AST nodes through the positional selectors below);
* ``workloads`` — a generator of initial states for differential simulation;
* metric hooks — ``distortion`` (the study's accuracy-loss scalar),
  ``metrics`` (named per-run measurements) and an optional substrate
  ``chooser``.

:class:`StudyDefinition` packages those parts; ``DeclarativeCaseStudy``
adapts a definition to the classic :class:`~repro.casestudies.base.CaseStudy`
interface, so the registry, the batch verifier, the explorer and the
benchmarks treat hand-written and declarative studies identically.

:func:`lint_case_study` is the toolkit's well-formedness gate (surfaced as
``repro casestudy lint``): the program parses (pretty/parse round-trip),
declared variables cover the used ones, every discovered relaxation site
applies, the ⊢o and ⊢r obligations collect without proof-construction
errors, and the workload generator produces states.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type, Union

from ..hoare.verifier import AcceptabilitySpec, AcceptabilityVerifier
from ..lang.ast import If, Program, Relate, Relax, Stmt, While
from ..lang.analysis import used_vars
from ..lang.parser import parse_program
from ..lang.pretty import pretty_program
from ..semantics.choosers import Chooser
from ..semantics.state import Outcome, State
from .base import CaseStudy

SpecBuilder = Callable[[Program], AcceptabilitySpec]
WorkloadBuilder = Callable[[int, int], List[State]]
ChooserBuilder = Callable[[int], Optional[Chooser]]
DistortionHook = Callable[[State, Outcome, Outcome], Optional[float]]
MetricsHook = Callable[[State, Outcome, Outcome], Dict[str, float]]


# ---------------------------------------------------------------------------
# Positional AST selectors (divergence-spec anchors for parsed programs)
# ---------------------------------------------------------------------------


def nth_statement(program: Program, cls: Type[Stmt], index: int = 0) -> Stmt:
    """The ``index``-th statement of class ``cls`` in syntactic pre-order.

    Spec builders for parsed programs use these selectors to anchor
    :class:`~repro.hoare.relational.DivergenceSpec` annotations — the
    declarative analogue of the hand-written studies stashing AST nodes in
    ``self`` while building the program.
    """
    nodes = [node for node in program.body.walk() if isinstance(node, cls)]
    if index >= len(nodes):
        raise IndexError(
            f"program {program.name!r} has {len(nodes)} {cls.__name__} "
            f"statements; selector asked for index {index}"
        )
    return nodes[index]


def loop_at(program: Program, index: int = 0) -> While:
    """The ``index``-th ``while`` loop of the program."""
    return nth_statement(program, While, index)  # type: ignore[return-value]


def branch_at(program: Program, index: int = 0) -> If:
    """The ``index``-th ``if`` statement of the program."""
    return nth_statement(program, If, index)  # type: ignore[return-value]


def relax_at(program: Program, index: int = 0) -> Relax:
    """The ``index``-th ``relax`` statement of the program."""
    return nth_statement(program, Relax, index)  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Declarative definitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StudyDefinition:
    """One case study described entirely by data + small hook callables."""

    name: str
    source: str
    spec: SpecBuilder
    workloads: WorkloadBuilder
    title: str = ""
    paper_section: str = ""
    paper_proof_lines: int = 0
    chooser: Optional[ChooserBuilder] = None
    distortion: Optional[DistortionHook] = None
    metrics: Optional[MetricsHook] = None

    def parse(self) -> Program:
        """Parse the study's source program."""
        return parse_program(self.source, name=self.name)

    def as_case_study_class(self) -> Type["DeclarativeCaseStudy"]:
        """The CaseStudy subclass adapter for this definition.

        Memoised per definition: registration is keyed by class identity,
        so repeated registration of the same definition must be idempotent
        and ``get_case_study(definition.as_case_study_class())`` must
        resolve to the registered class.
        """
        cached = getattr(self, "_case_study_class", None)
        if cached is None:
            cached = DeclarativeCaseStudy.class_for(self)
            object.__setattr__(self, "_case_study_class", cached)
        return cached


class DeclarativeCaseStudy(CaseStudy):
    """Adapter presenting a :class:`StudyDefinition` as a classic CaseStudy."""

    definition: StudyDefinition

    @classmethod
    def class_for(cls, definition: StudyDefinition) -> Type["DeclarativeCaseStudy"]:
        class_name = (
            re.sub(r"(?:^|[-_])(\w)", lambda m: m.group(1).upper(), definition.name)
            or "DeclarativeStudy"
        )
        return type(
            class_name,
            (cls,),
            {
                "definition": definition,
                "name": definition.name,
                "paper_section": definition.paper_section,
                "paper_proof_lines": definition.paper_proof_lines,
                "__doc__": definition.title or f"Declarative case study {definition.name}",
                "__module__": cls.__module__,
            },
        )

    # -- CaseStudy interface, delegated to the definition --------------------------

    def build_program(self) -> Program:
        return self.definition.parse()

    def acceptability_spec(self, program: Program) -> AcceptabilitySpec:
        return self.definition.spec(program)

    def workloads(self, count: int, seed: int = 0) -> List[State]:
        return self.definition.workloads(count, seed)

    def relaxed_chooser(self, seed: int) -> Optional[Chooser]:
        if self.definition.chooser is None:
            return super().relaxed_chooser(seed)
        return self.definition.chooser(seed)

    def distortion(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Optional[float]:
        if self.definition.distortion is None:
            return super().distortion(initial, original, relaxed)
        return self.definition.distortion(initial, original, relaxed)

    def record_metrics(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Dict[str, float]:
        if self.definition.metrics is None:
            return super().record_metrics(initial, original, relaxed)
        return self.definition.metrics(initial, original, relaxed)


# ---------------------------------------------------------------------------
# Linting: the well-formedness gate behind ``repro casestudy lint``
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LintFinding:
    """One check outcome; ``level`` is ``error`` or ``warning``."""

    check: str
    level: str
    message: str


@dataclass
class LintReport:
    """Every finding of one study's lint run."""

    study: str
    findings: List[LintFinding] = field(default_factory=list)
    checks_run: int = 0
    obligations: int = 0
    sites: int = 0

    @property
    def ok(self) -> bool:
        return not any(finding.level == "error" for finding in self.findings)

    def error(self, check: str, message: str) -> None:
        self.findings.append(LintFinding(check, "error", message))

    def warn(self, check: str, message: str) -> None:
        self.findings.append(LintFinding(check, "warning", message))

    def as_dict(self) -> Dict[str, object]:
        return {
            "study": self.study,
            "ok": self.ok,
            "checks_run": self.checks_run,
            "obligations": self.obligations,
            "sites": self.sites,
            "findings": [
                {"check": f.check, "level": f.level, "message": f.message}
                for f in self.findings
            ],
        }

    def summary(self) -> str:
        status = "ok" if self.ok else "FAILED"
        lines = [
            f"{self.study}: {status} ({self.checks_run} checks, "
            f"{self.sites} sites, {self.obligations} obligations)"
        ]
        for finding in self.findings:
            lines.append(f"  [{finding.level}] {finding.check}: {finding.message}")
        return "\n".join(lines)


def lint_case_study(study: Union[str, CaseStudy, Type[CaseStudy]]) -> LintReport:
    """Check one study's well-formedness without discharging any obligation.

    Runs, in order: the program builds; its pretty-printed form re-parses to
    the same program (so the study stays expressible in the paper's
    language); declared variables cover the used ones; every discovered
    relaxation site applies cleanly; the ⊢o/⊢r obligations collect with no
    proof-construction errors; and the workload generator produces states.
    Later checks are skipped once the program itself fails to build.
    """
    from .registry import get_case_study

    case = get_case_study(study)
    report = LintReport(study=case.name)

    report.checks_run += 1
    try:
        program = case.build_program()
    except Exception as error:
        report.error("program-builds", f"build_program() raised: {error}")
        return report
    if not isinstance(program, Program):
        report.error("program-builds", f"build_program() returned {type(program)!r}")
        return report

    report.checks_run += 1
    try:
        printed = pretty_program(program)
        reparsed = parse_program(printed, name=program.name)
        if pretty_program(reparsed) != printed:
            report.error(
                "program-parses",
                "pretty-printed program does not round-trip through the parser",
            )
    except Exception as error:
        report.error("program-parses", f"pretty/parse round-trip failed: {error}")

    report.checks_run += 1
    declared = set(program.variables) | set(program.arrays)
    undeclared = sorted(used_vars(program.body) - declared)
    if undeclared:
        report.error(
            "declared-variables",
            f"used but undeclared: {', '.join(undeclared)}",
        )
    elif not program.variables and not program.arrays:
        report.warn("declared-variables", "program declares no variables")

    report.checks_run += 1
    try:
        from ..relaxations.sites import apply_site

        sites = case.relaxation_sites(program)
        report.sites = len(sites)
        for site in sites:
            result = apply_site(program, site)
            if not isinstance(result.program, Program):
                report.error(
                    "relaxation-sites",
                    f"site {site.site_id} produced {type(result.program)!r}",
                )
    except Exception as error:
        report.error("relaxation-sites", f"site discovery/application failed: {error}")

    report.checks_run += 1
    try:
        spec = case.acceptability_spec(program)
        collected = AcceptabilityVerifier().collect(program, spec)
        for layer_name, collector in (
            ("original", collected.original),
            ("relaxed", collected.relaxed),
        ):
            for message in collector.errors:
                report.error(
                    "obligations-collect", f"{layer_name} layer: {message}"
                )
        report.obligations = len(collected.original.obligations) + len(
            collected.relaxed.obligations
        )
        if report.obligations == 0:
            report.error("obligations-collect", "no proof obligations collected")
    except Exception as error:
        report.error("obligations-collect", f"collection raised: {error}")

    report.checks_run += 1
    try:
        states = case.workloads(2, seed=0)
        if not states:
            report.error("workloads", "workload generator produced no states")
        elif not all(isinstance(state, State) for state in states):
            report.error("workloads", "workload generator produced non-State items")
    except Exception as error:
        report.error("workloads", f"workload generation raised: {error}")

    report.checks_run += 1
    if not any(isinstance(node, Relate) for node in program.body.walk()):
        report.warn(
            "relate-present",
            "program has no relate statement; the relational proof only "
            "establishes progress, not an acceptability property",
        )

    return report


def lint_registry(
    names: Optional[Sequence[str]] = None,
) -> List[LintReport]:
    """Lint the named studies (default: every registered study)."""
    from .registry import all_case_studies, get_case_study

    if names:
        return [lint_case_study(get_case_study(name)) for name in names]
    return [lint_case_study(cls()) for cls in all_case_studies()]
