"""Case study 1 — Swish++ dynamic knobs (paper Section 5.1).

Swish++ formats and presents search results in a loop; ``max_r`` caps how
many results are presented.  The Dynamic Knobs relaxation may lower
``max_r`` under load, subject to the constraint that when the original cap
exceeded 10 the relaxed cap is still at least 10 (the user always sees the
top results):

.. code-block:: none

    original_max_r = max_r;
    relax (max_r) st ((original_max_r <= 10 && max_r == original_max_r)
                      || (10 < original_max_r && 10 <= max_r));

The acceptability property (the paper's relate statement) says the relaxed
execution presents either exactly the same number of results (when the
original presented fewer than 10) or at least 10:

.. code-block:: none

    relate results: (num_r<o> < 10 && num_r<o> == num_r<r>)
                    || (10 <= num_r<o> && 10 <= num_r<r>);

The formatting loop's trip count depends on the relaxed ``max_r``, so the
original and relaxed executions diverge at the loop; the proof uses the
diverge rule with a unary characterisation of the loop's result
(``num_r = min(N, max(max_r, 0))`` expressed as guarded implications) on
both sides, then re-establishes the relational property after control flow
converges — exactly the proof structure the paper describes (330 lines of
Coq proof script in the original artifact).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hoare.relational import DivergenceSpec, RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import Program, While
from ..semantics.choosers import Chooser
from ..semantics.state import Outcome, State, Terminated
from ..substrates.search import DynamicKnobChooser, DynamicKnobController, LoadModel
from ..substrates.workloads import generate_swish_workloads
from .base import CaseStudy
from .registry import register_case_study

#: The number of results the relaxed program must always keep (paper value).
MINIMUM_RESULTS = 10


def loop_result_characterisation() -> "b.BoolExpr":
    """The unary postcondition of the formatting loop.

    ``num_r = min(N, max(max_r, 0))`` expressed as guarded linear implications
    so the obligation stays in the decidable fragment:
    """
    return b.and_(
        b.ge('num_r', 0),
        b.le('num_r', 'N'),
        b.implies(b.le('N', 'max_r'), b.eq('num_r', 'N')),
        b.implies(b.and_(b.ge('max_r', 0), b.le('max_r', 'N')), b.eq('num_r', 'max_r')),
        b.implies(b.le('max_r', 0), b.eq('num_r', 0)),
    )


@register_case_study
class SwishDynamicKnobs(CaseStudy):
    """The Swish++ dynamic-knobs case study."""

    name = "swish-dynamic-knobs"
    paper_section = "5.1"
    paper_proof_lines = 330

    def __init__(self) -> None:
        # The formatting loop node is kept so the divergence annotation can be
        # attached to it when building the relational configuration.
        self._format_loop: Optional[While] = None

    # -- program -----------------------------------------------------------------

    def build_program(self) -> Program:
        relax_predicate = b.or_(
            b.and_(
                b.le('original_max_r', MINIMUM_RESULTS),
                b.eq('max_r', 'original_max_r'),
            ),
            b.and_(
                b.gt('original_max_r', MINIMUM_RESULTS),
                b.ge('max_r', MINIMUM_RESULTS),
            ),
        )
        relate_condition = b.ror(
            b.rand(
                b.rlt(b.o('num_r'), MINIMUM_RESULTS),
                b.req(b.o('num_r'), b.r('num_r')),
            ),
            b.rand(
                b.rge(b.o('num_r'), MINIMUM_RESULTS),
                b.rge(b.r('num_r'), MINIMUM_RESULTS),
            ),
        )
        format_loop = While(
            condition=b.and_(b.lt('num_r', 'N'), b.lt('num_r', 'max_r')),
            body=b.assign('num_r', b.add('num_r', 1)),
            invariant=b.and_(
                b.ge('num_r', 0),
                b.le('num_r', 'N'),
                b.or_(b.le('num_r', 'max_r'), b.eq('num_r', 0)),
            ),
        )
        self._format_loop = format_loop
        program = b.program(
            self.name,
            b.assume(b.ge('N', 0)),
            b.assign('original_max_r', 'max_r'),
            b.relax('max_r', relax_predicate),
            b.assign('num_r', 0),
            format_loop,
            b.relate('results', relate_condition),
            variables=('N', 'max_r', 'original_max_r', 'num_r'),
        )
        return program

    # -- specification ------------------------------------------------------------

    def acceptability_spec(self, program: Program) -> AcceptabilitySpec:
        assert self._format_loop is not None
        characterisation = loop_result_characterisation()
        config = RelationalConfig(
            divergence_specs={
                self._format_loop: DivergenceSpec(
                    original_post=characterisation,
                    relaxed_post=characterisation,
                    comment="formatting loop: trip count depends on the relaxed max_r",
                )
            },
        )
        return AcceptabilitySpec(
            precondition=b.true,
            postcondition=b.true,
            rel_precondition=b.all_same('N', 'max_r', 'original_max_r', 'num_r'),
            rel_postcondition=None,
            relational_config=config,
        )

    # -- dynamic simulation ----------------------------------------------------------

    def workloads(self, count: int, seed: int = 0) -> List[State]:
        states = []
        for workload in generate_swish_workloads(count, seed):
            states.append(
                State.of(
                    {
                        'N': workload.num_results,
                        'max_r': workload.requested_max_r,
                        'original_max_r': 0,
                        'num_r': 0,
                    }
                )
            )
        return states

    def relaxed_chooser(self, seed: int) -> Optional[Chooser]:
        return DynamicKnobChooser(
            controller=DynamicKnobController(minimum_results=MINIMUM_RESULTS),
            load_model=LoadModel(seed=seed),
            knob_var='max_r',
            seed=seed,
        )

    def distortion(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Optional[float]:
        """Accuracy loss = number of results the relaxed execution dropped."""
        if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
            return None
        return float(
            abs(original.state.scalar('num_r') - relaxed.state.scalar('num_r'))
        )

    def record_metrics(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
            presented_original = original.state.scalar('num_r')
            presented_relaxed = relaxed.state.scalar('num_r')
            metrics['presented_original'] = float(presented_original)
            metrics['presented_relaxed'] = float(presented_relaxed)
            metrics['results_dropped'] = float(presented_original - presented_relaxed)
            # Loop iterations saved is the performance proxy (fewer results formatted).
            metrics['iterations_saved'] = float(presented_original - presented_relaxed)
            if presented_original > 0:
                metrics['fraction_presented'] = presented_relaxed / presented_original
            else:
                metrics['fraction_presented'] = 1.0
        return metrics
