"""Case study 6 — branch-and-bound search with an early-exit relaxation.

A search loop scans candidate scores, keeping the best one seen (scores are
clamped against the known upper bound ``UB``, the branch-and-bound pruning
invariant).  The relaxation is *early exit* — under load the search may
stop after fewer candidates, modelled as a dynamic knob on the scan cutoff:

.. code-block:: none

    original_cutoff = cutoff;
    relax (cutoff) st (1 <= cutoff && cutoff <= original_cutoff);

The loop's trip count depends on the relaxed cutoff, so the executions
diverge at the loop; the proof uses the diverge rule with the incumbent
characterisation ``first <= best && best <= UB`` proved independently on
each side (the floor ``1 <= cutoff`` guarantees even the most aggressive
early exit scanned the seed candidate).  The acceptability property is that
the relaxed search still returns a *valid incumbent*:

.. code-block:: none

    relate incumbent: first<r> <= best<r> && best<r> <= UB<r>
                      && first<o> <= best<o> && best<o> <= UB<o>

Defined declaratively: the program is the ``.rlx`` source below; the
divergence annotation anchors to the loop by positional selector.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hoare.relational import DivergenceSpec, RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import Program
from ..lang.parser import parse_bool
from ..semantics.choosers import make_chooser
from ..semantics.state import Outcome, State, Terminated
from ..substrates.workloads import generate_search_workloads
from .registry import register_case_study
from .spec import StudyDefinition, loop_at

SOURCE = """
vars i, N, UB, cutoff, original_cutoff, first, v, best;
arrays A;
assume(N >= 1);
assume(1 <= cutoff);
first = A[0];
assume(first <= UB);
best = first;
original_cutoff = cutoff;
relax (cutoff) st (1 <= cutoff && cutoff <= original_cutoff);
i = 1;
while (i < N && i < cutoff)
    invariant (first <= best && best <= UB && 1 <= i)
{
    v = A[i];
    v = min(v, UB);
    if (v > best) {
        best = v;
    }
    i = i + 1;
}
relate incumbent: (first<r> <= best<r> && best<r> <= UB<r>
                   && first<o> <= best<o> && best<o> <= UB<o>);
"""


def _spec(program: Program) -> AcceptabilitySpec:
    scan_loop = loop_at(program, 0)
    incumbent = parse_bool("first <= best && best <= UB")
    return AcceptabilitySpec(
        rel_precondition=b.all_same(
            "i", "N", "UB", "cutoff", "original_cutoff", "first", "v", "best"
        ),
        relational_config=RelationalConfig(
            arrays=("A",),
            shared_arrays=("A",),
            divergence_specs={
                scan_loop: DivergenceSpec(
                    original_post=incumbent,
                    relaxed_post=incumbent,
                    comment="scan trip count depends on the relaxed cutoff",
                )
            },
        ),
    )


def _workloads(count: int, seed: int = 0):
    states = []
    for workload in generate_search_workloads(count, seed=seed):
        scores = {index: value for index, value in enumerate(workload.scores)}
        states.append(
            State.of(
                {
                    "i": 0,
                    "N": len(workload.scores),
                    "UB": workload.upper_bound,
                    "cutoff": workload.cutoff,
                    "original_cutoff": 0,
                    "first": 0,
                    "v": 0,
                    "best": 0,
                },
                arrays={"A": scores},
            )
        )
    return states


def _distortion(
    initial: State, original: Outcome, relaxed: Outcome
) -> Optional[float]:
    """Accuracy loss = how much incumbent quality the early exit gave up."""
    if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
        return None
    return float(
        abs(original.state.scalar("best") - relaxed.state.scalar("best"))
    )


def _metrics(initial: State, original: Outcome, relaxed: Outcome) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
        best_original = original.state.scalar("best")
        best_relaxed = relaxed.state.scalar("best")
        metrics["best_original"] = float(best_original)
        metrics["best_relaxed"] = float(best_relaxed)
        metrics["incumbent_gap"] = float(best_original - best_relaxed)
        # Final i = how many candidates each execution actually scanned.
        scanned_original = original.state.scalar("i")
        scanned_relaxed = relaxed.state.scalar("i")
        metrics["scanned_original"] = float(scanned_original)
        metrics["scanned_relaxed"] = float(scanned_relaxed)
        metrics["candidates_skipped"] = float(scanned_original - scanned_relaxed)
        metrics["incumbent_valid"] = float(
            relaxed.state.scalar("first") <= best_relaxed
            and best_relaxed <= relaxed.state.scalar("UB")
        )
    return metrics


BRANCH_AND_BOUND = StudyDefinition(
    name="bnb-early-exit",
    title="Branch-and-bound search with a verified early-exit cutoff knob",
    paper_section="1 (early-exit / dynamic knobs)",
    source=SOURCE,
    spec=_spec,
    workloads=_workloads,
    chooser=lambda seed: make_chooser("random", seed=seed),
    distortion=_distortion,
    metrics=_metrics,
)

register_case_study(BRANCH_AND_BOUND)

__all__ = ["BRANCH_AND_BOUND", "SOURCE"]
