"""Case study 5 — approximate-memory stencil with per-cell envelopes.

A three-tap stencil (``cell = left + mid + right``) sweeps a row stored in
approximate memory.  Unlike the LU study's single global error bound, the
error envelope here is *per cell*: the auxiliary row ``E`` gives each
cell's read-error magnitude, and every read is relaxed against its own
envelope —

.. code-block:: none

    original_right = right;
    relax (right) st (original_right - er <= right && right <= original_right + er);

The kernel keeps a rolling window (``left``/``mid``/``right`` with envelope
ghosts ``el``/``em``/``er``), reading each cell exactly once, and states a
per-output-cell accuracy property *inside* the loop:

.. code-block:: none

    relate cell: cell<o> - cell<r> <= el<r> + em<r> + er<r>
                 && cell<r> - cell<o> <= el<r> + em<r> + er<r>

— each output cell deviates by at most the sum of the envelopes of the
three cells it reads.  The executions stay in lockstep, so the proof is a
convergent relational loop invariant carrying the window's three per-tap
envelope bounds; there is no divergence and the per-cell relate is proved
once per iteration from the invariant plus the relax rule's premises.

Defined declaratively: the program is the ``.rlx`` source below.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hoare.relational import RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import Program
from ..semantics.state import Outcome, State, Terminated
from ..substrates.approxmem import ApproxMemoryChooser, ErrorModel
from ..substrates.workloads import generate_stencil_workloads
from .registry import register_case_study
from .spec import StudyDefinition

SOURCE = """
vars i, N, el, em, er, left, mid, right, original_right, cell, acc;
arrays A, E;
assume(N >= 1);
left = 0;
mid = 0;
right = 0;
el = 0;
em = 0;
er = 0;
cell = 0;
acc = 0;
i = 0;
while (i < N)
    invariant (0 <= el && 0 <= em && 0 <= er)
    rel_invariant (i<o> == i<r> && N<o> == N<r>
                   && el<o> == el<r> && em<o> == em<r> && er<o> == er<r>
                   && 0 <= el<r> && 0 <= em<r> && 0 <= er<r>
                   && left<o> - left<r> <= el<r> && left<r> - left<o> <= el<r>
                   && mid<o> - mid<r> <= em<r> && mid<r> - mid<o> <= em<r>
                   && right<o> - right<r> <= er<r> && right<r> - right<o> <= er<r>)
{
    left = mid;
    el = em;
    mid = right;
    em = er;
    right = A[i];
    er = E[i];
    assume(0 <= er);
    original_right = right;
    relax (right) st (original_right - er <= right && right <= original_right + er);
    cell = left + mid + right;
    relate cell: (cell<o> - cell<r> <= el<r> + em<r> + er<r>
                  && cell<r> - cell<o> <= el<r> + em<r> + er<r>);
    acc = acc + cell;
    i = i + 1;
}
"""


def _spec(program: Program) -> AcceptabilitySpec:
    return AcceptabilitySpec(
        rel_precondition=b.all_same(
            "i", "N", "el", "em", "er", "left", "mid", "right",
            "original_right", "cell", "acc",
        ),
        relational_config=RelationalConfig(
            arrays=("A", "E"), shared_arrays=("A", "E")
        ),
    )


def _workloads(count: int, seed: int = 0):
    states = []
    for workload in generate_stencil_workloads(count, seed=seed):
        cells = {index: value for index, value in enumerate(workload.cells)}
        envelopes = {index: value for index, value in enumerate(workload.envelopes)}
        states.append(
            State.of(
                {
                    "i": 0,
                    "N": len(workload.cells),
                    "el": 0,
                    "em": 0,
                    "er": 0,
                    "left": 0,
                    "mid": 0,
                    "right": 0,
                    "original_right": 0,
                    "cell": 0,
                    "acc": 0,
                },
                arrays={"A": cells, "E": envelopes},
            )
        )
    return states


def _chooser(seed: int):
    """Approximate-memory substrate: perturb each read within its envelope.

    ``error_bound_var='er'`` reads the *per-cell* bound the program just
    loaded from ``E``, so the substrate honours each cell's own envelope.
    """
    return ApproxMemoryChooser(
        error_model=ErrorModel(max_magnitude=3), error_bound_var="er", seed=seed
    )


def _distortion(
    initial: State, original: Outcome, relaxed: Outcome
) -> Optional[float]:
    """Accuracy loss = deviation of the accumulated stencil output."""
    if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
        return None
    return float(abs(original.state.scalar("acc") - relaxed.state.scalar("acc")))


def _metrics(initial: State, original: Outcome, relaxed: Outcome) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
        acc_original = original.state.scalar("acc")
        acc_relaxed = relaxed.state.scalar("acc")
        envelopes = initial.array("E")
        # Every cell is read by up to three output cells, so the end-to-end
        # deviation of the accumulated output is bounded by 3 * sum(E).
        total_envelope = 3 * sum(envelopes.values())
        metrics["acc_original"] = float(acc_original)
        metrics["acc_relaxed"] = float(acc_relaxed)
        metrics["acc_deviation"] = float(abs(acc_original - acc_relaxed))
        metrics["envelope_total"] = float(total_envelope)
        metrics["within_envelope"] = float(
            abs(acc_original - acc_relaxed) <= total_envelope
        )
    return metrics


STENCIL = StudyDefinition(
    name="stencil-approx-memory",
    title="Three-tap stencil over approximate memory with per-cell envelopes",
    paper_section="1 (approximate memory)",
    source=SOURCE,
    spec=_spec,
    workloads=_workloads,
    chooser=_chooser,
    distortion=_distortion,
    metrics=_metrics,
)

register_case_study(STENCIL)

__all__ = ["STENCIL", "SOURCE"]
