"""The case-study registry: studies as discoverable, pluggable data.

The corpus of worked case studies is the evidence base of the whole
reproduction, so it must be *open*: adding a study should mean writing one
module and registering it, not editing a hard-coded tuple threaded through
the CLI, the batch verifier, the explorer and the benchmarks.  This module
is the single source of truth those consumers share:

* :func:`register_case_study` — decorator (or plain call) that adds a
  :class:`~repro.casestudies.base.CaseStudy` subclass, or a declarative
  :class:`~repro.casestudies.spec.StudyDefinition`, to the registry.
  Registration is keyed by the study's ``name`` and rejects duplicates
  loudly (:class:`DuplicateCaseStudyError`) — two studies silently shadowing
  each other would corrupt every downstream report.
* :func:`all_case_studies` / :func:`case_study_names` — the registered
  classes / names in registration order (deterministic: module import
  order, then entry-point name order).
* :func:`get_case_study` — resolve a study from an instance, a registered
  name, a class, a class name, or a unique name prefix (so ``repro explore
  lu`` works).  Unknown references raise :class:`UnknownCaseStudyError`
  whose message lists every registered study.
* third-party packages can ship studies through the ``repro.case_studies``
  entry-point group; each entry point may name a ``CaseStudy`` subclass, a
  ``StudyDefinition``, or a zero-argument callable that registers studies
  itself.  Discovery is lazy (first registry query) and defensive: a broken
  plugin is reported, not fatal.
"""

from __future__ import annotations

import warnings
from typing import Dict, Tuple, Type, Union

from .base import CaseStudy

#: Entry-point group third-party packages use to ship additional studies.
ENTRY_POINT_GROUP = "repro.case_studies"


class DuplicateCaseStudyError(ValueError):
    """Raised when two case studies register under the same name."""


class UnknownCaseStudyError(ValueError):
    """Raised when a case-study reference does not resolve; the message
    lists every registered study so the caller can self-correct."""


_REGISTRY: Dict[str, Type[CaseStudy]] = {}
_entry_points_loaded = False


def register_case_study(
    study: Union[Type[CaseStudy], object],
) -> Union[Type[CaseStudy], object]:
    """Add a case study to the registry (usable as a class decorator).

    Accepts a :class:`CaseStudy` subclass or a declarative
    ``StudyDefinition`` (anything exposing ``as_case_study_class``).
    Returns its argument unchanged so decorated classes stay usable.
    """
    cls: Type[CaseStudy]
    if isinstance(study, type) and issubclass(study, CaseStudy):
        cls = study
    elif hasattr(study, "as_case_study_class"):
        cls = study.as_case_study_class()
    else:
        raise TypeError(
            "register_case_study expects a CaseStudy subclass or a "
            f"StudyDefinition, not {study!r}"
        )
    name = getattr(cls, "name", "")
    if not name or name == CaseStudy.name:
        raise ValueError(
            f"case study {cls.__name__} must define a distinctive 'name' "
            "class attribute before registration"
        )
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise DuplicateCaseStudyError(
            f"case study name {name!r} is already registered by "
            f"{existing.__module__}.{existing.__qualname__}"
        )
    _REGISTRY[name] = cls
    return study


def unregister_case_study(name: str) -> None:
    """Remove a study from the registry (plugin teardown and tests)."""
    _REGISTRY.pop(name, None)


def _load_entry_points() -> None:
    """Discover third-party studies shipped via the entry-point group."""
    global _entry_points_loaded
    if _entry_points_loaded:
        return
    _entry_points_loaded = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py<3.8 is unsupported anyway
        return
    try:
        discovered = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - legacy dict API (py<3.10)
        discovered = entry_points().get(ENTRY_POINT_GROUP, ())
    except Exception:  # pragma: no cover - broken metadata must not be fatal
        return
    for entry in sorted(discovered, key=lambda item: item.name):
        try:
            loaded = entry.load()
            if isinstance(loaded, type) and issubclass(loaded, CaseStudy):
                register_case_study(loaded)
            elif hasattr(loaded, "as_case_study_class"):
                register_case_study(loaded)
            elif callable(loaded):
                loaded()  # the plugin registers its studies itself
        except Exception as error:
            # A broken plugin (including one that collides with a registered
            # name) is reported, not fatal: raising here would leave the
            # registry half-populated for the rest of the process, since
            # discovery only ever runs once.
            warnings.warn(
                f"case-study entry point {entry.name!r} failed to load: {error}",
                stacklevel=2,
            )


def all_case_studies() -> Tuple[Type[CaseStudy], ...]:
    """Every registered case-study class, in registration order."""
    _load_entry_points()
    return tuple(_REGISTRY.values())


def case_study_names() -> Tuple[str, ...]:
    """The registered study names, in registration order."""
    _load_entry_points()
    return tuple(_REGISTRY.keys())


def _unknown(reference: object) -> UnknownCaseStudyError:
    names = ", ".join(case_study_names()) or "<none registered>"
    return UnknownCaseStudyError(
        f"unknown case study {reference!r}; registered studies: {names}"
    )


def get_case_study(reference: Union[str, CaseStudy, Type[CaseStudy]]) -> CaseStudy:
    """Resolve ``reference`` to a case-study instance.

    Accepts (in resolution order) an instance, a registered class, a
    registered name, a class name, or a unique prefix of a registered name
    (so ``get_case_study('lu')`` finds ``lu-approximate-memory``).
    """
    _load_entry_points()
    if isinstance(reference, CaseStudy):
        return reference
    if isinstance(reference, type) and issubclass(reference, CaseStudy):
        for cls in _REGISTRY.values():
            if cls is reference:
                return cls()
        raise _unknown(reference.__name__)
    if not isinstance(reference, str):
        raise _unknown(reference)
    exact = _REGISTRY.get(reference)
    if exact is not None:
        return exact()
    for cls in _REGISTRY.values():
        if cls.__name__ == reference:
            return cls()
    prefix_matches = [
        cls for name, cls in _REGISTRY.items() if name.startswith(reference)
    ]
    if len(prefix_matches) == 1:
        return prefix_matches[0]()
    raise _unknown(reference)
