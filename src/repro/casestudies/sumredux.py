"""Case study 4 — sum reduction under loop perforation (declarative).

The paper's introduction lists loop perforation and reduction sampling as
canonical relaxations: skip part of a reduction's work and accept a bounded
accuracy loss.  This kernel accumulates bounded non-negative terms and lets
the relaxed execution *drop* any iteration's contribution —

.. code-block:: none

    original_term = term;
    relax (term) st (term == original_term || term == 0);

— while the program threads an explicit additive *distortion budget*: every
iteration adds the per-term bound ``M`` to ``slack``, so the acceptability
property is the linear envelope

.. code-block:: none

    relate sum: s<r> <= s<o> && s<o> - s<r> <= slack<r>

(the relaxed sum is an under-approximation within the additive budget).
Both executions stay in lockstep — perforation here drops *work*, not loop
iterations — so the proof is a convergent relational loop invariant, with
no diverge rule at all: the invariant carries the running envelope
``s<o> - s<r> <= slack`` and the relax rule's premises re-establish it from
``term<r> ∈ {term<o>, 0}`` and the in-loop integrity assumes
``0 <= term <= M``.

This study is defined declaratively (:class:`~repro.casestudies.spec.
StudyDefinition`): the program is the ``.rlx`` source below, parsed on
demand; there is no bespoke class.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hoare.relational import RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import Program
from ..semantics.choosers import make_chooser
from ..semantics.state import Outcome, State, Terminated
from ..substrates.workloads import generate_reduction_workloads
from .registry import register_case_study
from .spec import StudyDefinition

SOURCE = """
vars i, N, M, term, original_term, s, slack;
arrays A;
assume(N >= 1);
assume(M >= 0);
s = 0;
slack = 0;
i = 0;
while (i < N)
    invariant (0 <= s && 0 <= slack && 0 <= M)
    rel_invariant (i<o> == i<r> && N<o> == N<r> && M<o> == M<r>
                   && slack<o> == slack<r> && M<r> >= 0
                   && s<r> <= s<o> && s<o> - s<r> <= slack<r>)
{
    term = A[i];
    assume(0 <= term);
    assume(term <= M);
    original_term = term;
    relax (term) st (term == original_term || term == 0);
    s = s + term;
    slack = slack + M;
    i = i + 1;
}
relate sum: (s<r> <= s<o> && s<o> - s<r> <= slack<r>);
"""


def _spec(program: Program) -> AcceptabilitySpec:
    return AcceptabilitySpec(
        rel_precondition=b.all_same(
            "i", "N", "M", "term", "original_term", "s", "slack"
        ),
        relational_config=RelationalConfig(arrays=("A",), shared_arrays=("A",)),
    )


def _workloads(count: int, seed: int = 0):
    states = []
    for workload in generate_reduction_workloads(count, seed=seed):
        terms = {index: value for index, value in enumerate(workload.terms)}
        states.append(
            State.of(
                {
                    "i": 0,
                    "N": len(workload.terms),
                    "M": workload.term_bound,
                    "term": 0,
                    "original_term": 0,
                    "s": 0,
                    "slack": 0,
                },
                arrays={"A": terms},
            )
        )
    return states


def _distortion(
    initial: State, original: Outcome, relaxed: Outcome
) -> Optional[float]:
    """Accuracy loss = how much of the sum the perforation dropped."""
    if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
        return None
    return float(abs(original.state.scalar("s") - relaxed.state.scalar("s")))


def _metrics(initial: State, original: Outcome, relaxed: Outcome) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
        sum_original = original.state.scalar("s")
        sum_relaxed = relaxed.state.scalar("s")
        budget = relaxed.state.scalar("slack")
        metrics["sum_original"] = float(sum_original)
        metrics["sum_relaxed"] = float(sum_relaxed)
        metrics["sum_dropped"] = float(sum_original - sum_relaxed)
        metrics["distortion_budget"] = float(budget)
        metrics["within_budget"] = float(0 <= sum_original - sum_relaxed <= budget)
    return metrics


SUM_REDUCTION = StudyDefinition(
    name="sum-reduction-perforation",
    title="Sum reduction under loop perforation with an additive distortion budget",
    paper_section="1 (loop perforation / reduction sampling)",
    source=SOURCE,
    spec=_spec,
    workloads=_workloads,
    chooser=lambda seed: make_chooser("random", seed=seed),
    distortion=_distortion,
    metrics=_metrics,
)

register_case_study(SUM_REDUCTION)

__all__ = ["SUM_REDUCTION", "SOURCE"]
