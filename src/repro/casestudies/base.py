"""Common infrastructure for the paper's Section 5 case studies.

Each case study packages:

* the relaxed program written in the paper's language (with the loop
  invariant / relational invariant annotations its verification needs),
* the acceptability specification (unary and relational pre/postconditions
  plus the diverge-rule annotations),
* a static verification entry point (the ⊢o + ⊢r proofs), and
* a dynamic differential simulation: run the original and relaxed semantics
  side by side on generated workloads, check the ``relate`` statements on
  the observed observation lists, and collect accuracy statistics.

The simulation is how the benchmarks regenerate the paper's qualitative
claims (the acceptability properties hold on every relaxed execution) and
the accuracy-envelope figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..hoare.obligations import VerificationReport
from ..hoare.verifier import AcceptabilityReport, AcceptabilitySpec, AcceptabilityVerifier
from ..lang.ast import Program
from ..semantics.choosers import Chooser
from ..semantics.interpreter import run_original, run_relaxed
from ..semantics.observation import check_program_compatibility
from ..semantics.state import Outcome, State, Terminated, is_error
from ..solver.interface import Solver

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..relaxations.sites import RelaxationSite


@dataclass
class SimulationRecord:
    """One original/relaxed execution pair of a case study."""

    initial_state: State
    original: Outcome
    relaxed: Outcome
    relate_satisfied: bool
    metrics: Dict[str, float] = field(default_factory=dict)


@dataclass
class SimulationSummary:
    """Aggregate results over many differential executions."""

    records: List[SimulationRecord] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return len(self.records)

    @property
    def relate_violations(self) -> int:
        return sum(1 for record in self.records if not record.relate_satisfied)

    @property
    def original_errors(self) -> int:
        return sum(1 for record in self.records if is_error(record.original))

    @property
    def relaxed_errors(self) -> int:
        return sum(1 for record in self.records if is_error(record.relaxed))

    def metric_values(self, name: str) -> List[float]:
        return [
            record.metrics[name] for record in self.records if name in record.metrics
        ]

    def mean_metric(self, name: str) -> float:
        values = self.metric_values(name)
        return sum(values) / len(values) if values else 0.0

    def max_metric(self, name: str) -> float:
        values = self.metric_values(name)
        return max(values) if values else 0.0


class CaseStudy:
    """Base class for the three case studies."""

    name: str = "case-study"
    paper_section: str = ""
    paper_proof_lines: int = 0  # lines of Coq proof script reported by the paper

    # -- static verification ------------------------------------------------------

    def build_program(self) -> Program:
        raise NotImplementedError

    def acceptability_spec(self, program: Program) -> AcceptabilitySpec:
        raise NotImplementedError

    def verify(self, solver: Optional[Solver] = None, engine=None) -> AcceptabilityReport:
        """Run the ⊢o and ⊢r verifications for this case study.

        ``engine`` optionally routes obligation discharge through an
        :class:`~repro.engine.core.ObligationEngine` (cache + portfolio +
        parallel scheduler).
        """
        program = self.build_program()
        spec = self.acceptability_spec(program)
        verifier = AcceptabilityVerifier(solver=solver, engine=engine)
        return verifier.verify(program, spec, study=self.name)

    # -- relaxation-space exploration ----------------------------------------------

    def relaxation_sites(self, program: Program) -> List["RelaxationSite"]:
        """The relaxation sites the explorer may transform for this study.

        The default is syntactic discovery over the program
        (:func:`repro.relaxations.sites.discover_sites`); case studies can
        override to prune or parameterise the space.
        """
        from ..relaxations.sites import discover_sites

        return discover_sites(program)

    def distortion(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Optional[float]:
        """The accuracy loss of one relaxed execution against the original.

        Returns ``None`` when either execution erred (the pair carries no
        accuracy information).  The default is the mean absolute deviation
        over the scalar variables both final states share; case studies
        override this with their domain metric (pivot deviation, results
        dropped, differing array cells).
        """
        if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
            return None
        original_scalars = original.state.scalar_map()
        relaxed_scalars = relaxed.state.scalar_map()
        common = sorted(set(original_scalars) & set(relaxed_scalars))
        if not common:
            return 0.0
        return sum(
            abs(original_scalars[name] - relaxed_scalars[name]) for name in common
        ) / len(common)

    # -- dynamic differential simulation -------------------------------------------

    def workloads(self, count: int, seed: int = 0) -> List[State]:
        """Generate ``count`` initial states for differential simulation."""
        raise NotImplementedError

    def relaxed_chooser(self, seed: int) -> Optional[Chooser]:
        """The nondeterminism strategy modelling the relaxation substrate."""
        return None

    def record_metrics(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Dict[str, float]:
        """Case-study-specific accuracy metrics for one execution pair."""
        return {}

    def simulate(
        self,
        runs: int = 50,
        seed: int = 0,
        chooser_factory: Optional[Callable[[int], Optional[Chooser]]] = None,
    ) -> SimulationSummary:
        """Run the original and relaxed semantics differentially.

        ``chooser_factory`` (seed -> chooser) overrides the case study's
        substrate model, e.g. to stress the relaxation with
        :class:`~repro.semantics.choosers.AdversarialChooser` under an
        explicit seed.
        """
        program = self.build_program()
        summary = SimulationSummary()
        factory = chooser_factory or self.relaxed_chooser
        for index, initial in enumerate(self.workloads(runs, seed)):
            original = run_original(program, initial)
            chooser = factory(seed + index)
            relaxed = run_relaxed(program, initial, chooser=chooser)
            relate_ok = True
            if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
                relate_ok = bool(
                    check_program_compatibility(
                        program, original.observations, relaxed.observations
                    )
                )
            summary.records.append(
                SimulationRecord(
                    initial_state=initial,
                    original=original,
                    relaxed=relaxed,
                    relate_satisfied=relate_ok,
                    metrics=self.record_metrics(initial, original, relaxed),
                )
            )
        return summary
