"""Case study 3 — LU decomposition with approximate memory (Section 5.3).

The SciMark2 LU kernel selects, for each column, the pivot row containing
the maximum element.  When the matrix is stored in approximate memory,
every read may return a value within a bounded error ``e`` of the stored
value; the paper models the read error with

.. code-block:: none

    original_a = a;
    relax (a) st (original_a - e <= a && a <= original_a + e);

The acceptability property is an *accuracy* property — the selected pivot
value differs from the exact pivot value by at most ``e`` (a Lipschitz-
continuity statement about the max reduction):

.. code-block:: none

    relate pivot: max<o> - max<r> <= e && max<r> - max<o> <= e

The proof (315 lines of Coq script in the paper's artifact) shows the
relate condition is a relational loop invariant.  In this reproduction the
branch that updates the running maximum diverges (it depends on the relaxed
value), so the invariant is re-established after the branch from the frame
(the relations over ``a``, ``old_max`` and ``e``) plus the unary
characterisation ``max = max(old_max, a)`` proved independently on each
side — the same case analysis the paper performs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hoare.relational import DivergenceSpec, RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import If, Program, While
from ..semantics.choosers import Chooser
from ..semantics.state import Outcome, State, Terminated
from ..substrates.approxmem import ApproxMemoryChooser, ErrorModel
from ..substrates.workloads import generate_lu_workloads
from .base import CaseStudy
from .registry import register_case_study


@register_case_study
class LUApproximateMemory(CaseStudy):
    """The LU pivot-selection case study."""

    name = "lu-approximate-memory"
    paper_section = "5.3"
    paper_proof_lines = 315

    def __init__(self, error_bound: int = 2) -> None:
        self.error_bound = error_bound
        self._pivot_loop: Optional[While] = None
        self._update_branch: Optional[If] = None

    # -- program -------------------------------------------------------------------

    def build_program(self) -> Program:
        update_branch = b.if_(
            b.gt('a', 'maxval'),
            b.block(b.assign('maxval', 'a'), b.assign('p', 'i')),
            b.skip,
        )
        self._update_branch = update_branch
        pivot_loop = While(
            condition=b.lt('i', 'N'),
            body=b.block(
                # Read A[i] from approximate memory: the exact value first, then
                # the relaxation models the bounded read error.
                b.assign('a', b.aread('A', 'i')),
                b.assign('original_a', 'a'),
                b.relax(
                    'a',
                    b.and_(
                        b.le(b.sub('original_a', 'e'), 'a'),
                        b.le('a', b.add('original_a', 'e')),
                    ),
                ),
                b.assign('old_max', 'maxval'),
                update_branch,
                b.assign('i', b.add('i', 1)),
            ),
            invariant=b.ge('e', 0),
            rel_invariant=b.rand(
                b.all_same('i', 'N', 'e'),
                b.rge(b.r('e'), 0),
                b.within('maxval', b.r('e')),
            ),
        )
        self._pivot_loop = pivot_loop
        return b.program(
            self.name,
            b.assume(b.ge('e', 0)),
            b.assume(b.ge('N', 1)),
            b.assign('maxval', b.aread('A', 0)),
            b.assign('p', 0),
            b.assign('i', 1),
            pivot_loop,
            b.relate('pivot', b.within('maxval', b.r('e'))),
            variables=('i', 'N', 'a', 'original_a', 'old_max', 'maxval', 'p', 'e'),
            arrays=('A',),
        )

    # -- specification ------------------------------------------------------------------

    def acceptability_spec(self, program: Program) -> AcceptabilitySpec:
        assert self._update_branch is not None
        # The unary characterisation of the branch: the running maximum becomes
        # the larger of its previous value and the (possibly approximate) read.
        branch_post = b.eq('maxval', b.max_('old_max', 'a'))
        config = RelationalConfig(
            arrays=('A',),
            shared_arrays=('A',),
            divergence_specs={
                self._update_branch: DivergenceSpec(
                    original_post=branch_post,
                    relaxed_post=branch_post,
                    comment="the max-update branch depends on the relaxed read",
                )
            },
        )
        return AcceptabilitySpec(
            precondition=b.true,
            postcondition=b.true,
            rel_precondition=b.all_same('i', 'N', 'maxval', 'p', 'e', 'a', 'original_a', 'old_max'),
            rel_postcondition=None,
            relational_config=config,
        )

    # -- dynamic simulation ----------------------------------------------------------------

    def workloads(self, count: int, seed: int = 0) -> List[State]:
        states = []
        for workload in generate_lu_workloads(count, seed=seed):
            column = {index: value for index, value in enumerate(workload.column)}
            states.append(
                State.of(
                    {
                        'i': 0,
                        'N': len(workload.column),
                        'a': 0,
                        'original_a': 0,
                        'old_max': 0,
                        'maxval': 0,
                        'p': 0,
                        'e': workload.error_bound,
                    },
                    arrays={'A': column},
                )
            )
        return states

    def relaxed_chooser(self, seed: int) -> Optional[Chooser]:
        return ApproxMemoryChooser(
            error_model=ErrorModel(max_magnitude=self.error_bound),
            error_bound_var='e',
            seed=seed,
        )

    def distortion(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Optional[float]:
        """Accuracy loss = how far the selected pivot value drifted."""
        if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
            return None
        return float(
            abs(original.state.scalar('maxval') - relaxed.state.scalar('maxval'))
        )

    def record_metrics(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
            max_original = original.state.scalar('maxval')
            max_relaxed = relaxed.state.scalar('maxval')
            error_bound = initial.scalar('e')
            metrics['pivot_value_original'] = float(max_original)
            metrics['pivot_value_relaxed'] = float(max_relaxed)
            metrics['pivot_deviation'] = float(abs(max_original - max_relaxed))
            metrics['error_bound'] = float(error_bound)
            metrics['within_bound'] = float(abs(max_original - max_relaxed) <= error_bound)
            metrics['pivot_row_changed'] = float(
                original.state.scalar('p') != relaxed.state.scalar('p')
            )
        return metrics
