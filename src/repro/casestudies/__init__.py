"""The paper's Section 5 case studies, verified and simulated.

* :class:`~repro.casestudies.swish.SwishDynamicKnobs` — Swish++ dynamic
  knobs (Section 5.1; relational accuracy property across a divergent loop),
* :class:`~repro.casestudies.water.WaterParallelization` — lock-elided
  parallel Water (Section 5.2; integrity assumption preserved under an
  unconstrained array relaxation),
* :class:`~repro.casestudies.lu.LUApproximateMemory` — SciMark2 LU pivot
  selection over approximate memory (Section 5.3; Lipschitz-style accuracy
  bound as a relational loop invariant).

Each case study exposes static verification (``verify``) and dynamic
differential simulation (``simulate``) against its substrate.
"""

from . import base, lu, swish, water
from .base import CaseStudy, SimulationRecord, SimulationSummary
from .lu import LUApproximateMemory
from .swish import SwishDynamicKnobs
from .water import WaterParallelization

ALL_CASE_STUDIES = (SwishDynamicKnobs, WaterParallelization, LUApproximateMemory)


def resolve_case_study(case_study) -> CaseStudy:
    """Resolve a case study by instance, registered name, class name, or a
    unique name prefix (so ``repro explore lu`` works)."""
    if isinstance(case_study, CaseStudy):
        return case_study
    matches = []
    for cls in ALL_CASE_STUDIES:
        instance = cls()
        if case_study in (instance.name, cls.__name__):
            return instance
        if instance.name.startswith(case_study):
            matches.append(instance)
    if len(matches) == 1:
        return matches[0]
    names = ", ".join(cls().name for cls in ALL_CASE_STUDIES)
    raise ValueError(f"unknown case study {case_study!r}; available: {names}")


__all__ = [
    "base",
    "lu",
    "swish",
    "water",
    "CaseStudy",
    "SimulationRecord",
    "SimulationSummary",
    "LUApproximateMemory",
    "SwishDynamicKnobs",
    "WaterParallelization",
    "ALL_CASE_STUDIES",
    "resolve_case_study",
]
