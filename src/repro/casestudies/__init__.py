"""The verified case-study corpus, served through a plugin registry.

The paper's Section 5 studies, hand-written against the builder DSL:

* :class:`~repro.casestudies.swish.SwishDynamicKnobs` — Swish++ dynamic
  knobs (Section 5.1; relational accuracy property across a divergent loop),
* :class:`~repro.casestudies.water.WaterParallelization` — lock-elided
  parallel Water (Section 5.2; integrity assumption preserved under an
  unconstrained array relaxation),
* :class:`~repro.casestudies.lu.LUApproximateMemory` — SciMark2 LU pivot
  selection over approximate memory (Section 5.3; Lipschitz-style accuracy
  bound as a relational loop invariant).

Four further workloads, defined declaratively (a ``.rlx`` source program
plus an acceptability spec, workload generator and metric hooks — see
:mod:`repro.casestudies.spec`):

* ``sum-reduction-perforation`` — a reduction kernel whose relaxed
  execution may drop contributions, with an additive distortion budget,
* ``stencil-approx-memory`` — a three-tap stencil over approximate memory
  with *per-cell* error envelopes and an in-loop per-cell relate,
* ``bnb-early-exit`` — branch-and-bound search whose scan cutoff is a
  dynamic knob (early exit), proved via the diverge rule,
* ``pipeline-two-knobs`` — a two-stage pipeline whose two knobs are
  relaxed *jointly* under a shared drop budget.

Every study registers itself with :mod:`repro.casestudies.registry`
(``@register_case_study``); the CLI, batch verifier, explorer and
benchmarks resolve studies exclusively through :func:`all_case_studies` /
:func:`get_case_study`, and third-party packages can extend the corpus via
the ``repro.case_studies`` entry-point group.  Each study exposes static
verification (``verify``) and dynamic differential simulation
(``simulate``) against its substrate.
"""

import warnings

from . import base, registry, spec
from .base import CaseStudy, SimulationRecord, SimulationSummary
from .registry import (
    DuplicateCaseStudyError,
    UnknownCaseStudyError,
    all_case_studies,
    case_study_names,
    get_case_study,
    register_case_study,
    unregister_case_study,
)
from .spec import (
    DeclarativeCaseStudy,
    LintFinding,
    LintReport,
    StudyDefinition,
    lint_case_study,
    lint_registry,
)

# Importing the study modules registers them (registration order defines
# the corpus order everywhere: reports, benchmarks, the CLI); the classic
# trio keeps its historical order, the declarative studies follow.
from . import swish, water, lu  # noqa: E402  (classic, hand-written)
from . import sumredux, bnb, stencil, pipeline  # noqa: E402  (declarative)
from .lu import LUApproximateMemory
from .swish import SwishDynamicKnobs
from .water import WaterParallelization

#: Alias kept for the pre-registry API; prefer :func:`get_case_study`.
resolve_case_study = get_case_study


def __getattr__(name):
    if name == "ALL_CASE_STUDIES":
        warnings.warn(
            "ALL_CASE_STUDIES is deprecated; use "
            "repro.casestudies.all_case_studies()",
            DeprecationWarning,
            stacklevel=2,
        )
        return all_case_studies()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "base",
    "registry",
    "spec",
    "lu",
    "swish",
    "water",
    "bnb",
    "pipeline",
    "stencil",
    "sumredux",
    "CaseStudy",
    "SimulationRecord",
    "SimulationSummary",
    "DeclarativeCaseStudy",
    "StudyDefinition",
    "LintFinding",
    "LintReport",
    "DuplicateCaseStudyError",
    "UnknownCaseStudyError",
    "LUApproximateMemory",
    "SwishDynamicKnobs",
    "WaterParallelization",
    "all_case_studies",
    "case_study_names",
    "get_case_study",
    "register_case_study",
    "unregister_case_study",
    "resolve_case_study",
    "lint_case_study",
    "lint_registry",
]
