"""Case study 2 — statistical automatic parallelization of Water (Section 5.2).

The Water computation is parallelised by eliding the locks that make the
updates of the reduction array ``RS`` atomic; CPU-scheduling races then make
``RS`` nondeterministic, which the paper models wholesale with

.. code-block:: none

    relax (RS) st (true);

A later loop consumes ``RS``:

.. code-block:: none

    while (K < N) {
        if (RS[K] < gCUT2) { FF[K] = EXP(RS[K]); }
        K = K + 1;
    }

The acceptability property is an *integrity* property: the developer has
established (by standard reasoning on the original program) that the write
``FF[K]`` stays in bounds, and records that belief with
``assume (K < len_FF)``.  Verification must show the relaxation does not
invalidate the assumption.  Because the assumption sits under the branch on
the relaxed value ``RS[K]``, control flow diverges there; the paper's proof
(310 lines of Coq script) inserts a second ``assume (K < len_FF)`` *before*
the branch, proves it by noninterference (``K`` and ``len_FF`` are equal in
both executions), and propagates it through the divergent branch with the
intermediate semantics.  This module reproduces exactly that structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hoare.relational import DivergenceSpec, RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import If, Program, While
from ..semantics.choosers import Chooser
from ..semantics.state import Outcome, State, Terminated
from ..substrates.parallel import RacyArrayChooser
from ..substrates.workloads import generate_water_workloads
from .base import CaseStudy
from .registry import register_case_study


@register_case_study
class WaterParallelization(CaseStudy):
    """The Water lock-elision case study."""

    name = "water-parallelization"
    paper_section = "5.2"
    paper_proof_lines = 310

    def __init__(self) -> None:
        self._consumer_loop: Optional[While] = None
        self._branch: Optional[If] = None

    # -- program ------------------------------------------------------------------

    def build_program(self) -> Program:
        # EXP(RS[K]) is modelled by a linear expression; its exact shape is
        # irrelevant to the integrity property being verified.
        branch = b.if_(
            b.lt(b.aread('RS', 'K'), 'gCUT2'),
            b.block(
                b.assume(b.lt('K', 'len_FF')),
                b.astore('FF', 'K', b.add(b.mul(2, b.aread('RS', 'K')), 1)),
            ),
            b.skip,
        )
        self._branch = branch
        consumer_loop = While(
            condition=b.lt('K', 'N'),
            body=b.block(
                b.assume(b.lt('K', 'len_FF')),
                branch,
                b.assign('K', b.add('K', 1)),
            ),
            invariant=b.ge('K', 0),
            rel_invariant=b.all_same('K', 'N', 'len_FF', 'gCUT2'),
        )
        self._consumer_loop = consumer_loop
        return b.program(
            self.name,
            b.assume(b.ge('N', 0)),
            # The parallel phase: lock elision makes RS nondeterministic.
            b.relax('RS', b.true),
            b.assign('K', 0),
            consumer_loop,
            b.relate('bounds', b.all_same('K', 'len_FF')),
            variables=('K', 'N', 'len_FF', 'gCUT2'),
            arrays=('RS', 'FF'),
        )

    # -- specification ----------------------------------------------------------------

    def acceptability_spec(self, program: Program) -> AcceptabilitySpec:
        assert self._branch is not None
        config = RelationalConfig(
            arrays=('RS', 'FF'),
            divergence_specs={
                self._branch: DivergenceSpec(
                    original_post=b.true,
                    relaxed_post=b.true,
                    comment=(
                        "the branch on RS[K] diverges; the inner assume is "
                        "re-established from the propagated outer assume"
                    ),
                )
            },
        )
        return AcceptabilitySpec(
            precondition=b.true,
            postcondition=b.true,
            rel_precondition=b.all_same('K', 'N', 'len_FF', 'gCUT2'),
            rel_postcondition=None,
            relational_config=config,
        )

    # -- dynamic simulation --------------------------------------------------------------

    def workloads(self, count: int, seed: int = 0) -> List[State]:
        states = []
        for workload in generate_water_workloads(count, seed=seed):
            molecules = len(workload.interactions)
            rs = {index: value for index, value in enumerate(workload.interactions)}
            ff = {index: 0 for index in range(workload.array_length)}
            states.append(
                State.of(
                    {
                        'K': 0,
                        'N': molecules,
                        'len_FF': workload.array_length,
                        'gCUT2': workload.cutoff,
                    },
                    arrays={'RS': rs, 'FF': ff},
                )
            )
        return states

    def relaxed_chooser(self, seed: int) -> Optional[Chooser]:
        return RacyArrayChooser(array_name='RS', threads=4, seed=seed)

    def distortion(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Optional[float]:
        """Accuracy loss = fraction of FF cells the races perturbed."""
        if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
            return None
        ff_original = original.state.array('FF')
        ff_relaxed = relaxed.state.array('FF')
        if not ff_original:
            return 0.0
        differing = sum(
            1
            for index in ff_original
            if ff_original[index] != ff_relaxed.get(index, 0)
        )
        return differing / len(ff_original)

    def record_metrics(
        self, initial: State, original: Outcome, relaxed: Outcome
    ) -> Dict[str, float]:
        metrics: Dict[str, float] = {}
        if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
            ff_original = original.state.array('FF')
            ff_relaxed = relaxed.state.array('FF')
            updated_original = sum(1 for value in ff_original.values() if value != 0)
            updated_relaxed = sum(1 for value in ff_relaxed.values() if value != 0)
            metrics['ff_updates_original'] = float(updated_original)
            metrics['ff_updates_relaxed'] = float(updated_relaxed)
            differing = sum(
                1
                for index in ff_original
                if ff_original[index] != ff_relaxed.get(index, 0)
            )
            metrics['ff_cells_differing'] = float(differing)
            total = max(1, len(ff_original))
            metrics['ff_fraction_differing'] = differing / total
            rs_original = original.state.array('RS')
            rs_relaxed = relaxed.state.array('RS')
            lost = sum(
                abs(rs_original[index] - rs_relaxed.get(index, 0)) for index in rs_original
            )
            metrics['rs_total_absolute_deviation'] = float(lost)
        return metrics
