"""Case study 7 — two-stage pipeline with a *joint* dynamic-knob relaxation.

Two pipeline stages process up to ``k1`` / ``k2`` items each.  Where the
Swish++ study relaxes one knob in isolation, here one relax statement
constrains both knobs *together*: each keeps a per-stage floor, and the
combined degradation across the pipeline is capped by a shared drop
budget — a relational invariant over the two knobs:

.. code-block:: none

    relax (k1, k2) st (4 <= k1 && k1 <= original_k1
                       && 4 <= k2 && k2 <= original_k2
                       && (original_k1 - k1) + (original_k2 - k2) <= budget);

Both stage loops diverge (their trip counts depend on the relaxed knobs);
each is characterised by the closed form ``n = min(N, max(k, 0))`` on both
sides, and the relate statement recombines the two per-stage facts into the
end-to-end guarantee — stagewise monotonicity plus the shared budget:

.. code-block:: none

    relate throughput: n1<r> <= n1<o> && n2<r> <= n2<o>
                       && (n1<o> - n1<r>) + (n2<o> - n2<r>) <= budget<r>

(the Lipschitz step — items dropped by a stage never exceed the knob
reduction of that stage — is exactly the case analysis the solver performs
when it eliminates the ``min``/``max`` terms).

Defined declaratively: the program is the ``.rlx`` source below; both
divergence annotations anchor to their loops by positional selector.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hoare.relational import DivergenceSpec, RelationalConfig
from ..hoare.verifier import AcceptabilitySpec
from ..lang import builder as b
from ..lang.ast import Program
from ..lang.parser import parse_bool
from ..semantics.choosers import make_chooser
from ..semantics.state import Outcome, State, Terminated
from ..substrates.workloads import generate_pipeline_workloads
from .registry import register_case_study
from .spec import StudyDefinition, loop_at

#: Per-stage floor both knobs must respect (the Swish++ "top results" idea,
#: applied to each stage of the pipeline).
STAGE_FLOOR = 4

SOURCE = """
vars N1, N2, k1, k2, original_k1, original_k2, budget, n1, n2;
assume(N1 >= 0);
assume(N2 >= 0);
assume(0 <= budget);
assume(4 <= k1);
assume(4 <= k2);
original_k1 = k1;
original_k2 = k2;
relax (k1, k2) st (4 <= k1 && k1 <= original_k1 && 4 <= k2 && k2 <= original_k2
                   && (original_k1 - k1) + (original_k2 - k2) <= budget);
n1 = 0;
while (n1 < N1 && n1 < k1)
    invariant (0 <= n1 && n1 <= N1 && (n1 <= k1 || n1 == 0) && 0 <= N1 && 0 <= N2)
{
    n1 = n1 + 1;
}
n2 = 0;
while (n2 < N2 && n2 < k2)
    invariant (0 <= n2 && n2 <= N2 && (n2 <= k2 || n2 == 0) && 0 <= N2)
{
    n2 = n2 + 1;
}
relate throughput: (n1<r> <= n1<o> && n2<r> <= n2<o>
                    && (n1<o> - n1<r>) + (n2<o> - n2<r>) <= budget<r>);
"""


def _spec(program: Program) -> AcceptabilitySpec:
    stage1 = loop_at(program, 0)
    stage2 = loop_at(program, 1)
    char1 = parse_bool("0 <= n1 && n1 == min(N1, max(k1, 0))")
    char2 = parse_bool("0 <= n2 && n2 == min(N2, max(k2, 0))")
    return AcceptabilitySpec(
        rel_precondition=b.all_same(
            "N1", "N2", "k1", "k2", "original_k1", "original_k2",
            "budget", "n1", "n2",
        ),
        relational_config=RelationalConfig(
            divergence_specs={
                stage1: DivergenceSpec(
                    original_post=char1, relaxed_post=char1,
                    comment="stage-1 trip count depends on the relaxed k1",
                ),
                stage2: DivergenceSpec(
                    original_post=char2, relaxed_post=char2,
                    comment="stage-2 trip count depends on the relaxed k2",
                ),
            },
        ),
    )


def _workloads(count: int, seed: int = 0):
    states = []
    for workload in generate_pipeline_workloads(
        count, seed=seed, knob_floor=STAGE_FLOOR
    ):
        states.append(
            State.of(
                {
                    "N1": workload.stage1_items,
                    "N2": workload.stage2_items,
                    "k1": workload.knob1,
                    "k2": workload.knob2,
                    "original_k1": 0,
                    "original_k2": 0,
                    "budget": workload.budget,
                    "n1": 0,
                    "n2": 0,
                }
            )
        )
    return states


def _distortion(
    initial: State, original: Outcome, relaxed: Outcome
) -> Optional[float]:
    """Accuracy loss = total items the relaxed pipeline dropped."""
    if not (isinstance(original, Terminated) and isinstance(relaxed, Terminated)):
        return None
    drop1 = original.state.scalar("n1") - relaxed.state.scalar("n1")
    drop2 = original.state.scalar("n2") - relaxed.state.scalar("n2")
    return float(abs(drop1) + abs(drop2))


def _metrics(initial: State, original: Outcome, relaxed: Outcome) -> Dict[str, float]:
    metrics: Dict[str, float] = {}
    if isinstance(original, Terminated) and isinstance(relaxed, Terminated):
        drop1 = original.state.scalar("n1") - relaxed.state.scalar("n1")
        drop2 = original.state.scalar("n2") - relaxed.state.scalar("n2")
        budget = relaxed.state.scalar("budget")
        metrics["stage1_processed"] = float(relaxed.state.scalar("n1"))
        metrics["stage2_processed"] = float(relaxed.state.scalar("n2"))
        metrics["stage1_dropped"] = float(drop1)
        metrics["stage2_dropped"] = float(drop2)
        metrics["total_dropped"] = float(drop1 + drop2)
        metrics["drop_budget"] = float(budget)
        metrics["within_budget"] = float(0 <= drop1 + drop2 <= budget)
    return metrics


PIPELINE_KNOBS = StudyDefinition(
    name="pipeline-two-knobs",
    title="Two-stage pipeline with jointly relaxed knobs under a drop budget",
    paper_section="5.1 (dynamic knobs, generalised)",
    source=SOURCE,
    spec=_spec,
    workloads=_workloads,
    chooser=lambda seed: make_chooser("random", seed=seed),
    distortion=_distortion,
    metrics=_metrics,
)

register_case_study(PIPELINE_KNOBS)

__all__ = ["PIPELINE_KNOBS", "SOURCE"]
