"""Shared report emission for the CLI verification/exploration commands.

``verify-batch``, ``verify-case-study`` and ``explore`` all emit a
structured JSON report (``--json FILE``, ``-`` for stdout).  This module
owns the one schema they share and the emission plumbing, so the three
commands cannot drift apart:

* every payload carries the envelope keys ``command`` (which subcommand
  produced it), ``schema_version`` (currently 5) and ``verified`` (the
  overall boolean the command's exit code is based on);
* engine-backed commands carry ``engine`` (scheduler/portfolio counters),
  ``solver`` (solver-level counters aggregated across every strategy and
  worker process: ``cube_count``, ``cooper_eliminations``,
  ``bounded_fallbacks``, ``unknown_results``, ``total_seconds``, ...) and,
  when a cache is attached, ``cache`` (hit/miss counters with ``hits`` /
  ``misses`` / ``hit_rate``) — injected uniformly by
  :func:`report_payload` from the engine instance;
* when the command ran under ``--trace`` (an active telemetry session),
  the payload carries a ``telemetry`` section — span aggregates by name
  plus the session's counters/gauges/histograms
  (:func:`repro.telemetry.telemetry_section`);
* when the command ran with ``--explain`` (or is ``repro explain``), the
  payload carries a ``diagnostics`` section — one forensic record per
  undischarged obligation (source span, relaxation sites, counterexample
  model, atom-by-atom evaluation;
  :meth:`repro.diagnostics.FailureDiagnostic.as_dict`) that ``repro
  explain --from-json`` replays without re-running the solver;
* command-specific keys (``programs``, ``layers``, ``results``, ...) are
  preserved untouched, so existing consumers keep working.

JSON is serialised deterministically (sorted keys, 2-space indent).

Schema history: version 5 added the ``incremental`` section to the
``explore`` payload (search-session obligation reuse counters: ``reused``,
``delta_obligations``, ``total_obligations``, ``reuse_rate``,
``store_entries``) along with the ``strategy`` / ``beam_width`` /
``beam_pruned`` / ``truncated`` / ``reward_table`` search keys and the
engine counters ``incremental_reused`` / ``delta_obligations``;
version 4 added ``solver.backend`` (the resolved
evaluation backend the run's queries executed on) and the vector-backend
counters (``vector_rows``, ``vector_batches``, ``vector_searches``,
``vector_fallbacks``, ``prefiltered_cubes``) to the ``solver`` section;
version 3 added the optional ``diagnostics`` section (failure forensics);
version 2 added the optional ``telemetry`` section (version 1 payloads
differ only by its absence).
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from .solver.backend import RESOLVED_BACKENDS, active_backend

SCHEMA_VERSION = 5

#: Envelope keys every CLI JSON report carries (tested in
#: tests/test_cli_report.py; bump SCHEMA_VERSION when this changes).
ENVELOPE_KEYS = ("command", "schema_version", "verified")


def report_payload(
    command: str,
    core: Dict[str, object],
    *,
    verified: bool,
    engine=None,
    telemetry_session=None,
) -> Dict[str, object]:
    """Wrap a command's report dict in the shared envelope.

    ``core`` keys win over injected ones (a report that already carries
    ``engine``/``cache`` counters keeps its own); the envelope keys are
    always overwritten so they cannot lie about their producer.  When a
    ``telemetry_session`` is given (the command ran under ``--trace``),
    its aggregates are injected as the ``telemetry`` section.
    """
    payload: Dict[str, object] = dict(core)
    if engine is not None:
        payload.setdefault("engine", engine.statistics.as_dict())
        payload.setdefault("solver", dict(engine.solver_statistics.as_dict()))
        if engine.cache is not None:
            payload.setdefault("cache", engine.cache.stats())
    # Record the backend queries actually ran on (auto resolved), so a
    # report is self-describing about how its numbers were produced.  The
    # solver section may come from ``core`` (batch/explore reports build
    # their own) or from the engine above; stamp whichever is present.
    solver_section = payload.get("solver")
    if isinstance(solver_section, dict):
        solver_section = dict(solver_section)
        solver_section.setdefault("backend", active_backend())
        payload["solver"] = solver_section
    if telemetry_session is not None:
        from .telemetry import telemetry_section

        payload.setdefault("telemetry", telemetry_section(telemetry_session))
    payload["command"] = command
    payload["schema_version"] = SCHEMA_VERSION
    payload["verified"] = bool(verified)
    return payload


def emit_json(payload: Dict[str, object], destination: str) -> None:
    """Write ``payload`` as deterministic JSON to a file, or stdout for ``-``."""
    text = json.dumps(payload, indent=2, sort_keys=True)
    if destination == "-":
        print(text)
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")


def emit_text(text: str, destination: str) -> None:
    """Write already-rendered text (e.g. CSV) to a file, or stdout for ``-``."""
    if destination == "-":
        print(text, end="")
    else:
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)


def validate_payload(payload: Dict[str, object]) -> Optional[str]:
    """Return an error string if ``payload`` violates the shared schema."""
    for key in ENVELOPE_KEYS:
        if key not in payload:
            return f"missing envelope key {key!r}"
    if payload["schema_version"] != SCHEMA_VERSION:
        return f"unexpected schema_version {payload['schema_version']!r}"
    if not isinstance(payload["command"], str) or not payload["command"]:
        return "command must be a non-empty string"
    if not isinstance(payload["verified"], bool):
        return "verified must be a boolean"
    cache = payload.get("cache")
    if cache is not None and not {"hits", "misses", "hit_rate"} <= set(cache):
        return "cache counters must carry hits/misses/hit_rate"
    solver = payload.get("solver")
    if solver is not None:
        if not {
            "cube_count",
            "cooper_eliminations",
            "bounded_fallbacks",
            "unknown_results",
            "total_seconds",
        } <= set(solver):
            return (
                "solver counters must carry cube_count/cooper_eliminations/"
                "bounded_fallbacks/unknown_results/total_seconds"
            )
        missing = {
            "vector_rows",
            "vector_batches",
            "vector_searches",
            "vector_fallbacks",
            "prefiltered_cubes",
        } - set(solver)
        if missing:
            return (
                "solver counters must carry the vector-backend counters "
                f"(missing: {'/'.join(sorted(missing))})"
            )
        backend = solver.get("backend")
        if backend not in RESOLVED_BACKENDS:
            return (
                f"solver.backend must be one of {'/'.join(RESOLVED_BACKENDS)}, "
                f"got {backend!r}"
            )
    incremental = payload.get("incremental")
    if incremental is not None:
        if not isinstance(incremental, dict):
            return "incremental section must be an object"
        missing = {
            "reused",
            "delta_obligations",
            "total_obligations",
            "reuse_rate",
        } - set(incremental)
        if missing:
            return (
                "incremental counters must carry reused/delta_obligations/"
                f"total_obligations/reuse_rate (missing: {'/'.join(sorted(missing))})"
            )
        for key in ("reused", "delta_obligations", "total_obligations", "reuse_rate"):
            if not isinstance(incremental[key], (int, float)):
                return f"incremental.{key} must be a number"
    diagnostics = payload.get("diagnostics")
    if diagnostics is not None:
        if not isinstance(diagnostics, list):
            return "diagnostics section must be a list"
        for entry in diagnostics:
            if not isinstance(entry, dict):
                return "diagnostics entries must be objects"
            missing = {"rule", "status", "location", "model", "sites"} - set(entry)
            if missing:
                return (
                    "diagnostics entries must carry rule/status/location/"
                    f"model/sites (missing: {'/'.join(sorted(missing))})"
                )
    telemetry = payload.get("telemetry")
    if telemetry is not None:
        if not isinstance(telemetry, dict):
            return "telemetry section must be an object"
        missing = {"enabled", "span_count", "spans", "counters"} - set(telemetry)
        if missing:
            return (
                "telemetry section must carry enabled/span_count/spans/counters "
                f"(missing: {'/'.join(sorted(missing))})"
            )
        if not isinstance(telemetry["enabled"], bool):
            return "telemetry.enabled must be a boolean"
        if not isinstance(telemetry["spans"], dict) or not isinstance(
            telemetry["counters"], dict
        ):
            return "telemetry spans/counters must be objects"
    return None
