"""Executable metatheory: the paper's Section 4 lemmas and theorems as
bounded differential checks over concrete programs."""

from . import properties
from .properties import (
    MetatheoryReport,
    PropertyCheck,
    check_all,
    check_original_is_relaxed_execution,
    check_original_progress,
    check_relational_assertions,
    check_relative_relaxed_progress,
    check_relaxed_progress,
    check_relaxed_progress_modulo_assumptions,
)

__all__ = [
    "properties",
    "MetatheoryReport",
    "PropertyCheck",
    "check_all",
    "check_original_is_relaxed_execution",
    "check_original_progress",
    "check_relational_assertions",
    "check_relative_relaxed_progress",
    "check_relaxed_progress",
    "check_relaxed_progress_modulo_assumptions",
]
