"""Executable statements of the paper's metatheory (Section 4).

The original artifact proves Lemmas 1–5, Theorems 6–8 and Corollary 9 in
Coq.  Without a proof assistant we cannot mechanise the induction proofs,
but every statement is a universally quantified property over executions,
so it can be *checked* on concrete programs by bounded exhaustive
differential execution: enumerate the (box-bounded) executions of the
original and relaxed semantics and test the property on every pair.

A check that passes is evidence (not proof); a check that fails is a real
counterexample — which is exactly what the test suite uses these functions
for (they must never fail on programs the proof systems verified).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..hoare.obligations import VerificationReport
from ..lang.analysis import gamma as build_gamma
from ..lang.ast import Program, Stmt
from ..semantics.enumerate import EnumerationConfig, enumerate_executions
from ..semantics.observation import check_compatibility
from ..semantics.state import (
    Outcome,
    State,
    Terminated,
    is_bad_assume,
    is_error,
    is_wrong,
)


@dataclass
class PropertyCheck:
    """The result of checking one metatheory property on one program."""

    name: str
    holds: bool
    executions_checked: int
    counterexample: str = ""

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class MetatheoryReport:
    """Results of checking every property over a set of initial states."""

    program_name: str
    checks: List[PropertyCheck] = field(default_factory=list)

    @property
    def all_hold(self) -> bool:
        return all(check.holds for check in self.checks)

    def summary(self) -> str:
        lines = [f"metatheory checks for {self.program_name}:"]
        for check in self.checks:
            verdict = "holds" if check.holds else f"FAILS ({check.counterexample})"
            lines.append(
                f"  {check.name}: {verdict} [{check.executions_checked} executions]"
            )
        return "\n".join(lines)


def _outcomes(
    program: Union[Program, Stmt],
    state: State,
    relaxed: bool,
    config: Optional[EnumerationConfig],
) -> List[Outcome]:
    return enumerate_executions(program, state, relaxed=relaxed, config=config)


def check_original_progress(
    program: Program,
    initial_states: Sequence[State],
    original_verified: bool,
    config: Optional[EnumerationConfig] = None,
) -> PropertyCheck:
    """Lemma 2 (Original Progress Modulo Assumptions).

    If the program verifies under ⊢o, then no original execution evaluates
    to ``wr`` (it may still evaluate to ``ba``).
    """
    checked = 0
    if not original_verified:
        return PropertyCheck("original-progress-modulo-assumptions", True, 0,
                             "not applicable: program not verified under the original semantics")
    for state in initial_states:
        for outcome in _outcomes(program, state, relaxed=False, config=config):
            checked += 1
            if is_wrong(outcome):
                return PropertyCheck(
                    "original-progress-modulo-assumptions",
                    False,
                    checked,
                    f"original execution from {state} evaluated to wr: {outcome}",
                )
    return PropertyCheck("original-progress-modulo-assumptions", True, checked)


def check_relational_assertions(
    program: Program,
    initial_states: Sequence[State],
    relaxed_verified: bool,
    config: Optional[EnumerationConfig] = None,
) -> PropertyCheck:
    """Theorem 6 (Soundness of Relational Assertions).

    If the program verifies under ⊢r, then for every pair of successfully
    terminating original/relaxed executions from related initial states the
    observation lists are observationally compatible (``Γ ⊢ ψ1 ∼ ψ2``).
    """
    if not relaxed_verified:
        return PropertyCheck("soundness-of-relational-assertions", True, 0,
                             "not applicable: program not verified under the relaxed semantics")
    gamma = build_gamma(program)
    checked = 0
    for state in initial_states:
        original_outcomes = _outcomes(program, state, relaxed=False, config=config)
        relaxed_outcomes = _outcomes(program, state, relaxed=True, config=config)
        for original in original_outcomes:
            if not isinstance(original, Terminated):
                continue
            for relaxed in relaxed_outcomes:
                if not isinstance(relaxed, Terminated):
                    continue
                checked += 1
                result = check_compatibility(
                    gamma, original.observations, relaxed.observations
                )
                if not result:
                    return PropertyCheck(
                        "soundness-of-relational-assertions",
                        False,
                        checked,
                        f"from {state}: {result.reason}",
                    )
    return PropertyCheck("soundness-of-relational-assertions", True, checked)


def check_relative_relaxed_progress(
    program: Program,
    initial_states: Sequence[State],
    relaxed_verified: bool,
    config: Optional[EnumerationConfig] = None,
) -> PropertyCheck:
    """Theorem 7 (Relative Relaxed Progress).

    If the program verifies under ⊢r and no original execution from a given
    initial state errs, then no relaxed execution from that state errs.
    """
    if not relaxed_verified:
        return PropertyCheck("relative-relaxed-progress", True, 0,
                             "not applicable: program not verified under the relaxed semantics")
    checked = 0
    for state in initial_states:
        original_outcomes = _outcomes(program, state, relaxed=False, config=config)
        if any(is_error(outcome) for outcome in original_outcomes):
            continue  # the theorem's hypothesis fails for this state
        for outcome in _outcomes(program, state, relaxed=True, config=config):
            checked += 1
            if is_error(outcome):
                return PropertyCheck(
                    "relative-relaxed-progress",
                    False,
                    checked,
                    f"relaxed execution from {state} errs ({outcome}) although no "
                    "original execution errs",
                )
    return PropertyCheck("relative-relaxed-progress", True, checked)


def check_relaxed_progress(
    program: Program,
    initial_states: Sequence[State],
    original_verified: bool,
    relaxed_verified: bool,
    config: Optional[EnumerationConfig] = None,
) -> PropertyCheck:
    """Theorem 8 (Relaxed Progress).

    With both proofs, if no original execution from a state violates an
    assumption, then no relaxed execution from that state errs at all.
    """
    if not (original_verified and relaxed_verified):
        return PropertyCheck("relaxed-progress", True, 0,
                             "not applicable: program not verified under both semantics")
    checked = 0
    for state in initial_states:
        original_outcomes = _outcomes(program, state, relaxed=False, config=config)
        if any(is_bad_assume(outcome) for outcome in original_outcomes):
            continue
        for outcome in _outcomes(program, state, relaxed=True, config=config):
            checked += 1
            if is_error(outcome):
                return PropertyCheck(
                    "relaxed-progress",
                    False,
                    checked,
                    f"relaxed execution from {state} errs ({outcome}) although "
                    "original executions violate no assumption",
                )
    return PropertyCheck("relaxed-progress", True, checked)


def check_relaxed_progress_modulo_assumptions(
    program: Program,
    initial_states: Sequence[State],
    original_verified: bool,
    relaxed_verified: bool,
    config: Optional[EnumerationConfig] = None,
) -> PropertyCheck:
    """Corollary 9 (Relaxed Progress Modulo Original Assumptions).

    With both proofs, an error in a relaxed execution implies some original
    execution from the same initial state violates an assumption.
    """
    if not (original_verified and relaxed_verified):
        return PropertyCheck("relaxed-progress-modulo-original-assumptions", True, 0,
                             "not applicable: program not verified under both semantics")
    checked = 0
    for state in initial_states:
        relaxed_outcomes = _outcomes(program, state, relaxed=True, config=config)
        erring = [outcome for outcome in relaxed_outcomes if is_error(outcome)]
        if not erring:
            continue
        checked += len(erring)
        original_outcomes = _outcomes(program, state, relaxed=False, config=config)
        if not any(is_bad_assume(outcome) for outcome in original_outcomes):
            return PropertyCheck(
                "relaxed-progress-modulo-original-assumptions",
                False,
                checked,
                f"relaxed executions from {state} err but no original execution "
                "violates an assumption",
            )
    return PropertyCheck("relaxed-progress-modulo-original-assumptions", True, checked)


def check_original_is_relaxed_execution(
    program: Program,
    initial_states: Sequence[State],
    config: Optional[EnumerationConfig] = None,
) -> PropertyCheck:
    """The relaxed semantics subsumes the original semantics.

    Every successfully terminating original execution's final state is also
    reachable by some relaxed execution (the paper's requirement that the
    original execution be one of the relaxed executions).
    """
    checked = 0
    for state in initial_states:
        relaxed_states = {
            outcome.state
            for outcome in _outcomes(program, state, relaxed=True, config=config)
            if isinstance(outcome, Terminated)
        }
        for outcome in _outcomes(program, state, relaxed=False, config=config):
            if not isinstance(outcome, Terminated):
                continue
            checked += 1
            if outcome.state not in relaxed_states:
                return PropertyCheck(
                    "original-subsumed-by-relaxed",
                    False,
                    checked,
                    f"original final state {outcome.state} unreachable in the "
                    f"relaxed semantics from {state}",
                )
    return PropertyCheck("original-subsumed-by-relaxed", True, checked)


def check_all(
    program: Program,
    initial_states: Sequence[State],
    original_verified: bool,
    relaxed_verified: bool,
    config: Optional[EnumerationConfig] = None,
) -> MetatheoryReport:
    """Run every metatheory check and collect the results."""
    report = MetatheoryReport(program_name=program.name)
    report.checks.append(
        check_original_progress(program, initial_states, original_verified, config)
    )
    report.checks.append(
        check_relational_assertions(program, initial_states, relaxed_verified, config)
    )
    report.checks.append(
        check_relative_relaxed_progress(program, initial_states, relaxed_verified, config)
    )
    report.checks.append(
        check_relaxed_progress(
            program, initial_states, original_verified, relaxed_verified, config
        )
    )
    report.checks.append(
        check_relaxed_progress_modulo_assumptions(
            program, initial_states, original_verified, relaxed_verified, config
        )
    )
    report.checks.append(
        check_original_is_relaxed_execution(program, initial_states, config)
    )
    return report
